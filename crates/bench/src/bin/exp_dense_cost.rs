//! E12 — cost per round of the dense-index analysis core.
//!
//! The PR 2 engine cut *round counts* (Anderson acceleration); the dense
//! core cuts the *cost per round* (interned interference tables, arena
//! jitter reads, per-stage fixed-point reuse) and, on top, the number of
//! per-flow analyses per round (dirty-flow skipping: a flow whose input
//! jitter slots are unchanged from the round that produced its cached
//! report is not re-analysed).  This experiment pins both effects on the
//! three canonical workloads:
//!
//! * per-workload rounds and per-flow analyses with skipping off (every
//!   active flow, every round — the classic Jacobi cost `rounds × flows`)
//!   vs skipping on;
//! * a byte-identity check of each engine configuration against the keyed
//!   reference oracle (`analyze_reference`).
//!
//! Everything on stdout is deterministic (CI diffs repeated runs and
//! `--threads 1` vs `4`); wall-clock measurements go to stderr.

use gmf_analysis::{
    analyze_reference, iterate_from, AnalysisConfig, AnalysisContext, FixedPointRun, JitterMap,
};
use gmf_bench::{
    long_tail_bench_scenario, mixed_depth_line_scenario, multi_sink_star_set, print_header,
    print_table, synthetic_converging_set, threads_flag,
};
use gmf_net::{FlowSet, Topology};
use gmf_workloads::paper_scenario;
use std::time::Instant;

fn run(topology: &Topology, flows: &FlowSet, config: &AnalysisConfig) -> (FixedPointRun, f64) {
    let ctx = AnalysisContext::new(topology, flows).expect("context builds");
    let start = Instant::now();
    let run = iterate_from(&ctx, config, JitterMap::initial(flows)).expect("analysis runs");
    (run, start.elapsed().as_secs_f64())
}

fn main() {
    print_header("E12", "Dense-index analysis core: cost per round");
    let threads = threads_flag();
    let full = AnalysisConfig::paper()
        .with_threads(threads)
        .with_skip_unchanged_flows(false);
    let skip = AnalysisConfig::paper().with_threads(threads);

    let (paper, _) = paper_scenario();
    let (synth_topology, synth_flows) = synthetic_converging_set(16);
    let (multi_topology, multi_flows) = multi_sink_star_set(2008, 24, 6);
    let (tail_topology, tail_flows) = long_tail_bench_scenario();
    let (mixed_topology, mixed_flows) = mixed_depth_line_scenario(10, 4);
    let workloads: Vec<(&str, &Topology, &FlowSet)> = vec![
        ("paper-figure1", &paper.topology, &paper.flows),
        ("synthetic-star-16", &synth_topology, &synth_flows),
        ("multi-sink-star-24", &multi_topology, &multi_flows),
        ("long-tail-line", &tail_topology, &tail_flows),
        ("mixed-depth-line", &mixed_topology, &mixed_flows),
    ];

    let mut rows = Vec::new();
    for (name, topology, flows) in workloads {
        let (run_full, secs_full) = run(topology, flows, &full);
        let (run_skip, secs_skip) = run(topology, flows, &skip);
        let reference = analyze_reference(topology, flows, &AnalysisConfig::paper())
            .expect("reference analysis runs");

        // The whole point: identical reports, fewer analyses.
        assert_eq!(run_full.report, reference, "{name}: full vs reference");
        assert_eq!(run_skip.report, reference, "{name}: skip vs reference");
        let identical = "yes";

        let saved = 100.0 * (1.0 - run_skip.flow_analyses as f64 / run_full.flow_analyses as f64);
        rows.push(vec![
            name.to_string(),
            flows.len().to_string(),
            run_full.report.iterations.to_string(),
            run_full.flow_analyses.to_string(),
            run_skip.flow_analyses.to_string(),
            format!("{saved:.1}%"),
            identical.to_string(),
        ]);
        eprintln!(
            "{name}: analyze {:.3} ms (no skip) / {:.3} ms (skip), threads {threads}",
            secs_full * 1e3,
            secs_skip * 1e3
        );
    }

    println!();
    println!("per-flow pipeline analyses per cold analyze (skipping off vs on),");
    println!("with every report byte-identical to the keyed reference engine:");
    println!();
    print_table(
        &[
            "workload",
            "flows",
            "rounds",
            "analyses",
            "analyses(skip)",
            "saved",
            "reports==reference",
        ],
        &rows,
    );
}
