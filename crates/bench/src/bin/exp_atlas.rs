//! E17 — the tightness atlas: percentile-resolved bound tightness over
//! the fuzz corpus at long horizons, on the high-throughput event core.
//!
//! For each fuzz scenario the atlas runs the conservative analysis and a
//! *long* dense simulation (20× the conformance horizon), then reports
//! the observed P50/P95/P99/max response time of every (flow, GMF frame)
//! as integer permille of its analytical bound.  The percentile columns
//! come from `switch-sim`'s streaming integer-nanosecond histograms, so
//! the table costs O(1) memory per frame regardless of horizon.
//!
//! All stdout is deterministic: repeated runs and `--threads 1/4` must be
//! byte-identical (CI diffs them).  Wall-clock and events/sec — the
//! throughput half of E17, machine-dependent by nature — go to stderr.
//!
//! Usage: `exp_atlas [--scenarios N] [--threads N]` (default 12
//! scenarios).  Exits non-zero if any observed maximum exceeds its bound.

use gmf_bench::atlas::{tightness_atlas, AtlasConfig};
use gmf_bench::{print_header, print_table, threads_flag};

fn main() {
    let mut config = AtlasConfig {
        threads: threads_flag(),
        ..AtlasConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenarios" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.scenarios = n.max(1),
                None => {
                    eprintln!("--scenarios requires a number");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                args.next(); // parsed by threads_flag()
            }
            other => {
                eprintln!("unknown argument {other} (expected --scenarios N, --threads N)");
                std::process::exit(2);
            }
        }
    }

    print_header(
        "E17",
        "Tightness atlas: observed percentiles vs bounds, long horizons",
    );

    let started = std::time::Instant::now();
    let atlas = tightness_atlas(&config);
    let elapsed = started.elapsed();

    println!(
        "corpus: {} scenarios requested, {} usable, {} skipped",
        config.scenarios,
        atlas.scenarios_ok,
        atlas.skipped.len()
    );
    for (label, reason) in &atlas.skipped {
        println!("  skipped {label}: {reason}");
    }
    println!(
        "simulated: {} events, {} packets completed (deterministic)",
        atlas.events_processed, atlas.packets_completed
    );
    println!(
        "queue shape: max_pending {}, max_bucket {}, buckets_opened {}, pool_reuses {}",
        atlas.queue.max_pending,
        atlas.queue.max_bucket,
        atlas.queue.buckets_opened,
        atlas.queue.pool_reuses
    );
    println!();

    // The per-frame atlas, worst rows first in print (full row order is
    // deterministic; the table keeps the 16 largest maxima readable).
    let mut by_tightness: Vec<usize> = (0..atlas.rows.len()).collect();
    by_tightness.sort_by_key(|&i| {
        let r = &atlas.rows[i];
        (std::cmp::Reverse(r.max_permille), i)
    });
    let rows: Vec<Vec<String>> = by_tightness
        .iter()
        .take(16)
        .map(|&i| {
            let r = &atlas.rows[i];
            vec![
                r.scenario.clone(),
                r.flow.clone(),
                format!("{}", r.frame),
                format!("{}", r.samples),
                format!("{}", r.p50_permille),
                format!("{}", r.p95_permille),
                format!("{}", r.p99_permille),
                format!("{}", r.max_permille),
            ]
        })
        .collect();
    print_table(
        &[
            "scenario", "flow", "frame", "samples", "p50‰", "p95‰", "p99‰", "max‰",
        ],
        &rows,
    );
    println!();

    // Corpus-level spread of each percentile column over all rows.
    let spreads = [
        ("p50", atlas.spread(|r| r.p50_permille)),
        ("p95", atlas.spread(|r| r.p95_permille)),
        ("p99", atlas.spread(|r| r.p99_permille)),
        ("max", atlas.spread(|r| r.max_permille)),
    ];
    let rows: Vec<Vec<String>> = spreads
        .iter()
        .filter_map(|(name, spread)| {
            spread.map(|(min, median, max)| {
                vec![
                    name.to_string(),
                    format!("{min}"),
                    format!("{median}"),
                    format!("{max}"),
                ]
            })
        })
        .collect();
    print_table(
        &["percentile", "min ‰ of bound", "median ‰", "max ‰"],
        &rows,
    );
    println!();
    println!(
        "atlas rows: {} (every one with max ≤ 1000‰ of its bound)",
        atlas.rows.len()
    );

    // Throughput (machine-dependent): stderr only, never in the diffed
    // stdout.
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        eprintln!(
            "wall: {:.1} ms, {:.0} events/sec",
            secs * 1e3,
            atlas.events_processed as f64 / secs
        );
    }

    if !atlas.violations.is_empty() {
        eprintln!("BOUND VIOLATIONS:");
        for row in &atlas.violations {
            eprintln!(
                "  {}/{} frame {}: max {}‰ of bound",
                row.scenario, row.flow, row.frame, row.max_permille
            );
        }
        std::process::exit(1);
    }
}
