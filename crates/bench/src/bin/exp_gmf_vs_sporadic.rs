//! E8 — acceptance ratio vs offered utilization: GMF analysis vs the
//! sporadic-collapse baseline vs the utilization-only necessary test.
//!
//! This is the quantitative version of the paper's motivation for using
//! the generalized multiframe model instead of the sporadic model for
//! MPEG-like traffic: at the same offered load, collapsing each flow to
//! its densest/largest frame rejects far more flow sets.

use gmf_analysis::AnalysisConfig;
use gmf_bench::{print_header, print_table};
use gmf_workloads::{acceptance_sweep, SweepConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    print_header(
        "E8",
        "Acceptance ratio vs offered utilization: GMF analysis vs sporadic collapse",
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let config = SweepConfig {
        sets_per_point: 40,
        flows_per_set: 8,
        ..SweepConfig::default()
    };
    let utilizations: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let points = acceptance_sweep(&mut rng, &utilizations, &config, &AnalysisConfig::paper());

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.utilization),
                format!("{:.2}", p.gmf_accepted),
                format!("{:.2}", p.sporadic_accepted),
                format!("{:.2}", p.utilization_feasible),
                p.trials.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "offered utilization",
            "GMF analysis",
            "sporadic collapse",
            "utilization test",
            "trials",
        ],
        &rows,
    );

    // Summarise the crossover points (where each test drops below 50%).
    let crossover = |select: fn(&gmf_workloads::AcceptancePoint) -> f64| {
        points
            .iter()
            .find(|p| select(p) < 0.5)
            .map(|p| format!("{:.1}", p.utilization))
            .unwrap_or_else(|| "> 0.9".to_string())
    };
    println!();
    println!(
        "utilization at which acceptance drops below 50%:  GMF {}   sporadic {}   utilization-test {}",
        crossover(|p| p.gmf_accepted),
        crossover(|p| p.sporadic_accepted),
        crossover(|p| p.utilization_feasible)
    );
    println!(
        "expected shape: the GMF analysis keeps accepting well past the point where the sporadic\n\
         collapse has given up, while the utilization-only test is an optimistic upper envelope\n\
         (necessary but not sufficient)."
    );
}
