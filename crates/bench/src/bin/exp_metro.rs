//! E14 — metro-scale sharded admission: 100k+ pre-admitted flows across
//! thousands of independent access cells, batched admission decisions.
//!
//! Replays the shared metro workload at full scale: verify the
//! pre-admitted set shard-parallel (`AdmissionController::with_accepted`),
//! push batches of candidates through `request_batch`, then release
//! everything the batches admitted.  The point of the table is the
//! *locality* claim of the sharded admission plane: with 100,000+ flows
//! live, every trial re-verifies at most one cell's worth of flows, almost
//! every decision is served from a converged warm start, and the release
//! phase restores the preloaded partition exactly.
//!
//! Everything on stdout is deterministic (CI diffs repeated runs and
//! `--threads 1` vs `4`); the wall-clock decisions/sec measurements go to
//! stderr.

use gmf_analysis::AnalysisConfig;
use gmf_bench::{
    print_header, print_table, run_metro_admission, threads_flag, METRO_BATCHES, METRO_BATCH_SIZE,
    METRO_BENCH_SEED, METRO_TIGHT_FRACTION,
};
use gmf_workloads::MetroConfig;

fn main() {
    print_header(
        "E14",
        "Metro-scale sharded admission: 100k+ flows, batched decisions",
    );
    let threads = threads_flag();
    let analysis = AnalysisConfig::paper().with_threads(threads);
    let config = MetroConfig::default();
    let outcome = run_metro_admission(
        METRO_BENCH_SEED,
        &config,
        &analysis,
        METRO_BATCHES,
        METRO_BATCH_SIZE,
        METRO_TIGHT_FRACTION,
    );

    println!();
    println!(
        "scenario: {} cells x {} flows = {} pre-admitted flows (seed {}), {:.0}% impossible candidates",
        config.n_cells,
        config.flows_per_cell,
        outcome.n_flows,
        METRO_BENCH_SEED,
        METRO_TIGHT_FRACTION * 100.0
    );
    println!(
        "preload: {} shards verified in parallel (largest {} flows), {} rounds, {} flow analyses",
        outcome.preload.shards,
        outcome.preload.largest_shard,
        outcome.preload.rounds,
        outcome.preload.flow_analyses
    );
    println!();

    let rows: Vec<Vec<String>> = outcome
        .batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            vec![
                i.to_string(),
                (b.accepted + b.rejected).to_string(),
                b.accepted.to_string(),
                b.rejected.to_string(),
                b.warm_decisions.to_string(),
                b.rounds.to_string(),
                b.flow_analyses.to_string(),
                b.largest_trial.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "batch",
            "requests",
            "accepted",
            "rejected",
            "warm dec",
            "rounds",
            "flow analyses",
            "largest trial",
        ],
        &rows,
    );

    let decisions = outcome.decisions();
    println!();
    println!(
        "decisions: {} total, {} accepted, {} rejected, {} warm",
        decisions,
        outcome.accepted(),
        outcome.rejected(),
        outcome.warm_decisions()
    );
    println!(
        "per decision: {:.2} rounds, {:.2} flow analyses; largest trial {} flows (of {} live)",
        outcome.rounds() as f64 / decisions.max(1) as f64,
        outcome.flow_analyses() as f64 / decisions.max(1) as f64,
        outcome.largest_trial(),
        outcome.n_flows
    );
    println!(
        "release: {} admitted candidates departed; {} flows and {} shards remain (preload had {})",
        outcome.released, outcome.final_flows, outcome.final_shards, outcome.preload.shards
    );
    println!();
    println!(
        "expected shape: trials never grow past one cell's worth of flows no matter how many\n\
         cells the metro runs, so per-decision work is flat in the live-set size; the releases\n\
         restore the preloaded flow count and shard count exactly (decisions/sec on stderr)."
    );

    // Wall clock is nondeterministic, so it stays off stdout.
    eprintln!(
        "preload: {} flows verified in {:.3} s ({:.0} flows/sec)",
        outcome.n_flows,
        outcome.preload_elapsed.as_secs_f64(),
        outcome.n_flows as f64 / outcome.preload_elapsed.as_secs_f64().max(1e-9)
    );
    let admission = outcome.admission_elapsed().as_secs_f64();
    eprintln!(
        "admission: {} decisions in {:.3} s = {:.0} decisions/sec",
        decisions,
        admission,
        decisions as f64 / admission.max(1e-9)
    );
    eprintln!(
        "release: {} departures in {:.3} s = {:.0} releases/sec",
        outcome.released,
        outcome.release_elapsed.as_secs_f64(),
        outcome.released as f64 / outcome.release_elapsed.as_secs_f64().max(1e-9)
    );
}
