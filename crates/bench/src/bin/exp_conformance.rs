//! E13 — the adversarial conformance campaign: analysis bounds vs
//! simulation under bound-chasing arrival policies, at fuzz scale.
//!
//! The binary checks two deterministic *probe* scenarios (a single flow on
//! a cable, whose analysis is exact and must be reached by the
//! critical-instant policy, and a two-flow contention star) plus a seeded
//! campaign of random valid scenarios from `gmf_workloads::fuzz`.  Every
//! scenario runs the analysis across its engine axes (Picard/Anderson ×
//! threads 1/4 × round skipping) and the simulator under the dense control
//! and the three adversarial policies; every completed (policy, flow,
//! frame) must observe `response ≤ bound`, and flows that complete *zero*
//! packets under a policy are failures too (vacuous coverage).
//!
//! The campaign fails loudly on any violation, printing a greedily
//! minimized reproducer as a scenario-file JSON on stderr.  On success it
//! writes the per-frame tightness ratios to `CONFORMANCE.json` (see
//! `gmf_bench::conformance::TightnessReport`) — CI uploads it next to
//! `BENCH.json` as the bound-slack trajectory.
//!
//! Usage: `exp_conformance [--scenarios N] [--out PATH] [--threads N]`
//! (defaults: 200 scenarios, `CONFORMANCE.json`; `--threads` must never
//! change a printed digit — CI diffs the output across thread counts).

use gmf_bench::conformance::{
    check_scenario, minimize_violation, run_campaign, ConformanceConfig, ScenarioConformance,
    TightnessReport,
};
use gmf_bench::{print_header, print_table, threads_flag};
use gmf_model::{cbr_flow, Time};
use gmf_net::{shortest_path, star, FlowSet, LinkProfile, Priority, Route, SwitchConfig, Topology};
use gmf_workloads::{FuzzConfig, ScenarioFile};

/// Master seed of the fuzz campaign (E13's identity: changing it changes
/// every scenario of the trajectory).
const CAMPAIGN_SEED: u64 = 2013;

/// The single-flow exactness probe: one CBR flow on a host-to-host cable.
/// Its first-hop analysis is exact, so the critical instant must reach
/// tightness ≈ 1.0 — proof the harness actually stresses the bound.
fn probe_direct_link() -> (&'static str, Topology, FlowSet) {
    let mut topology = Topology::new();
    let a = topology.add_end_host("a");
    let b = topology.add_end_host("b");
    topology
        .add_duplex_link(a, b, LinkProfile::ethernet_100m())
        .expect("fresh topology");
    let mut flows = FlowSet::new();
    flows.add(
        cbr_flow(
            "probe",
            1000,
            Time::from_millis(10.0),
            Time::from_millis(50.0),
            Time::ZERO,
        ),
        Route::new(&topology, vec![a, b]).expect("direct link"),
        Priority(7),
    );
    ("probe-direct-link", topology, flows)
}

/// The contention probe: two CBR flows from different hosts converging on
/// one output port of a paper switch.
fn probe_contending_star() -> (&'static str, Topology, FlowSet) {
    let (topology, _switch, hosts) = star(3, LinkProfile::ethernet_100m(), SwitchConfig::paper());
    let mut flows = FlowSet::new();
    let mk = |name: &str| {
        cbr_flow(
            name,
            8000,
            Time::from_millis(10.0),
            Time::from_millis(60.0),
            Time::from_millis(0.5),
        )
    };
    flows.add(
        mk("hi"),
        shortest_path(&topology, hosts[0], hosts[2]).expect("star is connected"),
        Priority(7),
    );
    flows.add(
        mk("lo"),
        shortest_path(&topology, hosts[1], hosts[2]).expect("star is connected"),
        Priority(1),
    );
    ("probe-contending-star", topology, flows)
}

fn main() {
    let mut n_scenarios = 200usize;
    let mut output = "CONFORMANCE.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenarios" => {
                n_scenarios = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scenarios requires a number");
                    std::process::exit(2);
                });
            }
            "--out" => {
                output = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            // Parsed by gmf_bench::threads_flag(); consume the value here
            // so it is not mistaken for an unknown flag.
            "--threads" => {
                args.next();
            }
            threads_eq if threads_eq.starts_with("--threads=") => {}
            other => {
                eprintln!(
                    "unknown argument {other} (expected --scenarios N, --out PATH, --threads N)"
                );
                std::process::exit(2);
            }
        }
    }

    print_header(
        "E13",
        "Adversarial conformance: simulated responses vs analytical bounds",
    );
    let config = ConformanceConfig {
        analysis: gmf_analysis::AnalysisConfig::conservative().with_threads(threads_flag()),
        ..ConformanceConfig::default()
    };
    let fuzz = FuzzConfig::default();
    let started = std::time::Instant::now();

    // --- Deterministic probes. ---
    let mut scenarios: Vec<ScenarioConformance> = Vec::new();
    let mut probe_sets: Vec<(String, Topology, FlowSet)> = Vec::new();
    for (label, topology, flows) in [probe_direct_link(), probe_contending_star()] {
        let conformance = check_scenario(label, &topology, &flows, &config)
            .unwrap_or_else(|e| panic!("probe {label}: {e}"));
        scenarios.push(conformance);
        probe_sets.push((label.to_string(), topology, flows));
    }

    // --- The fuzz campaign. ---
    let campaign = run_campaign(CAMPAIGN_SEED, n_scenarios, &fuzz, &config)
        .unwrap_or_else(|e| panic!("campaign: {e}"));
    println!(
        "campaign: {} scenarios accepted from {} draws (master seed {CAMPAIGN_SEED})",
        campaign.scenarios.len(),
        campaign.draws
    );
    let rejection_rows: Vec<Vec<String>> = campaign
        .rejections
        .iter()
        .map(|(kind, count)| vec![kind.to_string(), count.to_string()])
        .collect();
    if rejection_rows.is_empty() {
        println!("rejected draws: none");
    } else {
        print_table(&["rejected draws by reason", "count"], &rejection_rows);
    }
    scenarios.extend(campaign.scenarios);

    // --- Verdicts. ---
    let observations: usize = scenarios.iter().map(|s| s.observations.len()).sum();
    let violations: Vec<(String, String)> = scenarios
        .iter()
        .flat_map(|s| {
            s.violations.iter().map(|v| {
                (
                    s.label.clone(),
                    format!(
                        "{}/{}/{}#{}: observed {} > bound {}",
                        s.label, v.policy, v.flow_name, v.frame, v.observed, v.bound
                    ),
                )
            })
        })
        .collect();
    let vacuous: Vec<String> = scenarios
        .iter()
        .flat_map(|s| {
            s.vacuous
                .iter()
                .map(move |(policy, flow)| format!("{}/{policy}/{flow}", s.label))
        })
        .collect();
    println!();
    println!(
        "coverage: {observations} (policy, flow, frame) observations across {} scenarios",
        scenarios.len()
    );
    println!("bound violations: {} (required: 0)", violations.len());
    println!(
        "vacuous (policy, flow) pairs: {} (required: 0)",
        vacuous.len()
    );

    if !violations.is_empty() {
        for (_, line) in &violations {
            eprintln!("VIOLATION {line}");
        }
        // Print a minimized reproducer for the first violating scenario:
        // probe sets are in this binary, and fuzz scenarios re-draw from
        // the seed embedded in their label — either way the scenario JSON
        // on stderr is a ready-to-commit corpus case.
        if let Some((label, _)) = violations.first() {
            let reproducer: Option<(Topology, FlowSet)> = probe_sets
                .iter()
                .find(|(name, ..)| name == label)
                .map(|(_, topology, flows)| (topology.clone(), flows.clone()))
                .or_else(|| {
                    // Fuzz labels are `fuzz-<seed in hex>-<shape>`.
                    let seed = label
                        .strip_prefix("fuzz-")
                        .and_then(|rest| rest.split('-').next())
                        .and_then(|hex| u64::from_str_radix(hex, 16).ok())?;
                    let scenario = gmf_workloads::draw_scenario(seed, &fuzz).ok()?;
                    Some((scenario.topology, scenario.flows))
                });
            if let Some((topology, flows)) = reproducer {
                if let Some(minimal) = minimize_violation(&topology, &flows, &config) {
                    let file = ScenarioFile::new(
                        label.clone(),
                        "minimized conformance violation (E13)",
                        topology.clone(),
                        minimal,
                    );
                    eprintln!(
                        "minimized reproducer:\n{}",
                        file.to_json().expect("scenario serializes")
                    );
                }
            }
        }
        std::process::exit(1);
    }
    if !vacuous.is_empty() {
        for line in &vacuous {
            eprintln!("VACUOUS {line}");
        }
        std::process::exit(1);
    }

    // --- Tightness. ---
    let report = TightnessReport::build(&scenarios, &campaign.rejections);
    let mut top: Vec<(&String, &u64)> = report.per_frame_milli.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    let rows: Vec<Vec<String>> = top
        .iter()
        .take(10)
        .map(|(key, &m)| vec![(*key).clone(), format!("{:.3}", m as f64 / 1000.0)])
        .collect();
    println!();
    print_table(
        &["tightest (scenario/policy/flow#frame)", "obs/bound"],
        &rows,
    );
    println!();
    println!(
        "max tightness: {:.3} at {}",
        report.max_tightness_milli as f64 / 1000.0,
        report.max_tightness_key
    );
    println!(
        "max adversarial tightness: {:.3} (required: >= 0.900)",
        report.adversarial_max_milli as f64 / 1000.0
    );
    assert!(
        report.adversarial_max_milli >= 900,
        "no adversarial policy reached 0.9 of a bound — the harness is idling, not stressing"
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&output, json + "\n").expect("write tightness report");
    // The destination path is CLI-dependent; keep stdout byte-identical
    // across invocations (CI diffs it) and report the path on stderr.
    println!("wrote {} per-frame ratios", report.per_frame_milli.len());
    eprintln!("tightness report: {output}");
    eprintln!(
        "E13 wall clock: {:.1}s for {} scenarios",
        started.elapsed().as_secs_f64(),
        scenarios.len()
    );
}
