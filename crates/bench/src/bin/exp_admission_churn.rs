//! E11 — admission control under churn: cold restarts vs the incremental
//! warm-started engine.
//!
//! Replays the shared churn script (arrivals and departures on the
//! sweep's converging star) through two admission controllers that differ
//! only in [`AdmissionMode`], and reports what every decision cost.  The
//! two engines take byte-identical decisions and produce byte-identical
//! bounds — the table asserts it — but the warm engine re-verifies only
//! the flows a candidate can influence, seeded from the cached converged
//! jitter map, so its rounds-per-decision and per-flow-analyses-per-
//! decision are a fraction of the cold engine's.
//!
//! Everything on stdout is deterministic (CI diffs repeated runs and
//! `--threads 1` vs `4`); the wall-clock admissions/sec measurement goes
//! to stderr.

use gmf_analysis::{AdmissionMode, AnalysisConfig};
use gmf_bench::{churn_bench_config, print_header, print_table, threads_flag, CHURN_BENCH_SEED};
use gmf_workloads::{run_churn, ChurnOutcome};
use std::time::Instant;

fn main() {
    print_header(
        "E11",
        "Admission churn: cold restart vs incremental warm start",
    );
    let threads = threads_flag();
    let analysis = AnalysisConfig::paper().with_threads(threads);
    let config = churn_bench_config();

    let mut outcomes: Vec<(ChurnOutcome, f64)> = Vec::new();
    for mode in [AdmissionMode::Cold, AdmissionMode::Warm] {
        let start = Instant::now();
        let outcome = run_churn(CHURN_BENCH_SEED, &config, &analysis, mode);
        let elapsed = start.elapsed().as_secs_f64();
        outcomes.push((outcome, elapsed));
    }

    println!();
    println!(
        "script: {} events (seed {}), star with {} sources, departures {:.0}%",
        config.n_events,
        CHURN_BENCH_SEED,
        config.sweep.n_sources,
        config.departure_fraction * 100.0
    );
    println!();
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(o, _)| {
            vec![
                o.mode.to_string(),
                o.arrivals.to_string(),
                o.accepted.to_string(),
                o.rejected.to_string(),
                o.departures.to_string(),
                o.live.to_string(),
                o.rounds.to_string(),
                format!("{:.2}", o.rounds_per_decision()),
                o.flow_analyses.to_string(),
                format!("{:.2}", o.analyses_per_decision()),
                o.warm_decisions.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "engine",
            "requests",
            "accepted",
            "rejected",
            "departures",
            "live",
            "rounds",
            "rounds/dec",
            "flow analyses",
            "analyses/dec",
            "warm dec",
        ],
        &rows,
    );

    let (cold, warm) = (&outcomes[0].0, &outcomes[1].0);
    println!();
    println!(
        "decisions identical (accept/reject, live set, final bounds): {}",
        cold.accepted == warm.accepted
            && cold.rejected == warm.rejected
            && cold.live == warm.live
            && cold.final_worst_bound == warm.final_worst_bound
            && cold.final_schedulable == warm.final_schedulable
    );
    println!(
        "final accepted set: {} flows, worst bound {}, schedulable {}",
        warm.live, warm.final_worst_bound, warm.final_schedulable
    );
    println!(
        "per-flow analyses per decision: cold {:.2} vs warm {:.2} ({:.1}x less work)",
        cold.analyses_per_decision(),
        warm.analyses_per_decision(),
        cold.analyses_per_decision() / warm.analyses_per_decision().max(1e-9)
    );
    println!();
    println!(
        "expected shape: identical decisions; the warm engine needs a fraction of the rounds and\n\
         per-flow analyses per decision because trials start from the cached converged jitter map\n\
         and only re-verify flows the candidate can influence (admissions/sec on stderr)."
    );

    // Wall clock is nondeterministic, so it stays off stdout.
    for (outcome, elapsed) in &outcomes {
        eprintln!(
            "{}: {} admission requests in {:.3} s = {:.1} admissions/sec",
            outcome.mode,
            outcome.arrivals,
            elapsed,
            outcome.arrivals as f64 / elapsed.max(1e-9)
        );
    }
}
