//! E10 — convergence of the holistic jitter iteration.
//!
//! The paper's "Putting it all together" section proposes iterating the
//! per-resource analyses until the generalized jitters stop changing.  This
//! experiment measures, on line topologies of increasing length carrying a
//! video flow plus per-hop cross traffic, how many outer iterations the
//! fixed point needs and how the end-to-end bound grows with the number of
//! hops.

use gmf_analysis::{analyze, AnalysisConfig, FixedPointStrategy};
use gmf_bench::{long_tail_bench_scenario, print_header, print_table, threads_flag};
use gmf_model::{voip_flow, FlowId, GopSizes, GopSpec, Time, VoiceCodec};
use gmf_net::{line, shortest_path, FlowSet, LinkProfile, Priority, SwitchConfig};

fn main() {
    print_header(
        "E10",
        "Holistic iteration count and bound growth vs route length",
    );
    let threads = threads_flag();

    let mut rows = Vec::new();
    for n_switches in [1usize, 2, 3, 4, 6, 8] {
        let (topology, host_a, host_b, switches) = line(
            n_switches,
            LinkProfile::ethernet_100m(),
            LinkProfile::ethernet_100m(),
            SwitchConfig::paper(),
        );
        let mut flows = FlowSet::new();

        // The video flow traverses the whole line (use a lighter GOP so the
        // scenario stays schedulable on long lines).
        let video = GopSpec {
            name: "video".into(),
            pattern: gmf_model::paper_figure3_pattern(),
            sizes: GopSizes::sd_profile(),
            frame_period: Time::from_millis(30.0),
            deadline: Time::from_millis(250.0),
            jitter: Time::from_millis(1.0),
        }
        .build()
        .expect("valid GOP spec");
        let route = shortest_path(&topology, host_a, host_b).expect("line is connected");
        let video_id = flows.add(video, route, Priority(5));

        // One reverse-direction voice flow per switch pair keeps every
        // backbone link busy in both directions.
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(40.0),
            Time::from_millis(0.5),
        );
        let reverse = shortest_path(&topology, host_b, host_a).expect("line is connected");
        flows.add(voice.clone(), reverse, Priority(7));
        let _ = &switches;

        let report = analyze(
            &topology,
            &flows,
            &AnalysisConfig::paper().with_threads(threads),
        )
        .expect("valid");
        let bound = report
            .flow(video_id)
            .and_then(|f| f.worst_bound())
            .map(|t| t.to_string())
            .unwrap_or_else(|| "unschedulable".to_string());
        rows.push(vec![
            n_switches.to_string(),
            (n_switches + 1).to_string(),
            report.iterations.to_string(),
            report.converged.to_string(),
            bound,
            report.schedulable.to_string(),
        ]);
        let _ = FlowId(0);
    }
    print_table(
        &[
            "switches",
            "links on route",
            "holistic iterations",
            "converged",
            "worst video bound",
            "schedulable",
        ],
        &rows,
    );
    println!();
    println!(
        "expected shape: the iteration converges in a handful of rounds; the bound grows roughly\n\
         linearly with the hop count (each extra switch adds one ingress stage and one egress link)."
    );

    // Residual trace of the fixed-point engine on the long-tail workload
    // (bidirectional line, slow routing CPUs), under both strategies.
    println!();
    print_header(
        "E10b",
        "Fixed-point engine: per-round residual trace, Picard vs Anderson(1)",
    );
    let (topology, flows) = long_tail_bench_scenario();
    let mut summary = Vec::new();
    for strategy in [FixedPointStrategy::Picard, FixedPointStrategy::Anderson1] {
        let config = AnalysisConfig::paper()
            .with_strategy(strategy)
            .with_threads(threads);
        let report = analyze(&topology, &flows, &config).expect("valid long-tail scenario");
        println!();
        println!(
            "strategy {strategy}: {} rounds, converged: {}",
            report.iterations, report.converged
        );
        let rows: Vec<Vec<String>> = report
            .trace
            .rounds
            .iter()
            .map(|round| {
                vec![
                    round.iteration.to_string(),
                    round.residual.to_string(),
                    round.step.to_string(),
                ]
            })
            .collect();
        print_table(&["round", "residual", "step"], &rows);
        summary.push((
            strategy,
            report.iterations,
            report.trace.n_accelerated(),
            report.worst_bound(),
        ));
    }
    println!();
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|(strategy, iterations, accelerated, worst)| {
            vec![
                strategy.to_string(),
                iterations.to_string(),
                accelerated.to_string(),
                worst.map(|t| t.to_string()).unwrap_or_default(),
            ]
        })
        .collect();
    print_table(&["strategy", "rounds", "accelerated", "worst bound"], &rows);
    println!();
    println!(
        "both strategies converge to identical bounds; Anderson(1) needs fewer rounds on this\n\
         workload because the accelerated steps land components inside their terminal plateaus."
    );
}
