//! E4 — Figure 5 and the worked CIRC example: the stride-scheduling round
//! length of a software switch.
//!
//! Regenerates `CIRC(N) = NINTERFACES(N) × (CROUTE + CSEND)` for the
//! paper's measured costs (2.7 µs and 1.0 µs) across interface counts,
//! including the worked 4-interface value of 14.8 µs.

use gmf_bench::{compare, print_header, print_table};
use gmf_net::SwitchConfig;

fn main() {
    print_header(
        "E4",
        "Paper Figure 5: software-switch service round CIRC(N)",
    );

    let cfg = SwitchConfig::paper();
    println!(
        "CROUTE = {} (dequeue + classify + enqueue), CSEND = {} (priority queue -> NIC)",
        cfg.croute, cfg.csend
    );
    println!();

    let rows: Vec<Vec<String>> = [2usize, 4, 8, 16, 24, 48]
        .iter()
        .map(|&ports| {
            vec![
                ports.to_string(),
                cfg.circ(ports).to_string(),
                SwitchConfig::fast().circ(ports).to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "interfaces",
            "CIRC (paper 2008 PC)",
            "CIRC (10x faster CPU)",
        ],
        &rows,
    );

    println!();
    compare(
        "CIRC for 4 interfaces (Figure 5 example)",
        "14.8 µs",
        &cfg.circ(4).to_string(),
    );
    compare(
        "per-interface service cost CROUTE+CSEND",
        "3.7 µs",
        &cfg.per_interface_cost().to_string(),
    );
}
