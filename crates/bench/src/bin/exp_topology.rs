//! E1 — Figures 1 and 2: the example network and the route 0 → 4 → 6 → 3.
//!
//! Regenerates the topology description (nodes, links, interface counts,
//! per-switch `CIRC`) and the resource pipeline of the example route.

use gmf_bench::{compare, print_header, print_table};
use gmf_net::{paper_figure1, shortest_path};

fn main() {
    print_header("E1", "Paper Figures 1-2: example network and route");

    let (topology, net) = paper_figure1();

    let rows: Vec<Vec<String>> = topology
        .nodes()
        .iter()
        .map(|node| {
            let kind = match &node.kind {
                gmf_net::NodeKind::EndHost => "IP end host".to_string(),
                gmf_net::NodeKind::Router => "IP router".to_string(),
                gmf_net::NodeKind::Switch(_) => "Ethernet switch".to_string(),
            };
            let circ = topology
                .circ(node.id)
                .map(|c| c.to_string())
                .unwrap_or_else(|_| "-".to_string());
            vec![
                node.id.to_string(),
                node.name.clone(),
                kind,
                topology.n_interfaces(node.id).to_string(),
                circ,
            ]
        })
        .collect();
    print_table(&["node", "name", "kind", "interfaces", "CIRC"], &rows);

    println!();
    let rows: Vec<Vec<String>> = topology
        .links()
        .iter()
        .map(|l| {
            vec![
                format!("link({},{})", l.src.0, l.dst.0),
                l.speed.to_string(),
                l.propagation.to_string(),
                l.mft().to_string(),
            ]
        })
        .collect();
    print_table(&["link", "speed", "propagation", "MFT"], &rows);

    println!();
    let route = shortest_path(&topology, net.hosts[0], net.hosts[3]).expect("connected");
    println!("Figure 2 route (host 0 -> host 3): {route}");
    println!("Resource pipeline of that route:");
    println!("  1. first hop: output queue of host 0 + link(0,4)");
    for &switch in route.switches() {
        let succ = route.successor(switch).expect("on route");
        println!("  -  switch ingress in({})", switch.0);
        println!("  -  egress link({},{})", switch.0, succ.0);
    }
    println!();
    compare("number of nodes", "8", &topology.n_nodes().to_string());
    compare(
        "hops on the Figure 2 route",
        "3",
        &route.n_hops().to_string(),
    );
    compare(
        "interfaces of switch 4 (Figure 5)",
        "4",
        &topology.n_interfaces(net.switches[0]).to_string(),
    );
}
