//! E7 — validation of the analysis against the discrete-event simulator.
//!
//! For the paper scenario (on 100 Mbit/s access links, the regime the
//! published per-frame equations are intended for — see DESIGN.md §4) and
//! for several randomised arrival patterns, the worst response time
//! observed by the simulator is compared, frame by frame, against the
//! analytical bound.  The experiment reports the per-flow worst
//! observation, the bound, and the resulting bound tightness
//! (observed / bound).
//!
//! It also reports the known counterexample: on the original 10 Mbit/s
//! access links the I+P frame needs longer than one 30 ms slot to
//! serialise, the following B frames queue behind it, and the printed
//! equations (which do not charge a flow's own preceding frames) give a
//! bound the simulator exceeds.

use gmf_analysis::{analyze, AnalysisConfig};
use gmf_bench::{print_header, print_table};
use gmf_model::Time;
use gmf_net::{LinkProfile, PaperNetworkConfig};
use gmf_workloads::paper_scenario_with;
use switch_sim::{ArrivalPolicy, SimConfig, Simulator};

fn main() {
    print_header("E7", "Analysis bound vs simulated worst-case response time");

    // --- Main validation: 100 Mbit/s access links. ---
    let netcfg = PaperNetworkConfig {
        access: LinkProfile::ethernet_100m(),
        ..Default::default()
    };
    let (scenario, _) = paper_scenario_with(netcfg);
    let report = analyze(
        &scenario.topology,
        &scenario.flows,
        &AnalysisConfig::conservative(),
    )
    .expect("valid scenario");
    assert!(
        report.schedulable,
        "the validation scenario must be schedulable"
    );

    let sim_configs = [
        (
            "dense, aligned",
            SimConfig {
                horizon: Time::from_secs(2.0),
                ..SimConfig::default()
            },
        ),
        (
            "random slack 30%",
            SimConfig {
                horizon: Time::from_secs(2.0),
                arrival: ArrivalPolicy::RandomSlack { slack: 0.3 },
                aligned_start: false,
                seed: 11,
                ..SimConfig::default()
            },
        ),
        (
            "random slack 10%, jitter at end",
            SimConfig {
                horizon: Time::from_secs(2.0),
                arrival: ArrivalPolicy::RandomSlack { slack: 0.1 },
                jitter_spread: switch_sim::JitterSpread::AtEnd,
                aligned_start: false,
                seed: 23,
                ..SimConfig::default()
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut violations = 0usize;
    for (label, cfg) in &sim_configs {
        let result = Simulator::new(&scenario.topology, &scenario.flows, *cfg)
            .expect("valid scenario")
            .run()
            .expect("simulation completes");
        for binding in scenario.flows.bindings() {
            let flow_report = report.flow(binding.id).expect("analysed");
            let mut worst_obs = Time::ZERO;
            let mut worst_bound = Time::ZERO;
            let mut tightness: f64 = 0.0;
            for (k, frame) in flow_report.frames.iter().enumerate() {
                if let Some(obs) = result.stats.worst_frame_response(binding.id, k) {
                    if obs > frame.bound {
                        violations += 1;
                    }
                    worst_obs = worst_obs.max(obs);
                    worst_bound = worst_bound.max(frame.bound);
                    tightness = tightness.max(obs / frame.bound);
                }
            }
            rows.push(vec![
                label.to_string(),
                binding.flow.name().to_string(),
                worst_obs.to_string(),
                worst_bound.to_string(),
                format!("{:.2}", tightness),
            ]);
        }
    }
    print_table(
        &[
            "arrival pattern",
            "flow",
            "worst simulated",
            "analytical bound",
            "obs/bound",
        ],
        &rows,
    );
    println!();
    println!("bound violations across every (pattern, flow, frame): {violations} (expected: 0)");

    // --- Known counterexample on the original 10 Mbit/s access links. ---
    // The MPEG flow alone on the Figure 2 route: the I+P packet needs
    // ~35.8 ms to serialise on the 10 Mbit/s access link, more than the
    // 30 ms separating it from the next (B) packet, so the B packet queues
    // behind it — an effect equations (16)-(18) never charge because they
    // only count *other* flows in the queueing term.
    println!();
    println!(
        "Known limitation (video flow alone, 10 Mbit/s access links, C_I+P = 35.8 ms > T = 30 ms):"
    );
    let slow_scenario =
        gmf_workloads::paper_video_only_scenario(Time::from_millis(150.0), Time::from_millis(1.0));
    let slow_report = analyze(
        &slow_scenario.topology,
        &slow_scenario.flows,
        &AnalysisConfig::conservative(),
    )
    .expect("valid scenario");
    let result = Simulator::new(
        &slow_scenario.topology,
        &slow_scenario.flows,
        SimConfig {
            horizon: Time::from_secs(2.0),
            ..SimConfig::default()
        },
    )
    .expect("valid scenario")
    .run()
    .expect("simulation completes");
    let video_id = slow_scenario.flows.bindings()[0].id;
    let video = slow_report.flow(video_id).expect("analysed");
    let mut slow_violations = 0usize;
    let rows: Vec<Vec<String>> = video
        .frames
        .iter()
        .enumerate()
        .map(|(k, frame)| {
            let obs = result
                .stats
                .worst_frame_response(video_id, k)
                .unwrap_or(Time::ZERO);
            if obs > frame.bound {
                slow_violations += 1;
            }
            vec![
                k.to_string(),
                obs.to_string(),
                frame.bound.to_string(),
                if obs > frame.bound { "VIOLATED" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "video frame",
            "worst simulated",
            "published bound",
            "bound status",
        ],
        &rows,
    );
    if slow_violations > 0 {
        println!(
            "{slow_violations} frame bound(s) are exceeded: the frames following the oversized I+P\n\
             packet inherit its backlog, which the published per-frame equations do not charge.\n\
             The analysis is therefore only safe when every frame's transmission fits inside its\n\
             minimum inter-arrival time on every traversed link (see DESIGN.md §4 and EXPERIMENTS.md)."
        );
    } else {
        println!(
            "No violation occurred in this run, but note the elevated response of the frame right\n\
             after the I+P packet compared to the other B frames — that self-backlog is not charged\n\
             by the published equations and can exceed the bound in tighter configurations."
        );
    }
}
