//! E5 — Figure 6 and "Putting it all together": end-to-end response-time
//! bounds and the admission verdict for the paper scenario.
//!
//! Runs the holistic analysis on the full paper scenario (MPEG video,
//! two VoIP calls, a conference video on the Figure 1 network) and prints
//! the per-hop breakdown of every frame of the video flow plus the
//! per-flow summary the admission controller would act on.

use gmf_analysis::{analyze, AnalysisConfig};
use gmf_bench::{print_header, print_table, threads_flag};
use gmf_model::FlowId;
use gmf_workloads::paper_scenario;

fn main() {
    print_header(
        "E5",
        "Paper Figure 6: end-to-end response-time bounds on the example network",
    );

    let (scenario, ids) = paper_scenario();
    // The worker-thread count must never change a digit of this output —
    // CI diffs the program's stdout across --threads values.
    let config = AnalysisConfig::paper().with_threads(threads_flag());
    let report = analyze(&scenario.topology, &scenario.flows, &config)
        .expect("the paper scenario is structurally valid");

    println!(
        "holistic iterations: {}   converged: {}   schedulable: {}",
        report.iterations, report.converged, report.schedulable
    );
    println!();

    // Per-hop breakdown of the video flow (the Figure 2 route).
    let video = report
        .flow(FlowId(ids.video))
        .expect("video flow was analysed");
    println!(
        "Per-hop bounds of '{}' (route 0 -> 4 -> 6 -> 3):",
        video.name
    );
    let rows: Vec<Vec<String>> = video
        .frames
        .iter()
        .map(|frame| {
            let mut row = vec![frame.frame.to_string(), frame.source_jitter.to_string()];
            for hop in &frame.hops {
                row.push(format!("{}={}", hop.resource, hop.response));
            }
            row.push(frame.bound.to_string());
            row.push(frame.deadline.to_string());
            row.push(if frame.meets_deadline() { "yes" } else { "NO" }.to_string());
            row
        })
        .collect();
    print_table(
        &[
            "frame",
            "GJ",
            "hop 1",
            "hop 2",
            "hop 3",
            "hop 4",
            "hop 5",
            "end-to-end",
            "deadline",
            "met",
        ],
        &rows,
    );

    println!();
    println!("Per-flow summary (the admission controller's view):");
    let rows: Vec<Vec<String>> = report
        .flows
        .iter()
        .map(|f| {
            vec![
                f.name.clone(),
                f.frames.len().to_string(),
                f.worst_bound().map(|t| t.to_string()).unwrap_or_default(),
                f.worst_slack().map(|t| t.to_string()).unwrap_or_default(),
                if f.meets_all_deadlines() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "flow",
            "frames",
            "worst bound",
            "worst slack",
            "deadlines met",
        ],
        &rows,
    );
}
