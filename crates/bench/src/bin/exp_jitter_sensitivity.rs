//! E9 — sensitivity of the end-to-end bound to the source generalized
//! jitter.
//!
//! The generalized jitter is the paper's main modelling addition to the
//! GMF model; this experiment sweeps the video flow's source jitter from
//! 0 to 20 ms on the paper scenario and reports the resulting worst
//! end-to-end bounds of every flow.

use gmf_analysis::{analyze, AnalysisConfig};
use gmf_bench::{print_header, print_table};
use gmf_model::{paper_figure3_flow, FlowId, Time};
use gmf_net::{shortest_path, Priority};
use gmf_workloads::paper_scenario;

fn main() {
    print_header(
        "E9",
        "End-to-end bound vs source generalized jitter of the video flow",
    );

    let mut rows = Vec::new();
    for jitter_ms in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
        // Rebuild the paper scenario but override the video flow's jitter.
        let (scenario, ids) = paper_scenario();
        let mut flows = gmf_net::FlowSet::new();
        for binding in scenario.flows.bindings() {
            if binding.id.0 == ids.video {
                let video = paper_figure3_flow(
                    "mpeg-video",
                    Time::from_millis(150.0),
                    Time::from_millis(jitter_ms),
                );
                let route = shortest_path(
                    &scenario.topology,
                    scenario.network.hosts[0],
                    scenario.network.hosts[3],
                )
                .expect("connected");
                flows.add(video, route, Priority(5));
            } else {
                flows.add_with_encapsulation(
                    binding.flow.clone(),
                    binding.route.clone(),
                    binding.priority,
                    binding.encapsulation,
                );
            }
        }
        let report =
            analyze(&scenario.topology, &flows, &AnalysisConfig::paper()).expect("valid scenario");
        let bound = |id: usize| {
            report
                .flow(FlowId(id))
                .and_then(|f| f.worst_bound())
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        rows.push(vec![
            format!("{jitter_ms} ms"),
            bound(ids.video),
            bound(ids.voice_a),
            bound(ids.voice_b),
            bound(ids.conference),
            report.schedulable.to_string(),
        ]);
    }
    print_table(
        &[
            "video source GJ",
            "video bound",
            "voice 1->3 bound",
            "voice 2->0 bound",
            "conference bound",
            "schedulable",
        ],
        &rows,
    );
    println!();
    println!(
        "expected shape: the video bound grows one-for-one with its own source jitter (Figure 6 adds\n\
         GJ to RSUM); flows that never compete with the video flow — or that outrank it on every\n\
         shared output queue — are unaffected, which is exactly what the table shows."
    );
}
