//! E16 — single-failure survivability: does an admitted network *stay*
//! schedulable when a cable is cut or a switch CPU degrades?
//!
//! Sweeps every single-failure scenario — each full-duplex cable cut, each
//! switch degraded by each factor of `RESILIENCE_DEGRADE_FACTORS` — over a
//! ring-of-cells metro workload and a corpus of fuzz scenarios, through
//! *both* assessment paths:
//!
//! * the incremental path (`SurvivabilityAnalysis::assess`): release the
//!   affected shards from a warm admission controller, rebase onto the
//!   survivor topology and re-admit the re-routed flows shard-scoped;
//! * the cold oracle (`SurvivabilityAnalysis::cold_verdict`): re-analyse
//!   the re-routed survivor set from scratch.
//!
//! The headline number is the divergence count between the two, which must
//! be **0**: verdicts, stranded sets, margins and per-frame bounds are
//! byte-identical.  The work columns show what the incremental path paid
//! for that — flows re-verified per scenario versus the whole live set a
//! cold re-analysis would touch.
//!
//! Everything on stdout is deterministic (CI diffs repeated runs and
//! `--threads 1` vs `4`); wall-clock timings go to stderr.

use gmf_analysis::AnalysisConfig;
use gmf_bench::{
    print_header, print_table, run_survivability_sweep, threads_flag, SurvivabilityOutcome,
    RESILIENCE_BENCH_SEED, RESILIENCE_DEGRADE_FACTORS, RESILIENCE_FUZZ_WORKLOADS,
};
use gmf_par::derive_seed;
use gmf_workloads::{resilience_scenario, valid_scenario, FuzzConfig, ResilienceConfig};

fn main() {
    print_header(
        "E16",
        "Single-failure survivability: incremental vs cold, zero divergence",
    );
    let threads = threads_flag();

    let mut outcomes: Vec<SurvivabilityOutcome> = Vec::new();

    // The ring-of-cells metro: every trunk cut is survivable by re-routing
    // the long way around; every access cut strands one host's flows.
    let ring_config = ResilienceConfig::default();
    let ring = resilience_scenario(derive_seed(RESILIENCE_BENCH_SEED, 0), &ring_config);
    println!(
        "ring-metro: {} cells x ({} local + {} transit) flows = {} admitted, {} trunks (seed {})",
        ring_config.n_cells,
        ring_config.local_flows_per_cell,
        ring_config.transit_flows_per_cell,
        ring_config.n_flows(),
        ring.trunks.len(),
        RESILIENCE_BENCH_SEED,
    );
    outcomes.push(run_survivability_sweep(
        "ring-metro",
        ring.topology,
        ring.flows,
        &AnalysisConfig::paper().with_threads(threads),
        &RESILIENCE_DEGRADE_FACTORS,
    ));

    // The fuzz corpus: random valid (schedulable, sound-regime) scenarios
    // over random topologies — lines, stars and trees with no redundancy,
    // so cable cuts exercise the stranding path hard.
    let fuzz_config = FuzzConfig::default();
    for i in 0..RESILIENCE_FUZZ_WORKLOADS {
        let (scenario, _) = valid_scenario(derive_seed(RESILIENCE_BENCH_SEED, 1 + i), &fuzz_config);
        outcomes.push(run_survivability_sweep(
            &format!("fuzz-{i}"),
            scenario.topology,
            scenario.flows,
            &fuzz_config.analysis.with_threads(threads),
            &RESILIENCE_DEGRADE_FACTORS,
        ));
    }

    println!();
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.clone(),
                o.n_flows.to_string(),
                o.report.n_scenarios().to_string(),
                o.report.n_survivable().to_string(),
                o.report.n_stranding().to_string(),
                o.report.total_reverified().to_string(),
                (o.n_flows * o.report.n_scenarios()).to_string(),
                match o.report.worst_margin() {
                    Some(m) => format!("{:.3}", m.as_millis()),
                    None => "-".to_string(),
                },
                o.divergences.len().to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "workload",
            "flows",
            "scenarios",
            "survivable",
            "stranding",
            "reverified",
            "cold would",
            "worst margin (ms)",
            "divergences",
        ],
        &rows,
    );

    let n_scenarios: usize = outcomes.iter().map(|o| o.report.n_scenarios()).sum();
    let n_survivable: usize = outcomes.iter().map(|o| o.report.n_survivable()).sum();
    let n_stranding: usize = outcomes.iter().map(|o| o.report.n_stranding()).sum();
    let reverified: usize = outcomes.iter().map(|o| o.report.total_reverified()).sum();
    let cold_equivalent: usize = outcomes
        .iter()
        .map(|o| o.n_flows * o.report.n_scenarios())
        .sum();
    let divergences: usize = outcomes.iter().map(|o| o.divergences.len()).sum();

    println!();
    println!(
        "scenarios: {} assessed across {} workloads, {} survivable, {} stranding at least one flow",
        n_scenarios,
        outcomes.len(),
        n_survivable,
        n_stranding,
    );
    println!(
        "incremental work: {} flows re-verified vs {} a cold sweep re-analyses ({:.1}% saved)",
        reverified,
        cold_equivalent,
        100.0 * (1.0 - reverified as f64 / cold_equivalent.max(1) as f64),
    );
    println!("divergences: {divergences}");
    for o in &outcomes {
        for d in &o.divergences {
            println!("  DIVERGENCE [{}] {}", o.label, d);
        }
    }
    println!();
    println!(
        "expected shape: the divergence count is 0 — every incremental verdict, stranded set,\n\
         margin and per-frame bound is byte-identical to the cold oracle's — while the\n\
         incremental path re-verifies only the failure's shards, not the whole live set."
    );

    // Wall clock is nondeterministic, so it stays off stdout.
    for o in &outcomes {
        eprintln!(
            "{}: preload {:.3} s, incremental sweep {:.3} s, cold cross-check {:.3} s",
            o.label,
            o.preload_elapsed.as_secs_f64(),
            o.sweep_elapsed.as_secs_f64(),
            o.cold_elapsed.as_secs_f64(),
        );
    }

    assert!(
        n_scenarios >= 100,
        "E16 must assess at least 100 single-failure scenarios (got {n_scenarios})"
    );
    assert_eq!(divergences, 0, "incremental and cold verdicts diverged");
}
