//! `bench_export` — machine-readable benchmark medians and analysis cost
//! counters for the CI perf trajectory.
//!
//! Runs a curated set of the workspace's benchmark bodies (the same
//! workloads as the Criterion benches B1–B4) a handful of times each and
//! writes `BENCH.json`:
//!
//! ```json
//! { "schema": 3,
//!   "timings_ns": { "<bench>": <median ns per iteration>, ... },
//!   "counters":   { "<counter>": <deterministic count>, ... } }
//! ```
//!
//! `timings_ns` carries the wall-clock medians (machine-dependent);
//! `counters` carries the engine's *deterministic* cost metrics — holistic
//! rounds and per-flow analyses per workload (with dirty-flow skipping off
//! and on), the simulator's event and calendar-queue shape counters, and
//! the tightness-atlas percentile counters — which must be bit-identical
//! on every machine.  Schema 3 added the `sim/*` and `atlas/*` counters;
//! with the event count pinned exactly, the normalised gate on the
//! simulator timing is an events/sec gate.
//!
//! **Baseline check** (`--baseline <path>`): compares the fresh run
//! against a committed baseline and exits non-zero on regression.
//! Counters must match exactly.  Timings are compared *normalised by the
//! `link_demand_build_paper_flow` entry* — a pure-CPU yardstick that
//! cancels overall machine speed out of the ratio — and fail when a
//! normalised timing exceeds the baseline by more than
//! `GMF_BENCH_TOLERANCE` (default 1.5; generous, for runner noise).
//!
//! Usage: `bench_export [OUTPUT_PATH] [--baseline PATH]` (default output
//! `BENCH.json`).  Sample count: `GMF_BENCH_EXPORT_SAMPLES` (default 7).

use gmf_analysis::{
    analyze, first_hop_response, iterate_from, AdmissionMode, AnalysisConfig, AnalysisContext,
    FixedPointStrategy, JitterMap,
};
use gmf_bench::atlas::{tightness_atlas, AtlasConfig};
use gmf_bench::{
    churn_bench_config, long_tail_bench_scenario, median_ns, metro_bench_config,
    mixed_depth_line_scenario, print_header, print_table, run_metro_admission,
    synthetic_converging_set, CHURN_BENCH_SEED, HOLISTIC_SYNTHETIC_AXIS, HOLISTIC_THREAD_AXIS,
    METRO_BENCH_SEED, METRO_SMALL_BATCHES, METRO_SMALL_BATCH_SIZE, METRO_TIGHT_FRACTION,
};
use gmf_model::{
    paper_figure3_flow, BitRate, DemandTable, EncapsulationConfig, FlowId, LinkDemand, Time,
};
use gmf_workloads::{paper_scenario, run_churn};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hint::black_box;
use switch_sim::{SimConfig, Simulator};

/// The calibration timing used to normalise cross-machine comparisons.
const CALIBRATION: &str = "link_demand_build_paper_flow";

/// The `BENCH.json` schema (see module docs).
#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: u32,
    timings_ns: BTreeMap<String, u64>,
    counters: BTreeMap<String, u64>,
}

fn main() {
    let mut output = "BENCH.json".to_string();
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--baseline" {
            baseline = args.next();
            if baseline.is_none() {
                eprintln!("--baseline requires a path");
                std::process::exit(2);
            }
        } else {
            output = arg;
        }
    }
    let samples = std::env::var("GMF_BENCH_EXPORT_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(7);

    print_header("BENCH", "Benchmark medians for the CI perf trajectory");
    let mut results: BTreeMap<String, u64> = BTreeMap::new();
    let mut record = |name: &str, ns: u64| {
        results.insert(name.to_string(), ns);
    };

    // B1 — request-bound functions.
    let flow = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
    let encapsulation = EncapsulationConfig::paper();
    let speed = BitRate::from_mbps(10.0);
    record(
        "link_demand_build_paper_flow",
        median_ns(samples, || {
            black_box(LinkDemand::new(black_box(&flow), &encapsulation, speed));
        }),
    );
    let demand = LinkDemand::new(&flow, &encapsulation, speed);
    record(
        "mx_multi_cycle_window",
        median_ns(samples, || {
            black_box(demand.mx(black_box(Time::from_secs(3.0))));
        }),
    );
    record(
        "demand_table_build",
        median_ns(samples, || {
            black_box(DemandTable::new(black_box(&demand)));
        }),
    );

    // B2 — one per-resource analysis.
    let (scenario, ids) = paper_scenario();
    let ctx = AnalysisContext::new(&scenario.topology, &scenario.flows).unwrap();
    let jitters = JitterMap::initial(&scenario.flows);
    let paper_config = AnalysisConfig::paper();
    let video = FlowId(ids.video);
    record(
        "first_hop_ip_frame",
        median_ns(samples, || {
            black_box(
                first_hop_response(&ctx, &jitters, &paper_config, black_box(video), 0).unwrap(),
            );
        }),
    );

    // B3 — full holistic analysis: paper scenario, synthetic size axis,
    // worker-thread axis, and the strategy axis on the long-tail workload.
    record(
        "holistic_paper_scenario",
        median_ns(samples, || {
            black_box(
                analyze(
                    black_box(&scenario.topology),
                    &scenario.flows,
                    &paper_config,
                )
                .unwrap(),
            );
        }),
    );

    for n_flows in HOLISTIC_SYNTHETIC_AXIS {
        let (topology, set) = synthetic_converging_set(n_flows);
        record(
            &format!("holistic_synthetic/{n_flows}"),
            median_ns(samples, || {
                black_box(analyze(black_box(&topology), &set, &paper_config).unwrap());
            }),
        );
        if n_flows == *HOLISTIC_SYNTHETIC_AXIS.last().unwrap() {
            for threads in HOLISTIC_THREAD_AXIS {
                let config = AnalysisConfig::paper().with_threads(threads);
                record(
                    &format!("holistic_threads/{threads}"),
                    median_ns(samples, || {
                        black_box(analyze(black_box(&topology), &set, &config).unwrap());
                    }),
                );
            }
        }
    }

    let (topology, flows) = long_tail_bench_scenario();
    for (name, strategy) in [
        ("picard", FixedPointStrategy::Picard),
        ("anderson1", FixedPointStrategy::Anderson1),
    ] {
        let config = AnalysisConfig::paper().with_strategy(strategy);
        record(
            &format!("holistic_longtail/{name}"),
            median_ns(samples, || {
                black_box(analyze(black_box(&topology), &flows, &config).unwrap());
            }),
        );
    }

    // B3b — the dense core's cost counters: holistic rounds and per-flow
    // analyses per cold analyze, with dirty-flow skipping off and on.
    // These are deterministic (identical on every machine and at every
    // thread count) — the hard half of the perf-smoke gate.
    let (mixed_topology, mixed_flows) = mixed_depth_line_scenario(10, 4);
    record(
        "analyze_cold/mixed_depth",
        median_ns(samples, || {
            black_box(analyze(black_box(&mixed_topology), &mixed_flows, &paper_config).unwrap());
        }),
    );
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    {
        let (synth_topology, synth_flows) = synthetic_converging_set(16);
        let cost_workloads = [
            ("paper", &scenario.topology, &scenario.flows),
            ("synthetic16", &synth_topology, &synth_flows),
            ("longtail", &topology, &flows),
            ("mixed_depth", &mixed_topology, &mixed_flows),
        ];
        for (name, workload_topology, workload_flows) in cost_workloads {
            {
                // The demand-kernel shape of the workload: how many
                // precompiled tables the interner holds, how many window
                // spans they store in total, and how many interference
                // terms the dense plan walks.  Deterministic like the
                // round counters — a change means the plan changed.
                let ctx = AnalysisContext::new(workload_topology, workload_flows).unwrap();
                let (tables, windows, terms) = ctx.kernel_stats();
                counters.insert(format!("kernel/tables/{name}"), tables);
                counters.insert(format!("kernel/windows/{name}"), windows);
                counters.insert(format!("kernel/terms/{name}"), terms);
            }
            for (mode, skip) in [("full", false), ("skip", true)] {
                let config = AnalysisConfig::paper().with_skip_unchanged_flows(skip);
                let ctx = AnalysisContext::new(workload_topology, workload_flows).unwrap();
                let run = iterate_from(&ctx, &config, JitterMap::initial(workload_flows)).unwrap();
                counters.insert(
                    format!("flow_analyses/{name}/{mode}"),
                    run.flow_analyses as u64,
                );
                counters.insert(
                    format!("rounds/{name}/{mode}"),
                    run.report.iterations as u64,
                );
            }
        }
    }

    // B5 — admission churn: cold restarts vs the incremental warm engine
    // on the shared churn script (same workload as the Criterion
    // `churn_admission` axis and E11).
    let churn = churn_bench_config();
    for (name, mode) in [("cold", AdmissionMode::Cold), ("warm", AdmissionMode::Warm)] {
        record(
            &format!("churn_admission/{name}"),
            median_ns(samples, || {
                black_box(run_churn(
                    black_box(CHURN_BENCH_SEED),
                    &churn,
                    &paper_config,
                    mode,
                ));
            }),
        );
    }

    // B6 — metro-scale sharded admission on the small instance (same
    // definition as E14's full-scale run): one timing for the whole
    // preload + batch + release cycle, plus the deterministic shard and
    // cost counters that must be bit-identical on every machine.
    let metro_config = metro_bench_config();
    record(
        "metro_admission/small",
        median_ns(samples, || {
            black_box(run_metro_admission(
                black_box(METRO_BENCH_SEED),
                &metro_config,
                &paper_config,
                METRO_SMALL_BATCHES,
                METRO_SMALL_BATCH_SIZE,
                METRO_TIGHT_FRACTION,
            ));
        }),
    );
    {
        let metro = run_metro_admission(
            METRO_BENCH_SEED,
            &metro_config,
            &paper_config,
            METRO_SMALL_BATCHES,
            METRO_SMALL_BATCH_SIZE,
            METRO_TIGHT_FRACTION,
        );
        let entries = [
            ("metro/preload_shards", metro.preload.shards),
            ("metro/preload_largest_shard", metro.preload.largest_shard),
            ("metro/preload_rounds", metro.preload.rounds),
            ("metro/preload_flow_analyses", metro.preload.flow_analyses),
            ("metro/batch_accepted", metro.accepted()),
            ("metro/batch_rejected", metro.rejected()),
            ("metro/warm_decisions", metro.warm_decisions()),
            ("metro/batch_rounds", metro.rounds()),
            ("metro/batch_flow_analyses", metro.flow_analyses()),
            ("metro/largest_trial", metro.largest_trial()),
            ("metro/final_shards", metro.final_shards),
        ];
        for (name, value) in entries {
            counters.insert(name.to_string(), value as u64);
        }
    }

    // B4 — simulator throughput.  The event count is deterministic and
    // pinned by the `sim/*` counters below, so the timing gate on this
    // entry *is* an events/sec gate: ns-per-event regressing past the
    // calibrated tolerance fails the perf smoke even though raw wall time
    // varies by machine.
    let sim_config = SimConfig {
        horizon: Time::from_millis(300.0),
        ..SimConfig::default()
    };
    record(
        "simulate_paper_scenario_300ms",
        median_ns(samples, || {
            black_box(
                Simulator::new(black_box(&scenario.topology), &scenario.flows, sim_config)
                    .unwrap()
                    .run()
                    .unwrap(),
            );
        }),
    );
    {
        // Event-core shape counters: the work the simulator performs and
        // how the calendar queue held it.  Any drift means the event core
        // changed behaviour, not just speed.
        let result = Simulator::new(&scenario.topology, &scenario.flows, sim_config)
            .unwrap()
            .run()
            .unwrap();
        counters.insert("sim/paper_300ms/events".into(), result.events_processed);
        counters.insert(
            "sim/paper_300ms/packets".into(),
            result.stats.packets_completed,
        );
        counters.insert(
            "sim/paper_300ms/max_pending".into(),
            result.queue.max_pending as u64,
        );
        counters.insert(
            "sim/paper_300ms/max_bucket".into(),
            result.queue.max_bucket as u64,
        );
        counters.insert(
            "sim/paper_300ms/buckets_opened".into(),
            result.queue.buckets_opened,
        );
        counters.insert(
            "sim/paper_300ms/pool_reuses".into(),
            result.queue.pool_reuses,
        );
    }

    // B7 — the tightness atlas (E17) on a small corpus: one timing for the
    // analysis + long-horizon simulation sweep, plus deterministic
    // percentile counters.  The permille columns are integer ratios of
    // integer histogram edges, so they are bit-identical everywhere; the
    // worst row moving is a tightness change worth noticing in review.
    let atlas_config = AtlasConfig {
        scenarios: 3,
        horizon_factor: 4,
        ..AtlasConfig::default()
    };
    record(
        "tightness_atlas/small",
        median_ns(samples, || {
            black_box(tightness_atlas(black_box(&atlas_config)));
        }),
    );
    {
        let atlas = tightness_atlas(&atlas_config);
        counters.insert("atlas/rows".into(), atlas.rows.len() as u64);
        counters.insert("atlas/scenarios_ok".into(), atlas.scenarios_ok as u64);
        counters.insert("atlas/events".into(), atlas.events_processed);
        counters.insert("atlas/packets".into(), atlas.packets_completed);
        counters.insert("atlas/max_pending".into(), atlas.queue.max_pending as u64);
        counters.insert(
            "atlas/worst_max_permille".into(),
            atlas.tightest().map_or(0, |row| row.max_permille),
        );
        if let Some((_, median, _)) = atlas.spread(|row| row.p99_permille) {
            counters.insert("atlas/median_p99_permille".into(), median);
        }
    }

    // Human-readable tables plus the machine-readable artifact.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, ns)| vec![name.clone(), format!("{ns}")])
        .collect();
    print_table(&["bench", "median ns"], &rows);
    println!();
    let rows: Vec<Vec<String>> = counters
        .iter()
        .map(|(name, count)| vec![name.clone(), format!("{count}")])
        .collect();
    print_table(&["counter", "value"], &rows);

    let report = BenchReport {
        schema: 3,
        timings_ns: results,
        counters,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&output, json + "\n").expect("write BENCH.json");
    println!();
    println!(
        "wrote {} timings and {} counters to {output}",
        report.timings_ns.len(),
        report.counters.len()
    );

    if let Some(baseline_path) = baseline {
        let failures = check_against_baseline(&report, &baseline_path);
        if !failures.is_empty() {
            eprintln!();
            eprintln!("perf-smoke FAILED against baseline {baseline_path}:");
            for failure in &failures {
                eprintln!("  {failure}");
            }
            std::process::exit(1);
        }
        println!("perf-smoke OK against baseline {baseline_path}");
    }
}

/// Compare a fresh report against a committed baseline: counters must
/// match exactly; timings are normalised by [`CALIBRATION`] and may not
/// regress by more than `GMF_BENCH_TOLERANCE` (default 1.5).
fn check_against_baseline(report: &BenchReport, baseline_path: &str) -> Vec<String> {
    let tolerance = std::env::var("GMF_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(json) => json,
        Err(err) => return vec![format!("cannot read baseline {baseline_path}: {err}")],
    };
    let baseline: BenchReport = match serde_json::from_str(&baseline_json) {
        Ok(baseline) => baseline,
        Err(err) => return vec![format!("cannot parse baseline {baseline_path}: {err}")],
    };

    let mut failures = Vec::new();
    // Deterministic counters: any difference is a real behaviour change
    // (more rounds, more per-flow analyses) and fails regardless of noise.
    for (name, expected) in &baseline.counters {
        match report.counters.get(name) {
            Some(actual) if actual == expected => {}
            Some(actual) => {
                failures.push(format!("counter {name}: {actual} != baseline {expected}"))
            }
            None => failures.push(format!("counter {name}: missing from this run")),
        }
    }

    // Machine-dependent timings: compare speed relative to the
    // calibration entry so a uniformly slower runner cancels out.
    let (Some(&calib_now), Some(&calib_base)) = (
        report.timings_ns.get(CALIBRATION),
        baseline.timings_ns.get(CALIBRATION),
    ) else {
        failures.push(format!("calibration timing {CALIBRATION} missing"));
        return failures;
    };
    for (name, &expected) in &baseline.timings_ns {
        if name == CALIBRATION {
            continue;
        }
        let Some(&actual) = report.timings_ns.get(name) else {
            failures.push(format!("timing {name}: missing from this run"));
            continue;
        };
        let normalised = (actual as f64 / calib_now as f64) / (expected as f64 / calib_base as f64);
        if normalised > tolerance {
            failures.push(format!(
                "timing {name}: {actual} ns is {normalised:.2}x the baseline's \
                 calibrated expectation (> {tolerance:.2}x)"
            ));
        }
    }
    failures
}
