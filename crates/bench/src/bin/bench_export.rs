//! `bench_export` — machine-readable benchmark medians for the CI perf
//! trajectory.
//!
//! Runs a curated set of the workspace's benchmark bodies (the same
//! workloads as the Criterion benches B1–B4) a handful of times each and
//! writes `BENCH.json`: a flat JSON object mapping benchmark name to the
//! median per-iteration wall time in nanoseconds.  CI uploads the file as
//! an artifact on every build, so regressions show up as a step in the
//! trajectory rather than an anecdote.
//!
//! Usage: `bench_export [OUTPUT_PATH]` (default `BENCH.json`).  Sample
//! count can be tuned with `GMF_BENCH_EXPORT_SAMPLES` (default 7).

use gmf_analysis::{
    analyze, first_hop_response, AdmissionMode, AnalysisConfig, AnalysisContext,
    FixedPointStrategy, JitterMap,
};
use gmf_bench::{
    churn_bench_config, long_tail_bench_scenario, median_ns, print_header, print_table,
    synthetic_converging_set, CHURN_BENCH_SEED, HOLISTIC_SYNTHETIC_AXIS, HOLISTIC_THREAD_AXIS,
};
use gmf_model::{paper_figure3_flow, BitRate, EncapsulationConfig, FlowId, LinkDemand, Time};
use gmf_workloads::{paper_scenario, run_churn};
use std::collections::BTreeMap;
use std::hint::black_box;
use switch_sim::{SimConfig, Simulator};

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH.json".to_string());
    let samples = std::env::var("GMF_BENCH_EXPORT_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(7);

    print_header("BENCH", "Benchmark medians for the CI perf trajectory");
    let mut results: BTreeMap<String, u64> = BTreeMap::new();
    let mut record = |name: &str, ns: u64| {
        results.insert(name.to_string(), ns);
    };

    // B1 — request-bound functions.
    let flow = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
    let encapsulation = EncapsulationConfig::paper();
    let speed = BitRate::from_mbps(10.0);
    record(
        "link_demand_build_paper_flow",
        median_ns(samples, || {
            black_box(LinkDemand::new(black_box(&flow), &encapsulation, speed));
        }),
    );
    let demand = LinkDemand::new(&flow, &encapsulation, speed);
    record(
        "mx_multi_cycle_window",
        median_ns(samples, || {
            black_box(demand.mx(black_box(Time::from_secs(3.0))));
        }),
    );

    // B2 — one per-resource analysis.
    let (scenario, ids) = paper_scenario();
    let ctx = AnalysisContext::new(&scenario.topology, &scenario.flows).unwrap();
    let jitters = JitterMap::initial(&scenario.flows);
    let paper_config = AnalysisConfig::paper();
    let video = FlowId(ids.video);
    record(
        "first_hop_ip_frame",
        median_ns(samples, || {
            black_box(
                first_hop_response(&ctx, &jitters, &paper_config, black_box(video), 0).unwrap(),
            );
        }),
    );

    // B3 — full holistic analysis: paper scenario, synthetic size axis,
    // worker-thread axis, and the strategy axis on the long-tail workload.
    record(
        "holistic_paper_scenario",
        median_ns(samples, || {
            black_box(
                analyze(
                    black_box(&scenario.topology),
                    &scenario.flows,
                    &paper_config,
                )
                .unwrap(),
            );
        }),
    );

    for n_flows in HOLISTIC_SYNTHETIC_AXIS {
        let (topology, set) = synthetic_converging_set(n_flows);
        record(
            &format!("holistic_synthetic/{n_flows}"),
            median_ns(samples, || {
                black_box(analyze(black_box(&topology), &set, &paper_config).unwrap());
            }),
        );
        if n_flows == *HOLISTIC_SYNTHETIC_AXIS.last().unwrap() {
            for threads in HOLISTIC_THREAD_AXIS {
                let config = AnalysisConfig::paper().with_threads(threads);
                record(
                    &format!("holistic_threads/{threads}"),
                    median_ns(samples, || {
                        black_box(analyze(black_box(&topology), &set, &config).unwrap());
                    }),
                );
            }
        }
    }

    let (topology, flows) = long_tail_bench_scenario();
    for (name, strategy) in [
        ("picard", FixedPointStrategy::Picard),
        ("anderson1", FixedPointStrategy::Anderson1),
    ] {
        let config = AnalysisConfig::paper().with_strategy(strategy);
        record(
            &format!("holistic_longtail/{name}"),
            median_ns(samples, || {
                black_box(analyze(black_box(&topology), &flows, &config).unwrap());
            }),
        );
    }

    // B5 — admission churn: cold restarts vs the incremental warm engine
    // on the shared churn script (same workload as the Criterion
    // `churn_admission` axis and E11).
    let churn = churn_bench_config();
    for (name, mode) in [("cold", AdmissionMode::Cold), ("warm", AdmissionMode::Warm)] {
        record(
            &format!("churn_admission/{name}"),
            median_ns(samples, || {
                black_box(run_churn(
                    black_box(CHURN_BENCH_SEED),
                    &churn,
                    &paper_config,
                    mode,
                ));
            }),
        );
    }

    // B4 — simulator throughput.
    let sim_config = SimConfig {
        horizon: Time::from_millis(300.0),
        ..SimConfig::default()
    };
    record(
        "simulate_paper_scenario_300ms",
        median_ns(samples, || {
            black_box(
                Simulator::new(black_box(&scenario.topology), &scenario.flows, sim_config)
                    .unwrap()
                    .run()
                    .unwrap(),
            );
        }),
    );

    // Human-readable table plus the machine-readable artifact.
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, ns)| vec![name.clone(), format!("{ns}")])
        .collect();
    print_table(&["bench", "median ns"], &rows);

    let json = serde_json::to_string_pretty(&results).expect("results serialize");
    std::fs::write(&output, json + "\n").expect("write BENCH.json");
    println!();
    println!("wrote {} entries to {output}", results.len());
}
