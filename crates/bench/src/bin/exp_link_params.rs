//! E3 — Figure 4: the per-link parameters of the MPEG flow on link(0,4) at
//! 10 Mbit/s with 1 ms of generalized jitter.
//!
//! Regenerates `C_i^k` for every frame, the number of Ethernet frames per
//! UDP packet, and the aggregates `CSUM`, `NSUM = 94`, `TSUM = 270 ms` and
//! `MFT = 1.2304 ms` (equation 1).  The OCR of the paper's CSUM value is
//! garbled ("ms.362863"); the reconstructed value is printed next to it.

use gmf_bench::{compare, print_header, print_table};
use gmf_model::{
    max_frame_transmission_time, paper_figure3_flow, paper_figure3_pattern, BitRate,
    EncapsulationConfig, LinkDemand, Time,
};

fn main() {
    print_header(
        "E3",
        "Paper Figure 4: per-link parameters of the MPEG flow on link(0,4) @ 10 Mbit/s",
    );

    let flow = paper_figure3_flow(
        "mpeg-video",
        Time::from_millis(150.0),
        Time::from_millis(1.0),
    );
    let pattern = paper_figure3_pattern();
    let speed = BitRate::from_bps(1.0e7);
    let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), speed);

    let rows: Vec<Vec<String>> = (0..flow.n_frames())
        .map(|k| {
            vec![
                k.to_string(),
                pattern[k].to_string(),
                format!("{} bytes", flow.frame(k).unwrap().payload.as_bytes_ceil()),
                demand.n_ethernet_frames(k).to_string(),
                demand.c(k).to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "k",
            "picture",
            "payload",
            "Ethernet frames",
            "C_k on link(0,4)",
        ],
        &rows,
    );

    println!();
    compare(
        "MFT(link(0,4))  (eq. 1)",
        "1.2304 ms",
        &max_frame_transmission_time(speed).to_string(),
    );
    compare(
        "NSUM (Ethernet frames per GOP)  (eq. 5)",
        "94",
        &demand.nsum().to_string(),
    );
    compare("TSUM  (eq. 6)", "270 ms", &demand.tsum().to_string());
    compare(
        "CSUM  (eq. 4)",
        "garbled in the OCR",
        &demand.csum().to_string(),
    );
    println!(
        "  link utilization CSUM/TSUM: {:.3} (schedulability conditions 20/34)",
        demand.utilization()
    );

    println!();
    println!("Interference bounds on a selection of window lengths:");
    let rows: Vec<Vec<String>> = [1.0, 5.0, 31.0, 100.0, 270.0, 400.0]
        .iter()
        .map(|&ms| {
            let t = Time::from_millis(ms);
            vec![
                t.to_string(),
                demand.mx(t).to_string(),
                demand.nx(t).to_string(),
            ]
        })
        .collect();
    print_table(&["window t", "MX(t)  (eq. 11)", "NX(t)  (eq. 13)"], &rows);
}
