//! E2 — Figure 3: the MPEG `IBBPBBPBB` stream as a generalized multiframe
//! flow.
//!
//! Regenerates the 9-frame GMF tuple of the worked example: transmission
//! order, payload sizes, inter-arrival times and the cycle length
//! `TSUM = 270 ms`.

use gmf_bench::{compare, print_header, print_table};
use gmf_model::{paper_figure3_flow, paper_figure3_pattern, Time};

fn main() {
    print_header("E2", "Paper Figure 3: MPEG IBBPBBPBB stream as a GMF flow");

    let flow = paper_figure3_flow(
        "mpeg-video",
        Time::from_millis(150.0),
        Time::from_millis(1.0),
    );
    let pattern = paper_figure3_pattern();

    let rows: Vec<Vec<String>> = flow
        .frames()
        .iter()
        .enumerate()
        .map(|(k, spec)| {
            vec![
                k.to_string(),
                pattern[k].to_string(),
                format!("{} bytes", spec.payload.as_bytes_ceil()),
                spec.min_interarrival.to_string(),
                spec.deadline.to_string(),
                spec.jitter.to_string(),
            ]
        })
        .collect();
    print_table(
        &["k", "picture", "payload S_k", "T_k", "D_k", "GJ_k"],
        &rows,
    );

    println!();
    compare("number of frames n", "9", &flow.n_frames().to_string());
    compare(
        "TSUM (GMF cycle length)",
        "270 ms",
        &flow.tsum().to_string(),
    );
    compare(
        "transmission order",
        "I+P B B P B B P B B",
        &pattern
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" "),
    );
    println!(
        "  long-run payload rate: {:.3} Mbit/s (reconstructed MPEG-2 SD stream)",
        flow.mean_payload_rate_bps() / 1e6
    );
}
