//! E6 — the conclusion's switch-dimensioning claims.
//!
//! The paper concludes that `CIRC(N)` "heavily influences the delay",
//! that a 48-port switch built from a 16-processor network processor
//! achieves `CIRC = 11.1 µs`, and that such a switch "can comfortably deal
//! with links of speed 1 Gbit/s".  This experiment regenerates:
//!
//! 1. the CIRC table across port counts and processor counts,
//! 2. the end-to-end video bound on the paper scenario as a function of
//!    CIRC (processor speed sweep), and
//! 3. the voice-flow bound on an all-gigabit network with the 48-port /
//!    16-CPU switch parameters.

use gmf_analysis::{analyze, AnalysisConfig};
use gmf_bench::{compare, print_header, print_table};
use gmf_model::{FlowId, Time};
use gmf_net::{LinkProfile, PaperNetworkConfig, SwitchConfig};
use gmf_workloads::{paper_scenario_with, PaperScenarioFlows, Scenario};

fn video_bound(scenario: &Scenario, ids: &PaperScenarioFlows) -> Option<Time> {
    analyze(
        &scenario.topology,
        &scenario.flows,
        &AnalysisConfig::paper(),
    )
    .ok()
    .and_then(|r| r.flow(FlowId(ids.video)).and_then(|f| f.worst_bound()))
}

fn main() {
    print_header(
        "E6",
        "Conclusion: switch dimensioning (CIRC vs ports, processors, link speed)",
    );

    // 1. CIRC table.
    let rows: Vec<Vec<String>> = [
        (4usize, 1usize),
        (8, 1),
        (16, 1),
        (48, 1),
        (48, 4),
        (48, 16),
        (64, 16),
    ]
    .iter()
    .map(|&(ports, cpus)| {
        let cfg = SwitchConfig::paper().with_processors(cpus);
        vec![
            ports.to_string(),
            cpus.to_string(),
            cfg.circ(ports).to_string(),
        ]
    })
    .collect();
    print_table(&["ports", "processors", "CIRC"], &rows);
    compare(
        "CIRC for 48 ports / 16 processors",
        "11.1 µs",
        &SwitchConfig::paper()
            .with_processors(16)
            .circ(48)
            .to_string(),
    );
    println!();

    // 2. Video bound vs switch speed (CIRC sweep via CROUTE/CSEND scaling).
    println!("End-to-end video bound on the paper scenario as the switch CPU gets faster:");
    let rows: Vec<Vec<String>> = [1.0f64, 2.0, 4.0, 10.0, 100.0]
        .iter()
        .map(|&speedup| {
            let switch = SwitchConfig {
                croute: Time::from_micros(2.7 / speedup),
                csend: Time::from_micros(1.0 / speedup),
                processors: 1,
            };
            let (scenario, ids) = paper_scenario_with(PaperNetworkConfig {
                switch,
                ..Default::default()
            });
            let bound = video_bound(&scenario, &ids)
                .map(|t| t.to_string())
                .unwrap_or_else(|| "unschedulable".to_string());
            vec![format!("{speedup}x"), switch.circ(4).to_string(), bound]
        })
        .collect();
    print_table(
        &["CPU speed-up", "CIRC (4 ports)", "worst video bound"],
        &rows,
    );
    println!();

    // 3. Gigabit feasibility with the 48-port / 16-CPU switch parameters.
    println!("All-gigabit network with 16-processor switches (the conclusion's scenario):");
    let gigabit = PaperNetworkConfig {
        access: LinkProfile::ethernet_1g(),
        backbone: LinkProfile::ethernet_1g(),
        switch: SwitchConfig::paper().with_processors(16),
    };
    let (scenario, ids) = paper_scenario_with(gigabit);
    let report = analyze(
        &scenario.topology,
        &scenario.flows,
        &AnalysisConfig::paper(),
    )
    .expect("structurally valid");
    let rows: Vec<Vec<String>> = report
        .flows
        .iter()
        .map(|f| {
            vec![
                f.name.clone(),
                f.worst_bound().map(|t| t.to_string()).unwrap_or_default(),
                if f.meets_all_deadlines() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(&["flow", "worst bound", "deadlines met"], &rows);
    compare(
        "1 Gbit/s links handled comfortably",
        "claimed",
        if report.schedulable {
            "yes (all deadlines met with large slack)"
        } else {
            "no"
        },
    );
    let _ = ids;
}
