//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every experiment binary (`src/bin/exp_*.rs`) regenerates one figure,
//! worked example or claim of the paper (see DESIGN.md §6 and
//! EXPERIMENTS.md) and prints it as an aligned text table plus, where a
//! paper value exists, a `paper vs measured` line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atlas;
pub mod conformance;

/// Print a named experiment header.
pub fn print_header(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Print an aligned table: `headers` first, then one row per entry.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Print a `paper vs measured` comparison line.
pub fn compare(quantity: &str, paper: &str, measured: &str) {
    println!("  {quantity:<42} paper: {paper:<16} measured: {measured}");
}

/// Parse a `--threads N` flag from the process arguments (default 1).
///
/// Used by the experiment binaries so CI can diff their output across
/// worker-thread counts; the value itself is deliberately never printed —
/// the whole point is that the output must not depend on it.
pub fn threads_flag() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            if let Some(value) = args.next() {
                if let Ok(n) = value.parse::<usize>() {
                    return n.max(1);
                }
            }
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            if let Ok(n) = value.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    1
}

/// A heavily loaded bidirectional line of software switches with slow
/// routing CPUs — the canonical *long-tail* holistic workload.
///
/// Interference chains run the whole line in each direction, so the jitter
/// fixed point needs on the order of `2·n_switches` Picard rounds; this is
/// the workload on which `Anderson1` demonstrably reduces the iteration
/// count (see the `holistic_longtail` bench axis and E10).  The dependency
/// graph is acyclic (the two directions never couple), so accelerated and
/// plain runs converge to byte-identical reports.
pub fn long_tail_line_scenario(
    n_switches: usize,
    pairs: usize,
) -> (gmf_net::Topology, gmf_net::FlowSet) {
    use gmf_model::{voip_flow, Time, VoiceCodec};
    use gmf_net::{line, shortest_path, LinkProfile, Priority, SwitchConfig};

    let switch = SwitchConfig {
        croute: Time::from_micros(600.0),
        csend: Time::from_micros(1.0),
        processors: 1,
    };
    let (topology, a, b, _) = line(
        n_switches,
        LinkProfile::ethernet_100m(),
        LinkProfile::ethernet_100m(),
        switch,
    );
    let mut flows = gmf_net::FlowSet::new();
    for i in 0..pairs {
        let forward = voip_flow(
            &format!("voice-ab-{i}"),
            VoiceCodec::G711,
            Time::from_millis(2000.0),
            Time::from_millis(0.5),
        );
        flows.add(
            forward,
            // tidy-allow: unwrap invariant: line is connected
            shortest_path(&topology, a, b).expect("line is connected"),
            Priority(7),
        );
        let reverse = voip_flow(
            &format!("voice-ba-{i}"),
            VoiceCodec::G711,
            Time::from_millis(2000.0),
            Time::from_millis(0.5),
        );
        flows.add(
            reverse,
            // tidy-allow: unwrap invariant: line is connected
            shortest_path(&topology, b, a).expect("line is connected"),
            Priority(7),
        );
    }
    (topology, flows)
}

/// The long-tail line with *mixed-depth* traffic: the whole-line voice
/// pairs of [`long_tail_line_scenario`] plus one local leaf-to-leaf flow
/// across every adjacent switch pair, in each direction.
///
/// The whole-line flows keep every backbone jitter moving for the full
/// `≈ 2·n_switches`-round transport tail, but a local flow's inputs
/// stabilise as soon as the jitter front has passed its two switches —
/// early-line locals sit unchanged for most of the iteration.  This is the
/// workload where the engine's dirty-flow round skipping shows its
/// steady-state value (E12): the deep tail keeps iterating while the
/// stabilised locals are no longer re-analysed.
pub fn mixed_depth_line_scenario(
    n_switches: usize,
    pairs: usize,
) -> (gmf_net::Topology, gmf_net::FlowSet) {
    use gmf_model::{voip_flow, Time, VoiceCodec};
    use gmf_net::{LinkProfile, Priority, Route, SwitchConfig};

    let switch = SwitchConfig {
        croute: Time::from_micros(450.0),
        csend: Time::from_micros(1.0),
        processors: 1,
    };
    let access = LinkProfile::ethernet_100m();
    let mut topology = gmf_net::Topology::new();
    let host_a = topology.add_end_host("hostA");
    let mut switches = Vec::with_capacity(n_switches);
    let mut leaves = Vec::with_capacity(n_switches);
    for i in 0..n_switches {
        let sw = topology.add_switch(switch, format!("sw{i}"));
        let leaf = topology.add_end_host(format!("leaf{i}"));
        topology
            .add_duplex_link(leaf, sw, access)
            // tidy-allow: unwrap invariant: fresh topology
            .expect("fresh topology");
        switches.push(sw);
        leaves.push(leaf);
    }
    let host_b = topology.add_end_host("hostB");
    topology
        .add_duplex_link(host_a, switches[0], access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");
    for pair in switches.windows(2) {
        topology
            .add_duplex_link(pair[0], pair[1], access)
            // tidy-allow: unwrap invariant: fresh topology
            .expect("fresh topology");
    }
    topology
        .add_duplex_link(switches[n_switches - 1], host_b, access)
        // tidy-allow: unwrap invariant: fresh topology
        .expect("fresh topology");

    let mut flows = gmf_net::FlowSet::new();
    let voice = |name: &str| {
        voip_flow(
            name,
            VoiceCodec::G711,
            Time::from_millis(2000.0),
            Time::from_millis(0.5),
        )
    };
    // tidy-allow: unwrap invariant: line path
    let line_route = |nodes: Vec<gmf_net::NodeId>| Route::new(&topology, nodes).expect("line path");
    for i in 0..pairs {
        let mut forward = vec![host_a];
        forward.extend(&switches);
        forward.push(host_b);
        flows.add(
            voice(&format!("voice-ab-{i}")),
            line_route(forward),
            Priority(7),
        );
        let mut reverse = vec![host_b];
        reverse.extend(switches.iter().rev());
        reverse.push(host_a);
        flows.add(
            voice(&format!("voice-ba-{i}")),
            line_route(reverse),
            Priority(7),
        );
    }
    for i in 0..n_switches - 1 {
        flows.add(
            voice(&format!("local-fwd-{i}")),
            line_route(vec![leaves[i], switches[i], switches[i + 1], leaves[i + 1]]),
            Priority(7),
        );
        flows.add(
            voice(&format!("local-rev-{i}")),
            line_route(vec![leaves[i + 1], switches[i + 1], switches[i], leaves[i]]),
            Priority(7),
        );
    }
    (topology, flows)
}

/// Flow-count axis of the `holistic_synthetic` bench.
pub const HOLISTIC_SYNTHETIC_AXIS: [usize; 3] = [4, 8, 16];

/// Worker-thread axis of the `holistic_threads` bench (applied to the
/// largest synthetic set).
pub const HOLISTIC_THREAD_AXIS: [usize; 3] = [1, 2, 4];

/// The random converging star set the holistic benches time (seed 99,
/// 40 % offered utilization on the sweep generator).
///
/// Both `benches/holistic.rs` and the `bench_export` binary call this, so
/// a `holistic_synthetic/N` or `holistic_threads/N` entry in `BENCH.json`
/// always times exactly the workload the Criterion bench of the same name
/// times — retuning the workload here retunes both surfaces together.
pub fn synthetic_converging_set(n_flows: usize) -> (gmf_net::Topology, gmf_net::FlowSet) {
    gmf_workloads::random_sweep_set(99, n_flows, 0.4, &gmf_workloads::SweepConfig::default())
}

/// A star with several sinks: the sweep generator's random flows dealt
/// round-robin over `n_sinks` sink hosts (and the default source hosts).
///
/// Unlike the single-sink converging star, the jitter dependency graph
/// decomposes into per-sink regions coupled only through the (constant)
/// first-hop jitters, and the regions converge after different numbers of
/// rounds.  That staggered convergence is exactly what the dirty-flow
/// round skipping exploits — E12 uses this set to measure the saving, and
/// it is the static analogue of the E11 churn workload's topology.
pub fn multi_sink_star_set(
    seed: u64,
    n_flows: usize,
    n_sinks: usize,
) -> (gmf_net::Topology, gmf_net::FlowSet) {
    use gmf_net::{shortest_path, star, Priority, PriorityPolicy};
    use gmf_workloads::{random_flow_collection, SweepConfig};
    use rand::SeedableRng;

    let config = SweepConfig::default();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let flows = random_flow_collection(&mut rng, n_flows, 0.4, &config.synthetic);
    let (topology, _switch, hosts) = star(config.n_sources + n_sinks, config.link, config.switch);
    let sinks = &hosts[..n_sinks];
    let sources = &hosts[n_sinks..];
    let mut set = gmf_net::FlowSet::new();
    for (index, flow) in flows.into_iter().enumerate() {
        let source = sources[index % sources.len()];
        let sink = sinks[index % sinks.len()];
        // tidy-allow: unwrap invariant: star is connected
        let route = shortest_path(&topology, source, sink).expect("star is connected");
        set.add(flow, route, Priority(0));
    }
    set.assign_priorities(PriorityPolicy::DeadlineMonotonic {
        levels: config.priority_levels,
    });
    (topology, set)
}

/// The long-tail instance the `holistic_longtail` bench and E10b use:
/// [`long_tail_line_scenario`] with 6 switches and 6 flow pairs (Picard
/// needs 10 rounds, Anderson(1) 8).
pub fn long_tail_bench_scenario() -> (gmf_net::Topology, gmf_net::FlowSet) {
    long_tail_line_scenario(6, 6)
}

/// The churn workload the `churn_admission` bench axis, `bench_export`
/// and E11 (`exp_admission_churn`) all replay: arrivals and departures on
/// the sweep's converging star, sized so the live set stays around a
/// dozen flows.
///
/// A single definition keeps the three surfaces honest: a
/// `churn_admission/cold-vs-warm` entry in `BENCH.json` always times
/// exactly the script the Criterion bench and the experiment binary run.
pub fn churn_bench_config() -> gmf_workloads::ChurnConfig {
    gmf_workloads::ChurnConfig {
        n_events: 64,
        departure_fraction: 0.35,
        flow_utilization: (0.01, 0.05),
        n_sinks: 4,
        sweep: gmf_workloads::SweepConfig {
            n_sources: 8,
            ..gmf_workloads::SweepConfig::default()
        },
    }
}

/// The master seed of the churn benches and E11.
pub const CHURN_BENCH_SEED: u64 = 2008;

/// The master seed of the metro admission workload (E14 and the
/// `metro/*` entries of `bench_export`).
pub const METRO_BENCH_SEED: u64 = 1408;

/// Candidate batches E14 replays at full metro scale.
pub const METRO_BATCHES: usize = 8;

/// Candidates per batch in E14.
pub const METRO_BATCH_SIZE: usize = 512;

/// Fraction of candidates carrying an impossible deadline, so the stream
/// exercises the rejection path and victim attribution too.
pub const METRO_TIGHT_FRACTION: f64 = 0.1;

/// Candidate batches of the small `bench_export` metro instance.
pub const METRO_SMALL_BATCHES: usize = 4;

/// Candidates per batch of the small `bench_export` metro instance.
pub const METRO_SMALL_BATCH_SIZE: usize = 64;

/// The CI-sized metro instance `bench_export` times and counts: the same
/// per-cell shape as E14's full-scale default, two dozen cells instead of
/// thousands.
pub fn metro_bench_config() -> gmf_workloads::MetroConfig {
    gmf_workloads::MetroConfig::small()
}

/// Deterministic counters of one admission batch in a metro run.
#[derive(Debug, Clone)]
pub struct MetroBatch {
    /// Candidates admitted.
    pub accepted: usize,
    /// Candidates rejected.
    pub rejected: usize,
    /// Decisions served from a converged warm start.
    pub warm_decisions: usize,
    /// Fixed-point rounds spent across the batch.
    pub rounds: usize,
    /// Per-flow analyses spent across the batch.
    pub flow_analyses: usize,
    /// Largest trial set (flows re-verified for one decision) — stays at
    /// one cell's worth of flows no matter how many cells the metro runs.
    pub largest_trial: usize,
    /// Wall clock of the batch (machine-dependent; keep off stdout).
    pub elapsed: std::time::Duration,
}

/// Outcome of a metro admission run: preload, admission batches, then
/// departure of everything the batches admitted.
///
/// Everything except the `elapsed` fields is deterministic — identical on
/// every machine and at every worker-thread count.
#[derive(Debug, Clone)]
pub struct MetroOutcome {
    /// Pre-admitted flows in the scenario.
    pub n_flows: usize,
    /// Shard count / fixed-point cost of verifying the pre-admitted set.
    pub preload: gmf_analysis::PreloadStats,
    /// Wall clock of the preload verification.
    pub preload_elapsed: std::time::Duration,
    /// Per-batch admission counters, in replay order.
    pub batches: Vec<MetroBatch>,
    /// Admitted candidates released again after the batches.
    pub released: usize,
    /// Wall clock of the release phase.
    pub release_elapsed: std::time::Duration,
    /// Live flows after the releases (must equal `n_flows`).
    pub final_flows: usize,
    /// Shards after the releases (must equal `preload.shards`).
    pub final_shards: usize,
}

impl MetroOutcome {
    /// Total admission decisions taken.
    pub fn decisions(&self) -> usize {
        self.batches.iter().map(|b| b.accepted + b.rejected).sum()
    }

    /// Total candidates admitted.
    pub fn accepted(&self) -> usize {
        self.batches.iter().map(|b| b.accepted).sum()
    }

    /// Total candidates rejected.
    pub fn rejected(&self) -> usize {
        self.batches.iter().map(|b| b.rejected).sum()
    }

    /// Total decisions served from a converged warm start.
    pub fn warm_decisions(&self) -> usize {
        self.batches.iter().map(|b| b.warm_decisions).sum()
    }

    /// Total fixed-point rounds across all decisions.
    pub fn rounds(&self) -> usize {
        self.batches.iter().map(|b| b.rounds).sum()
    }

    /// Total per-flow analyses across all decisions.
    pub fn flow_analyses(&self) -> usize {
        self.batches.iter().map(|b| b.flow_analyses).sum()
    }

    /// Largest trial set across all decisions.
    pub fn largest_trial(&self) -> usize {
        self.batches
            .iter()
            .map(|b| b.largest_trial)
            .max()
            .unwrap_or(0)
    }

    /// Wall clock spent deciding (sum of the batch times).
    pub fn admission_elapsed(&self) -> std::time::Duration {
        self.batches.iter().map(|b| b.elapsed).sum()
    }
}

/// Replay the metro admission workload: generate the scenario, verify the
/// pre-admitted set shard-parallel ([`gmf_analysis::AdmissionController::
/// with_accepted`]), push `n_batches` batches of `batch_size` candidates
/// through `request_batch`, then release everything the batches admitted.
///
/// E14 (`exp_metro`) runs this at the full `MetroConfig::default()` scale;
/// `bench_export` runs it on [`metro_bench_config`] — one definition, so a
/// `metro/*` entry in `BENCH.json` always counts exactly the workload the
/// experiment binary replays.  The scenario and candidate streams use
/// distinct [`gmf_par::derive_seed`] lanes of `seed`, so the two can be
/// scaled independently.
pub fn run_metro_admission(
    seed: u64,
    config: &gmf_workloads::MetroConfig,
    analysis: &gmf_analysis::AnalysisConfig,
    n_batches: usize,
    batch_size: usize,
    tight_fraction: f64,
) -> MetroOutcome {
    use gmf_analysis::AdmissionController;
    use gmf_par::derive_seed;
    use gmf_workloads::{metro_candidates, metro_scenario};
    use std::time::Instant;

    let scenario = metro_scenario(derive_seed(seed, 0), config);
    let candidates = metro_candidates(
        derive_seed(seed, 1),
        &scenario,
        config,
        n_batches * batch_size,
        tight_fraction,
    );

    let start = Instant::now();
    let (mut controller, preload) =
        AdmissionController::with_accepted(scenario.topology, scenario.flows, *analysis)
            // tidy-allow: unwrap invariant: the metro generator keeps per-cell load low enough to verify
            .expect("metro pre-admitted set verifies as schedulable");
    let preload_elapsed = start.elapsed();

    let mut batches = Vec::with_capacity(n_batches);
    let mut admitted = Vec::new();
    for chunk in candidates.chunks(batch_size) {
        let start = Instant::now();
        let decisions = controller
            .request_batch(chunk.iter().cloned())
            // tidy-allow: unwrap invariant: candidate routes are intra-cell shortest paths
            .expect("metro candidate routes are structurally valid");
        let elapsed = start.elapsed();
        let mut batch = MetroBatch {
            accepted: 0,
            rejected: 0,
            warm_decisions: 0,
            rounds: 0,
            flow_analyses: 0,
            largest_trial: 0,
            elapsed,
        };
        for decision in &decisions {
            if decision.is_accepted() {
                batch.accepted += 1;
                admitted.push(decision.id());
            } else {
                batch.rejected += 1;
            }
            let cost = decision.cost();
            batch.warm_decisions += usize::from(cost.warm);
            batch.rounds += cost.rounds;
            batch.flow_analyses += cost.flow_analyses;
            batch.largest_trial = batch.largest_trial.max(cost.shard_flows);
        }
        batches.push(batch);
    }

    let start = Instant::now();
    for &id in &admitted {
        controller
            .release(id)
            // tidy-allow: unwrap invariant: every admitted candidate is live
            .expect("admitted candidates are live");
    }
    let release_elapsed = start.elapsed();

    MetroOutcome {
        n_flows: config.n_flows(),
        preload,
        preload_elapsed,
        batches,
        released: admitted.len(),
        release_elapsed,
        final_flows: controller.n_accepted(),
        final_shards: controller.partition().n_shards(),
    }
}

/// The master seed of the resilience survivability workload (E16).
pub const RESILIENCE_BENCH_SEED: u64 = 1608;

/// CPU-degradation factors E16 sweeps per switch (mild throttling and a
/// heavy slowdown).
pub const RESILIENCE_DEGRADE_FACTORS: [u64; 2] = [2, 8];

/// Fuzz-corpus workloads E16 sweeps in addition to the ring metro.
pub const RESILIENCE_FUZZ_WORKLOADS: u64 = 10;

/// One workload's single-failure survivability sweep, with the incremental
/// verdicts cross-checked against the cold oracle.
#[derive(Debug, Clone)]
pub struct SurvivabilityOutcome {
    /// Workload label ("ring-metro", "fuzz-…").
    pub label: String,
    /// Admitted flows of the workload.
    pub n_flows: usize,
    /// Preload statistics of the pristine warm controller.
    pub preload: gmf_analysis::PreloadStats,
    /// The incremental sweep's verdicts, in scenario order.
    pub report: gmf_analysis::SurvivabilityReport,
    /// Incremental-vs-cold divergences (must be empty; the zero-divergence
    /// gate of the sweep).
    pub divergences: Vec<String>,
    /// Wall clock of the preload (nondeterministic; stderr only).
    pub preload_elapsed: std::time::Duration,
    /// Wall clock of the incremental sweep.
    pub sweep_elapsed: std::time::Duration,
    /// Wall clock of the cold cross-check.
    pub cold_elapsed: std::time::Duration,
}

/// Sweep every single-failure scenario of `(topology, flows)` — each cable
/// cut, each switch degraded by each factor — through the incremental
/// [`gmf_analysis::SurvivabilityAnalysis`] *and* the cold oracle, and
/// report both the verdicts and any divergence between the two paths.
///
/// # Panics
///
/// Panics when the pre-admitted `flows` do not verify as schedulable on
/// the pristine `topology` (the workload generators guarantee they do).
pub fn run_survivability_sweep(
    label: &str,
    topology: gmf_net::Topology,
    flows: gmf_net::FlowSet,
    analysis: &gmf_analysis::AnalysisConfig,
    degrade_factors: &[u64],
) -> SurvivabilityOutcome {
    use gmf_analysis::{divergence, single_failure_scenarios, SurvivabilityAnalysis};
    use std::time::Instant;

    let n_flows = flows.len();
    let scenarios = single_failure_scenarios(&topology, degrade_factors);

    let start = Instant::now();
    let (analysis, preload) = SurvivabilityAnalysis::new(topology, flows, *analysis)
        // tidy-allow: unwrap invariant: workload generators emit schedulable pre-admitted sets
        .expect("pre-admitted set verifies as schedulable");
    let preload_elapsed = start.elapsed();

    let start = Instant::now();
    let report = analysis
        .sweep(&scenarios)
        // tidy-allow: unwrap invariant: enumerated scenarios reference existing hardware
        .expect("enumerated scenarios are assessable");
    let sweep_elapsed = start.elapsed();

    let start = Instant::now();
    let divergences: Vec<String> = scenarios
        .iter()
        .zip(&report.verdicts)
        .filter_map(|(scenario, verdict)| {
            let cold = analysis
                .cold_verdict(scenario)
                // tidy-allow: unwrap invariant: enumerated scenarios reference existing hardware
                .expect("enumerated scenarios are assessable");
            divergence(verdict, &cold)
        })
        .collect();
    let cold_elapsed = start.elapsed();

    SurvivabilityOutcome {
        label: label.to_string(),
        n_flows,
        preload,
        report,
        divergences,
        preload_elapsed,
        sweep_elapsed,
        cold_elapsed,
    }
}

/// Time `f` and return the median duration in nanoseconds over `samples`
/// runs (fast bodies are batched so each sample spans at least ~100 µs).
///
/// This is the measurement behind the `bench_export` binary: a handful of
/// samples and a median is enough for a CI trajectory without criterion's
/// statistical machinery.
pub fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    use std::time::Instant;
    let samples = samples.max(1);

    // Calibrate a batch size so one sample is long enough to time.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(std::time::Duration::from_nanos(20));
    let batch = (100_000u128 / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut timings: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        timings.push(start.elapsed().as_nanos() / u128::from(batch));
    }
    timings.sort_unstable();
    timings[timings.len() / 2] as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_flag_defaults_to_one() {
        // The test harness passes no --threads flag.
        assert_eq!(threads_flag(), 1);
    }

    #[test]
    fn long_tail_scenario_shape() {
        let (topology, flows) = long_tail_line_scenario(3, 2);
        assert_eq!(flows.len(), 4);
        flows.validate_against(&topology).unwrap();
    }

    #[test]
    fn median_ns_measures_something() {
        let ns = median_ns(3, || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert!(ns > 0);
    }

    #[test]
    fn metro_run_counts_and_restores_the_preloaded_set() {
        let config = gmf_workloads::MetroConfig {
            n_cells: 3,
            hosts_per_cell: 4,
            flows_per_cell: 5,
            ..gmf_workloads::MetroConfig::default()
        };
        let outcome = run_metro_admission(
            METRO_BENCH_SEED,
            &config,
            &gmf_analysis::AnalysisConfig::paper(),
            2,
            6,
            0.25,
        );
        assert_eq!(outcome.decisions(), 12);
        assert_eq!(outcome.accepted() + outcome.rejected(), 12);
        assert_eq!(outcome.released, outcome.accepted());
        // The releases restore the preloaded set exactly.
        assert_eq!(outcome.final_flows, outcome.n_flows);
        assert_eq!(outcome.final_shards, outcome.preload.shards);
        // Trials stay within one cell plus that cell's admitted candidates.
        assert!(outcome.largest_trial() <= config.flows_per_cell + 12);
    }

    #[test]
    fn survivability_sweep_has_zero_divergence_on_the_tiny_ring() {
        let config = gmf_workloads::ResilienceConfig::tiny();
        let scenario = gmf_workloads::resilience_scenario(RESILIENCE_BENCH_SEED, &config);
        let outcome = run_survivability_sweep(
            "ring-metro",
            scenario.topology,
            scenario.flows,
            &gmf_analysis::AnalysisConfig::paper(),
            &RESILIENCE_DEGRADE_FACTORS,
        );
        assert_eq!(outcome.n_flows, config.n_flows());
        // One cable cut per access link and trunk, one degrade per switch
        // per factor.
        let cables = config.n_cells * config.hosts_per_cell + config.n_cells;
        let degrades = config.n_cells * RESILIENCE_DEGRADE_FACTORS.len();
        assert_eq!(outcome.report.n_scenarios(), cables + degrades);
        assert_eq!(outcome.divergences, Vec::<String>::new());
        // Trunk cuts re-route around the ring; access cuts strand a host's
        // flows.
        assert!(outcome.report.n_survivable() >= config.n_cells);
        assert!(outcome.report.n_stranding() >= 1);
        assert!(outcome.report.worst_margin().is_some());
    }

    #[test]
    fn helpers_do_not_panic() {
        print_header("E0", "smoke test");
        print_table(
            &["a", "bbb"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["333".to_string(), "4".to_string()],
            ],
        );
        compare("MFT", "1.2304 ms", "1.2304 ms");
    }
}
