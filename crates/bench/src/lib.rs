//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every experiment binary (`src/bin/exp_*.rs`) regenerates one figure,
//! worked example or claim of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md) and prints it as an aligned text table plus, where a
//! paper value exists, a `paper vs measured` line.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Print a named experiment header.
pub fn print_header(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Print an aligned table: `headers` first, then one row per entry.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Print a `paper vs measured` comparison line.
pub fn compare(quantity: &str, paper: &str, measured: &str) {
    println!("  {quantity:<42} paper: {paper:<16} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        print_header("E0", "smoke test");
        print_table(
            &["a", "bbb"],
            &[
                vec!["1".to_string(), "2".to_string()],
                vec!["333".to_string(), "4".to_string()],
            ],
        );
        compare("MFT", "1.2304 ms", "1.2304 ms");
    }
}
