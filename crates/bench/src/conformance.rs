//! The adversarial conformance harness (E13): analysis vs simulation as a
//! fuzzed, CI-enforced subsystem.
//!
//! For one scenario the harness
//!
//! 1. runs the analysis across its engine axes — Picard × worker threads
//!    1/4 × round-skipping on/off must be `assert_eq!`-identical, and
//!    Anderson(1) must agree on the verdict and (at convergence) on every
//!    bound;
//! 2. simulates the scenario under every configured [`AdversarialPolicy`]
//!    — legal arrival patterns engineered to push observed response times
//!    toward the analytical bound (critical-instant phasing, maximal
//!    release jitter, bursty back-to-back GOPs);
//! 3. asserts `observed ≤ bound` for every (policy, flow, frame) with at
//!    least one completed packet, records the per-frame *tightness ratio*
//!    `observed / bound`, and flags *vacuous* flows (zero completed
//!    packets under a policy — a coverage hole, not a pass).
//!
//! [`run_campaign`] drives hundreds of [`gmf_workloads::fuzz`] scenarios
//! through the check; [`minimize_violation`] greedily shrinks a violating
//! flow set to a minimal reproducer; [`TightnessReport`] is the
//! machine-readable artifact (`CONFORMANCE.json`) CI uploads next to
//! `BENCH.json` so bound slack can be watched over time.

use gmf_analysis::{analyze, AnalysisConfig, AnalysisReport, FixedPointStrategy};
use gmf_model::{FlowId, Time};
use gmf_net::{FlowSet, Topology};
use gmf_par::derive_seed;
use gmf_workloads::fuzz::{valid_scenario, FuzzConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use switch_sim::{ArrivalPolicy, JitterSpread, SimConfig, Simulator};

/// The simulation policies of the conformance harness: the dense control
/// plus the three adversarial patterns of `switch-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversarialPolicy {
    /// Dense aligned arrivals with the default uniform jitter spread —
    /// the control every prior validation test used.
    Dense,
    /// Critical-instant phasing, with the `AtEnd` jitter spread (trailing
    /// fragments of each packet held to the end of the jitter window; the
    /// first fragment releases at the packet's arrival).
    CriticalInstant,
    /// First packet released as late as its jitter window allows, all
    /// later packets immediately (compressed inter-arrivals downstream).
    MaxReleaseJitter,
    /// Back-to-back GOPs separated by random re-phasing pauses.
    BurstyGops,
}

impl AdversarialPolicy {
    /// Every policy, in the order reports iterate them.
    pub const ALL: [AdversarialPolicy; 4] = [
        AdversarialPolicy::Dense,
        AdversarialPolicy::CriticalInstant,
        AdversarialPolicy::MaxReleaseJitter,
        AdversarialPolicy::BurstyGops,
    ];

    /// Stable label used in tables and report keys.
    pub fn label(&self) -> &'static str {
        match self {
            AdversarialPolicy::Dense => "dense",
            AdversarialPolicy::CriticalInstant => "critical-instant",
            AdversarialPolicy::MaxReleaseJitter => "max-release-jitter",
            AdversarialPolicy::BurstyGops => "bursty-gops",
        }
    }

    /// `true` for the policies that actively chase the bound (everything
    /// but the dense control).
    pub fn is_adversarial(&self) -> bool {
        !matches!(self, AdversarialPolicy::Dense)
    }

    /// The simulator configuration of this policy.
    pub fn sim_config(&self, horizon: Time, seed: u64) -> SimConfig {
        let base = SimConfig {
            horizon,
            seed,
            ..SimConfig::default()
        };
        match self {
            AdversarialPolicy::Dense => base,
            AdversarialPolicy::CriticalInstant => SimConfig {
                arrival: ArrivalPolicy::CriticalInstant,
                jitter_spread: JitterSpread::AtEnd,
                ..base
            },
            AdversarialPolicy::MaxReleaseJitter => SimConfig {
                arrival: ArrivalPolicy::MaxReleaseJitter,
                ..base
            },
            AdversarialPolicy::BurstyGops => SimConfig {
                arrival: ArrivalPolicy::BurstyGops { max_pause: 0.7 },
                ..base
            },
        }
    }
}

/// Configuration of one conformance check.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// The analysis the bounds come from (conservative by default — the
    /// configuration whose bounds must dominate the simulator).
    pub analysis: AnalysisConfig,
    /// The simulation policies to run.
    pub policies: Vec<AdversarialPolicy>,
    /// Simulated horizon; `None` derives one from the flow set
    /// ([`horizon_for`]).
    pub horizon: Option<Time>,
    /// Cross-check the analysis engine axes (threads 1/4 × skipping
    /// on/off × Picard/Anderson) before using the bounds.  Costs a few
    /// extra analyses per scenario; the fuzz test disables it on a
    /// fraction of cases to stay inside the CI budget.
    pub engine_axes: bool,
    /// Seed of every simulation run.
    pub sim_seed: u64,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            analysis: AnalysisConfig::conservative(),
            policies: AdversarialPolicy::ALL.to_vec(),
            horizon: None,
            engine_axes: true,
            sim_seed: 0x5EED,
        }
    }
}

/// Whether `label` names one of the bound-chasing policies.  Labels the
/// harness did not produce — e.g. `random-slack` reaching a report via
/// [`check_simulation`] — are not adversarial.
fn label_is_adversarial(label: &str) -> bool {
    AdversarialPolicy::ALL
        .iter()
        .any(|p| p.label() == label && p.is_adversarial())
}

/// A horizon covering three full GMF cycles of the slowest flow (clamped
/// to `[250 ms, 1 s]`): every frame index is observed at least twice and
/// the bursty policy still completes whole GOPs.
pub fn horizon_for(flows: &FlowSet) -> Time {
    let max_tsum = flows
        .bindings()
        .iter()
        .map(|b| b.flow.tsum())
        .fold(Time::ZERO, Time::max);
    (max_tsum * 3u64).clamp(Time::from_millis(250.0), Time::from_secs(1.0))
}

/// One (policy, flow, frame) observation: the worst simulated response
/// against the analytical bound.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameObservation {
    /// Label of the simulation policy.
    pub policy: &'static str,
    /// The flow.
    pub flow: FlowId,
    /// The flow's name.
    pub flow_name: String,
    /// GMF frame index.
    pub frame: usize,
    /// Worst observed response time.
    pub observed: Time,
    /// The analytical bound.
    pub bound: Time,
    /// Tightness `observed / bound` (`> 1` is a violation).
    pub ratio: f64,
}

/// The conformance result of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConformance {
    /// Scenario label.
    pub label: String,
    /// The worst end-to-end bound of the analysis.
    pub worst_bound: Option<Time>,
    /// Every (policy, flow, frame) with at least one completed packet.
    pub observations: Vec<FrameObservation>,
    /// The subset with `observed > bound` (must be empty).
    pub violations: Vec<FrameObservation>,
    /// Flows that completed *zero* packets under a policy
    /// (`(policy label, flow name)`) — silent coverage holes.  The check
    /// is per *flow*: with a caller-shortened horizon, later GMF frames
    /// of a covered flow may still go unobserved (they simply yield no
    /// observation); the default [`horizon_for`] spans three full cycles
    /// so every frame index is seen.
    pub vacuous: Vec<(&'static str, String)>,
}

impl ScenarioConformance {
    /// The observation with the largest tightness ratio, restricted to
    /// adversarial policies when `adversarial_only` is set.
    pub fn max_tightness(&self, adversarial_only: bool) -> Option<&FrameObservation> {
        self.observations
            .iter()
            .filter(|o| !adversarial_only || label_is_adversarial(o.policy))
            .max_by(|a, b| a.ratio.total_cmp(&b.ratio))
    }

    /// `true` when the scenario has neither violations nor vacuous flows.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.vacuous.is_empty()
    }
}

/// Run the analysis across its engine axes and return the base report.
///
/// Picard × threads {1, 4} × skipping {on, off} must be byte-identical;
/// Anderson(1) × threads {1, 4} must agree on the verdict and, at
/// convergence, on every flow report.
fn analyze_across_axes(
    topology: &Topology,
    flows: &FlowSet,
    config: &ConformanceConfig,
) -> Result<AnalysisReport, String> {
    // The base report is always Picard: the byte-identity axes below pin
    // against it (an Anderson base would spuriously differ in `iterations`
    // and `trace` even when every bound agrees).
    let base_config = config.analysis.with_strategy(FixedPointStrategy::Picard);
    let base = analyze(topology, flows, &base_config).map_err(|e| e.to_string())?;
    if !config.engine_axes {
        return Ok(base);
    }
    for threads in [1usize, 4] {
        for skip in [false, true] {
            let axis = base_config
                .with_strategy(FixedPointStrategy::Picard)
                .with_threads(threads)
                .with_skip_unchanged_flows(skip);
            if axis == base_config {
                continue; // the base itself — nothing new to compare
            }
            let report = analyze(topology, flows, &axis).map_err(|e| e.to_string())?;
            if report != base {
                return Err(format!(
                    "engine-axes mismatch: Picard threads={threads} skip={skip} \
                     differs from the base report"
                ));
            }
        }
        let anderson_config = base_config
            .with_strategy(FixedPointStrategy::Anderson1)
            .with_threads(threads);
        let anderson = analyze(topology, flows, &anderson_config).map_err(|e| e.to_string())?;
        if anderson.converged != base.converged
            || anderson.schedulable != base.schedulable
            || (base.converged
                && (anderson.flows != base.flows || anderson.failure != base.failure))
        {
            return Err(format!(
                "engine-axes mismatch: Anderson1 threads={threads} disagrees with Picard"
            ));
        }
    }
    Ok(base)
}

/// Run the full conformance check on one scenario.
///
/// Returns `Err` when the scenario is unusable for conformance (analysis
/// error, not schedulable, engine-axes mismatch, simulation error) —
/// callers feed only schedulable scenarios, so an `Err` is itself a
/// finding.  Bound violations and vacuous flows are *not* errors; they
/// are reported in the result for the caller to fail on loudly.
pub fn check_scenario(
    label: &str,
    topology: &Topology,
    flows: &FlowSet,
    config: &ConformanceConfig,
) -> Result<ScenarioConformance, String> {
    let report = analyze_across_axes(topology, flows, config)?;
    if !report.schedulable {
        return Err(format!(
            "{label}: conformance needs a schedulable scenario ({})",
            report
                .failure
                .clone()
                .unwrap_or_else(|| "missed deadlines".into())
        ));
    }

    let horizon = config.horizon.unwrap_or_else(|| horizon_for(flows));
    let mut conformance = ScenarioConformance {
        label: label.to_string(),
        worst_bound: report.worst_bound(),
        observations: Vec::new(),
        violations: Vec::new(),
        vacuous: Vec::new(),
    };
    for policy in &config.policies {
        let sim_config = policy.sim_config(horizon, config.sim_seed);
        simulate_into(
            &mut conformance,
            &report,
            topology,
            flows,
            sim_config,
            policy.label(),
        )?;
    }
    Ok(conformance)
}

/// Check one *explicit* simulation configuration against the analysis —
/// the legacy `assert_bounds_dominate` path, now driver-backed: one
/// analysis (no engine-axes sweep), one simulation, the same
/// per-(flow, frame) domination, tightness and vacuous-coverage
/// accounting as [`check_scenario`].
pub fn check_simulation(
    label: &str,
    topology: &Topology,
    flows: &FlowSet,
    analysis: &AnalysisConfig,
    sim_config: SimConfig,
) -> Result<ScenarioConformance, String> {
    let report = analyze(topology, flows, analysis).map_err(|e| e.to_string())?;
    if !report.schedulable {
        return Err(format!(
            "{label}: conformance needs a schedulable scenario ({})",
            report
                .failure
                .clone()
                .unwrap_or_else(|| "missed deadlines".into())
        ));
    }
    let mut conformance = ScenarioConformance {
        label: label.to_string(),
        worst_bound: report.worst_bound(),
        observations: Vec::new(),
        violations: Vec::new(),
        vacuous: Vec::new(),
    };
    simulate_into(
        &mut conformance,
        &report,
        topology,
        flows,
        sim_config,
        sim_config.arrival.label(),
    )?;
    Ok(conformance)
}

/// Run one simulation and fold its observations, violations and vacuous
/// flows into `conformance`.
fn simulate_into(
    conformance: &mut ScenarioConformance,
    report: &AnalysisReport,
    topology: &Topology,
    flows: &FlowSet,
    sim_config: SimConfig,
    policy_label: &'static str,
) -> Result<(), String> {
    let label = &conformance.label;
    let result = Simulator::new(topology, flows, sim_config)
        .map_err(|e| format!("{label}/{policy_label}: {e}"))?
        .run()
        .map_err(|e| format!("{label}/{policy_label}: {e}"))?;
    for binding in flows.bindings() {
        if result.stats.completed_of_flow(binding.id) == 0 {
            conformance
                .vacuous
                .push((policy_label, binding.flow.name().to_string()));
            continue;
        }
        let flow_report = report
            .flow(binding.id)
            .ok_or_else(|| format!("{label}: no report for {}", binding.flow.name()))?;
        for (k, frame) in flow_report.frames.iter().enumerate() {
            let Some(observed) = result.stats.worst_frame_response(binding.id, k) else {
                continue;
            };
            let observation = FrameObservation {
                policy: policy_label,
                flow: binding.id,
                flow_name: binding.flow.name().to_string(),
                frame: k,
                observed,
                bound: frame.bound,
                ratio: frame.tightness(observed).unwrap_or(f64::INFINITY),
            };
            if !frame.dominates(observed) {
                conformance.violations.push(observation.clone());
            }
            conformance.observations.push(observation);
        }
    }
    Ok(())
}

/// Greedily shrink a violating flow set to a minimal reproducer: try
/// removing one flow at a time, keeping every removal that preserves at
/// least one bound violation.  Returns `None` when the input does not
/// violate in the first place.
pub fn minimize_violation(
    topology: &Topology,
    flows: &FlowSet,
    config: &ConformanceConfig,
) -> Option<FlowSet> {
    let violates = |set: &FlowSet| {
        check_scenario("minimize", topology, set, config)
            .map(|c| !c.violations.is_empty())
            .unwrap_or(false)
    };
    if !violates(flows) {
        return None;
    }
    let mut current = flows.clone();
    loop {
        let mut shrunk = false;
        for id in current.ids().collect::<Vec<_>>() {
            if current.len() <= 1 {
                break;
            }
            let mut candidate = current.clone();
            // tidy-allow: unwrap invariant: id comes from the set
            candidate.remove(id).expect("id comes from the set");
            if violates(&candidate) {
                current = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return Some(current);
        }
    }
}

/// The outcome of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-scenario results, in seed order.
    pub scenarios: Vec<ScenarioConformance>,
    /// Total random draws made (accepted + rejected).
    pub draws: u64,
    /// Rejected draws, tallied by [`gmf_workloads::ScenarioRejection::kind`].
    pub rejections: BTreeMap<&'static str, u64>,
}

impl CampaignReport {
    /// Every violation across the campaign.
    pub fn violations(&self) -> impl Iterator<Item = (&str, &FrameObservation)> {
        self.scenarios
            .iter()
            .flat_map(|s| s.violations.iter().map(move |v| (s.label.as_str(), v)))
    }

    /// Every vacuous (policy, flow) pair across the campaign.
    pub fn vacuous(&self) -> impl Iterator<Item = (&str, &(&'static str, String))> {
        self.scenarios
            .iter()
            .flat_map(|s| s.vacuous.iter().map(move |v| (s.label.as_str(), v)))
    }
}

/// Run `n_scenarios` fuzz scenarios (drawn from `derive_seed(master_seed,
/// index)`) through the conformance check.  Deterministic in all inputs.
pub fn run_campaign(
    master_seed: u64,
    n_scenarios: usize,
    fuzz: &FuzzConfig,
    config: &ConformanceConfig,
) -> Result<CampaignReport, String> {
    let mut scenarios = Vec::with_capacity(n_scenarios);
    let mut draws = 0u64;
    let mut rejections: BTreeMap<&'static str, u64> = BTreeMap::new();
    for index in 0..n_scenarios as u64 {
        let (scenario, rejected) = valid_scenario(derive_seed(master_seed, index), fuzz);
        draws += 1 + rejected.len() as u64;
        for (_, reason) in &rejected {
            *rejections.entry(reason.kind()).or_insert(0) += 1;
        }
        scenarios.push(check_scenario(
            &scenario.label,
            &scenario.topology,
            &scenario.flows,
            config,
        )?);
    }
    Ok(CampaignReport {
        scenarios,
        draws,
        rejections,
    })
}

/// The machine-readable tightness artifact (`CONFORMANCE.json`).
///
/// Ratios are stored as integer thousandths (`⌊ratio × 1000⌉`) so the
/// file is byte-stable across platforms and trivially diffable; keys are
/// `<scenario>/<policy>/<flow>#<frame>`.
#[derive(Debug, Serialize, Deserialize)]
pub struct TightnessReport {
    /// Schema version of this file.
    pub schema: u32,
    /// Scenarios checked (probes + fuzz).
    pub scenarios: u64,
    /// Rejected fuzz draws by reason.
    pub rejected_draws: BTreeMap<String, u64>,
    /// Bound violations (must be 0).
    pub violations: u64,
    /// Vacuous (policy, flow) pairs (must be 0).
    pub vacuous: u64,
    /// Largest tightness over every observation, in thousandths.
    pub max_tightness_milli: u64,
    /// Largest tightness under an *adversarial* policy, in thousandths.
    pub adversarial_max_milli: u64,
    /// The observation key achieving `max_tightness_milli`.
    pub max_tightness_key: String,
    /// Per-frame tightness in thousandths, keyed
    /// `<scenario>/<policy>/<flow>#<frame>`.
    pub per_frame_milli: BTreeMap<String, u64>,
}

/// Ratio → integer thousandths.
fn milli(ratio: f64) -> u64 {
    (ratio * 1000.0).round().max(0.0) as u64
}

impl TightnessReport {
    /// Build the artifact from checked scenarios plus the campaign's
    /// rejection tally.
    pub fn build(
        scenarios: &[ScenarioConformance],
        rejections: &BTreeMap<&'static str, u64>,
    ) -> Self {
        let mut per_frame_milli = BTreeMap::new();
        let mut violations = 0u64;
        let mut vacuous = 0u64;
        let mut max_key = String::new();
        let mut max_ratio = 0.0f64;
        let mut adversarial_max = 0.0f64;
        for scenario in scenarios {
            violations += scenario.violations.len() as u64;
            vacuous += scenario.vacuous.len() as u64;
            for o in &scenario.observations {
                let key = format!(
                    "{}/{}/{}#{}",
                    scenario.label, o.policy, o.flow_name, o.frame
                );
                per_frame_milli.insert(key.clone(), milli(o.ratio));
                if o.ratio > max_ratio {
                    max_ratio = o.ratio;
                    max_key = key;
                }
                if label_is_adversarial(o.policy) && o.ratio > adversarial_max {
                    adversarial_max = o.ratio;
                }
            }
        }
        TightnessReport {
            schema: 1,
            scenarios: scenarios.len() as u64,
            rejected_draws: rejections
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            violations,
            vacuous,
            max_tightness_milli: milli(max_ratio),
            adversarial_max_milli: milli(adversarial_max),
            max_tightness_key: max_key,
            per_frame_milli,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::cbr_flow;
    use gmf_net::{shortest_path, star, LinkProfile, Priority, Route, SwitchConfig};

    fn direct_link_probe() -> (Topology, FlowSet) {
        let mut t = Topology::new();
        let a = t.add_end_host("a");
        let b = t.add_end_host("b");
        t.add_duplex_link(a, b, LinkProfile::ethernet_100m())
            .unwrap();
        let mut fs = FlowSet::new();
        fs.add(
            cbr_flow(
                "probe",
                1000,
                Time::from_millis(10.0),
                Time::from_millis(50.0),
                Time::ZERO,
            ),
            Route::new(&t, vec![a, b]).unwrap(),
            Priority(7),
        );
        (t, fs)
    }

    #[test]
    fn direct_link_probe_is_clean_and_tight() {
        let (t, fs) = direct_link_probe();
        let conformance = check_scenario("probe", &t, &fs, &ConformanceConfig::default()).unwrap();
        assert!(conformance.is_clean(), "{:?}", conformance.violations);
        // A single flow on a cable has an exact analysis: the critical
        // instant reaches the bound.
        let max = conformance.max_tightness(true).unwrap();
        assert!(max.ratio > 0.99, "max adversarial tightness {}", max.ratio);
        assert!(max.ratio <= 1.0 + 1e-9);
        assert!(minimize_violation(&t, &fs, &ConformanceConfig::default()).is_none());
    }

    #[test]
    fn adversarial_policies_tighten_the_star() {
        let (t, _sw, hosts) = star(3, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let mk = |n: &str| {
            cbr_flow(
                n,
                8000,
                Time::from_millis(10.0),
                Time::from_millis(60.0),
                Time::from_millis(0.5),
            )
        };
        fs.add(
            mk("hi"),
            shortest_path(&t, hosts[0], hosts[2]).unwrap(),
            Priority(7),
        );
        fs.add(
            mk("lo"),
            shortest_path(&t, hosts[1], hosts[2]).unwrap(),
            Priority(1),
        );
        let conformance = check_scenario("star", &t, &fs, &ConformanceConfig::default()).unwrap();
        assert!(conformance.is_clean());
        let dense_max = conformance
            .observations
            .iter()
            .filter(|o| o.policy == "dense")
            .map(|o| o.ratio)
            .fold(0.0f64, f64::max);
        let adversarial_max = conformance.max_tightness(true).unwrap().ratio;
        assert!(
            adversarial_max > dense_max,
            "adversarial ({adversarial_max}) must beat dense ({dense_max})"
        );
    }

    #[test]
    fn check_simulation_mirrors_the_policy_path() {
        let (t, fs) = direct_link_probe();
        let horizon = horizon_for(&fs);
        let via_policy = check_scenario(
            "probe",
            &t,
            &fs,
            &ConformanceConfig {
                policies: vec![AdversarialPolicy::Dense],
                engine_axes: false,
                ..ConformanceConfig::default()
            },
        )
        .unwrap();
        let via_sim = check_simulation(
            "probe",
            &t,
            &fs,
            &AnalysisConfig::conservative(),
            AdversarialPolicy::Dense.sim_config(horizon, ConformanceConfig::default().sim_seed),
        )
        .unwrap();
        assert_eq!(via_policy.observations, via_sim.observations);
        assert!(via_sim.is_clean());
    }

    #[test]
    fn anderson_strategy_config_passes_the_axes_check() {
        // The byte-identity axes pin against a Picard base even when the
        // caller's config selects Anderson (whose iteration counts and
        // traces legitimately differ).
        let (t, fs) = direct_link_probe();
        let config = ConformanceConfig {
            analysis: AnalysisConfig::conservative().with_strategy(FixedPointStrategy::Anderson1),
            ..ConformanceConfig::default()
        };
        let conformance = check_scenario("probe", &t, &fs, &config).unwrap();
        assert!(conformance.is_clean());
    }

    #[test]
    fn vacuous_flows_are_flagged_not_passed() {
        // A horizon of zero releases no traffic: every (policy, flow) is
        // vacuous and the scenario must NOT count as clean.
        let (t, fs) = direct_link_probe();
        let config = ConformanceConfig {
            horizon: Some(Time::ZERO),
            engine_axes: false,
            policies: vec![AdversarialPolicy::Dense],
            ..ConformanceConfig::default()
        };
        let conformance = check_scenario("vacuous", &t, &fs, &config).unwrap();
        assert!(conformance.violations.is_empty());
        assert_eq!(conformance.vacuous, vec![("dense", "probe".to_string())]);
        assert!(!conformance.is_clean());
    }

    #[test]
    fn campaign_is_deterministic_and_clean() {
        let fuzz = FuzzConfig::default();
        let config = ConformanceConfig {
            horizon: Some(Time::from_millis(150.0)),
            engine_axes: false,
            ..ConformanceConfig::default()
        };
        let a = run_campaign(7, 3, &fuzz, &config).unwrap();
        let b = run_campaign(7, 3, &fuzz, &config).unwrap();
        assert_eq!(a.scenarios.len(), 3);
        assert_eq!(a.draws, b.draws);
        assert_eq!(a.rejections, b.rejections);
        for (sa, sb) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(sa.label, sb.label);
            assert_eq!(sa.observations, sb.observations);
        }
        assert_eq!(a.violations().count(), 0);
    }

    #[test]
    fn tightness_report_schema() {
        let (t, fs) = direct_link_probe();
        let conformance = check_scenario("probe", &t, &fs, &ConformanceConfig::default()).unwrap();
        let report = TightnessReport::build(std::slice::from_ref(&conformance), &BTreeMap::new());
        assert_eq!(report.schema, 1);
        assert_eq!(report.scenarios, 1);
        assert_eq!(report.violations, 0);
        assert!(report.max_tightness_milli >= 990);
        assert!(report.adversarial_max_milli >= 990);
        assert!(report.max_tightness_key.starts_with("probe/"));
        assert!(!report.per_frame_milli.is_empty());
        // Round-trips through JSON.
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: TightnessReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.per_frame_milli, report.per_frame_milli);
    }
}
