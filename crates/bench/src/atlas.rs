//! The tightness atlas (E17): percentile-resolved bound tightness over
//! the fuzz corpus at *long* horizons.
//!
//! The conformance harness (E13) answers a boolean question — does any
//! observed response exceed its bound?  The atlas answers the quantitative
//! follow-up: *how far below* the bound does the response-time
//! distribution sit when a scenario runs long enough for every flow to
//! cycle hundreds of times.  For each fuzz scenario it
//!
//! 1. runs the conservative analysis (bounds must exist — unschedulable
//!    draws are recorded and skipped);
//! 2. simulates the dense arrival policy for a horizon many times the
//!    conformance default, so the streaming per-(flow, frame) histograms
//!    of `switch-sim` accumulate thousands of samples;
//! 3. emits, per (flow, GMF frame), the observed P50/P95/P99/max as
//!    integer *permille of the analytical bound* (`1000` = at the bound).
//!
//! Everything in [`AtlasReport`] is deterministic: ratios are integer
//! permille derived from the simulator's integer-nanosecond histogram
//! edges, row order is (scenario, flow, frame), and the analysis thread
//! count must not change a digit (CI diffs `exp_atlas` output across
//! `--threads 1/4`).  Wall-clock and events/sec never enter the report —
//! `exp_atlas` prints those to stderr only.

use gmf_analysis::{analyze, AnalysisConfig};
use gmf_model::Time;
use gmf_par::derive_seed;
use gmf_workloads::fuzz::{valid_scenario, FuzzConfig};
use switch_sim::{QueueShape, SimConfig, Simulator};

use crate::conformance::horizon_for;

/// Fixed seed of every atlas simulation run (the fuzz seed varies per
/// scenario; the simulator seed stays pinned so arrival phasing is part
/// of the atlas identity).
const ATLAS_SIM_SEED: u64 = 0xA71A5;

/// Parameters of one atlas sweep.
#[derive(Debug, Clone)]
pub struct AtlasConfig {
    /// Number of fuzz scenarios to sweep.
    pub scenarios: usize,
    /// Master seed; scenario `i` draws from `derive_seed(seed, i)`.
    pub seed: u64,
    /// The scenario generator.
    pub fuzz: FuzzConfig,
    /// Horizon multiplier over the conformance default ([`horizon_for`],
    /// three cycles of the slowest flow) — the "long" in long horizon.
    pub horizon_factor: u64,
    /// Analysis worker threads (must not change any reported digit).
    pub threads: usize,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            scenarios: 12,
            seed: 1708,
            fuzz: FuzzConfig::default(),
            horizon_factor: 20,
            threads: 1,
        }
    }
}

/// One (scenario, flow, GMF frame) distribution against its bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtlasRow {
    /// Scenario label (`fuzz-<seed>-<shape>`).
    pub scenario: String,
    /// Flow name.
    pub flow: String,
    /// GMF frame index within the flow's cycle.
    pub frame: usize,
    /// Completed packets behind the percentiles.
    pub samples: u64,
    /// Observed P50 as permille of the analytical bound.
    pub p50_permille: u64,
    /// Observed P95 as permille of the bound.
    pub p95_permille: u64,
    /// Observed P99 as permille of the bound.
    pub p99_permille: u64,
    /// Observed maximum as permille of the bound (`> 1000` violates).
    pub max_permille: u64,
}

/// The atlas of one corpus sweep.
#[derive(Debug, Clone, Default)]
pub struct AtlasReport {
    /// Every observed (scenario, flow, frame), in deterministic order.
    pub rows: Vec<AtlasRow>,
    /// Scenarios that produced rows.
    pub scenarios_ok: usize,
    /// `(label, reason)` of scenarios the atlas could not use
    /// (analysis error or unschedulable — expected for a fuzz corpus).
    pub skipped: Vec<(String, String)>,
    /// Rows whose observed *maximum* exceeds the bound.  Must be empty:
    /// a non-empty list is a soundness violation, same as E13.
    pub violations: Vec<AtlasRow>,
    /// Total simulator events across the sweep (deterministic).
    pub events_processed: u64,
    /// Total packets completed across the sweep (deterministic).
    pub packets_completed: u64,
    /// Event-queue shape folded over all runs: max of the maxima, sum of
    /// the totals (deterministic).
    pub queue: QueueShape,
}

impl AtlasReport {
    /// The row with the largest `max_permille` (ties: first in row order).
    pub fn tightest(&self) -> Option<&AtlasRow> {
        self.rows.iter().max_by_key(|r| r.max_permille)
    }

    /// Distribution of a permille column over all rows, as
    /// `(min, median, max)`; `pick` selects the column.
    pub fn spread(&self, pick: impl Fn(&AtlasRow) -> u64) -> Option<(u64, u64, u64)> {
        if self.rows.is_empty() {
            return None;
        }
        let mut values: Vec<u64> = self.rows.iter().map(pick).collect();
        values.sort_unstable();
        Some((
            values[0],
            values[values.len() / 2],
            values[values.len() - 1],
        ))
    }
}

/// A `Time` as integer permille of `bound` (rounded down; saturates the
/// pathological `bound == 0` to `u64::MAX` rather than dividing by zero).
fn permille_of(observed: Time, bound: Time) -> u64 {
    let obs_ns = time_ns(observed);
    let bound_ns = time_ns(bound);
    if bound_ns == 0 {
        return u64::MAX;
    }
    obs_ns.saturating_mul(1000) / bound_ns
}

/// Integer nanoseconds of a non-negative `Time`.
fn time_ns(t: Time) -> u64 {
    let ns = t.as_nanos().round();
    if ns <= 0.0 {
        0
    } else {
        ns as u64
    }
}

/// Sweep the fuzz corpus and build the atlas.
pub fn tightness_atlas(config: &AtlasConfig) -> AtlasReport {
    let analysis = AnalysisConfig::conservative().with_threads(config.threads);
    let mut report = AtlasReport::default();
    for i in 0..config.scenarios {
        let scenario_seed = derive_seed(config.seed, i as u64);
        let (scenario, _) = valid_scenario(scenario_seed, &config.fuzz);
        let label = scenario.label.clone();
        let bounds = match analyze(&scenario.topology, &scenario.flows, &analysis) {
            Ok(bounds) => bounds,
            Err(err) => {
                report.skipped.push((label, err.to_string()));
                continue;
            }
        };
        if !bounds.schedulable {
            report.skipped.push((label, "not schedulable".to_string()));
            continue;
        }

        let horizon = horizon_for(&scenario.flows) * config.horizon_factor;
        let sim_config = SimConfig {
            horizon,
            seed: ATLAS_SIM_SEED,
            ..SimConfig::default()
        };
        let result = Simulator::new(&scenario.topology, &scenario.flows, sim_config)
            .and_then(|sim| sim.run());
        let result = match result {
            Ok(result) => result,
            Err(err) => {
                report.skipped.push((label, err.to_string()));
                continue;
            }
        };

        report.scenarios_ok += 1;
        report.events_processed += result.events_processed;
        report.packets_completed += result.stats.packets_completed;
        report.queue.max_pending = report.queue.max_pending.max(result.queue.max_pending);
        report.queue.max_bucket = report.queue.max_bucket.max(result.queue.max_bucket);
        report.queue.buckets_opened += result.queue.buckets_opened;
        report.queue.pool_reuses += result.queue.pool_reuses;

        for binding in scenario.flows.bindings() {
            let Some(flow_report) = bounds.flow(binding.id) else {
                continue;
            };
            for (frame, frame_report) in flow_report.frames.iter().enumerate() {
                let Some(stats) = result.stats.frame_stats(binding.id, frame) else {
                    continue;
                };
                let bound = frame_report.bound;
                let row = AtlasRow {
                    scenario: label.clone(),
                    flow: binding.flow.name().to_string(),
                    frame,
                    samples: stats.count,
                    // Percentiles always exist here: `frame_stats` only
                    // returns entries with at least one sample.
                    p50_permille: permille_of(stats.p50().unwrap_or(stats.max), bound),
                    p95_permille: permille_of(stats.p95().unwrap_or(stats.max), bound),
                    p99_permille: permille_of(stats.p99().unwrap_or(stats.max), bound),
                    max_permille: permille_of(stats.max, bound),
                };
                if row.max_permille > 1000 {
                    report.violations.push(row.clone());
                }
                report.rows.push(row);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AtlasConfig {
        AtlasConfig {
            scenarios: 2,
            horizon_factor: 2,
            ..AtlasConfig::default()
        }
    }

    #[test]
    fn atlas_is_deterministic_across_thread_counts() {
        let base = tightness_atlas(&small_config());
        let threaded = tightness_atlas(&AtlasConfig {
            threads: 4,
            ..small_config()
        });
        assert_eq!(base.rows, threaded.rows);
        assert_eq!(base.events_processed, threaded.events_processed);
        assert_eq!(base.queue, threaded.queue);
    }

    #[test]
    fn atlas_observes_no_violations_and_real_samples() {
        let report = tightness_atlas(&small_config());
        assert!(
            report.scenarios_ok > 0,
            "corpus produced no usable scenario"
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            assert!(row.samples > 0);
            // Percentiles are ordered and below the (clamped) maximum.
            assert!(row.p50_permille <= row.p95_permille);
            assert!(row.p95_permille <= row.p99_permille);
            assert!(row.p99_permille <= row.max_permille.max(row.p99_permille));
            assert!(row.max_permille <= 1000);
        }
    }

    #[test]
    fn permille_arithmetic() {
        let bound = Time::from_millis(10.0);
        assert_eq!(permille_of(Time::from_millis(10.0), bound), 1000);
        assert_eq!(permille_of(Time::from_millis(5.0), bound), 500);
        assert_eq!(permille_of(Time::ZERO, bound), 0);
        assert_eq!(permille_of(bound, Time::ZERO), u64::MAX);
    }
}
