//! B2 — cost of the three per-resource response-time analyses on the paper
//! scenario (one frame, one resource each).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gmf_analysis::{
    egress_response, first_hop_response, ingress_response, AnalysisConfig, AnalysisContext,
    JitterMap,
};
use gmf_model::FlowId;
use gmf_net::NodeId;
use gmf_workloads::paper_scenario;

fn bench_single_hop(c: &mut Criterion) {
    let (scenario, ids) = paper_scenario();
    let ctx = AnalysisContext::new(&scenario.topology, &scenario.flows).unwrap();
    let jitters = JitterMap::initial(&scenario.flows);
    let config = AnalysisConfig::paper();
    let video = FlowId(ids.video);

    c.bench_function("first_hop_ip_frame", |b| {
        b.iter(|| first_hop_response(&ctx, &jitters, &config, black_box(video), 0).unwrap())
    });
    c.bench_function("switch_ingress_ip_frame", |b| {
        b.iter(|| {
            ingress_response(&ctx, &jitters, &config, black_box(video), 0, NodeId(4)).unwrap()
        })
    });
    c.bench_function("egress_link_ip_frame", |b| {
        b.iter(|| egress_response(&ctx, &jitters, &config, black_box(video), 0, NodeId(4)).unwrap())
    });
}

criterion_group!(benches, bench_single_hop);
criterion_main!(benches);
