//! B4 — event throughput of the discrete-event switch simulator on the
//! paper scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gmf_model::Time;
use gmf_workloads::paper_scenario;
use switch_sim::{SimConfig, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let (scenario, _) = paper_scenario();
    let cfg = SimConfig {
        horizon: Time::from_millis(300.0),
        ..SimConfig::default()
    };
    c.bench_function("simulate_paper_scenario_300ms", |b| {
        b.iter(|| {
            Simulator::new(black_box(&scenario.topology), &scenario.flows, cfg)
                .unwrap()
                .run()
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
