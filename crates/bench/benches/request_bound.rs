//! B1 — cost of evaluating the request-bound functions (CSUM/NSUM/MX/NX)
//! that every fixed-point iteration of the analysis calls in its inner loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gmf_model::{paper_figure3_flow, BitRate, EncapsulationConfig, LinkDemand, Time};

fn bench_request_bound(c: &mut Criterion) {
    let flow = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
    let cfg = EncapsulationConfig::paper();
    let speed = BitRate::from_mbps(10.0);

    c.bench_function("link_demand_build_paper_flow", |b| {
        b.iter(|| LinkDemand::new(black_box(&flow), &cfg, speed))
    });

    let demand = LinkDemand::new(&flow, &cfg, speed);
    c.bench_function("mx_sub_cycle_window", |b| {
        b.iter(|| demand.mx(black_box(Time::from_millis(95.0))))
    });
    c.bench_function("mx_multi_cycle_window", |b| {
        b.iter(|| demand.mx(black_box(Time::from_secs(3.0))))
    });
    c.bench_function("nx_multi_cycle_window", |b| {
        b.iter(|| demand.nx(black_box(Time::from_secs(3.0))))
    });
}

criterion_group!(benches, bench_request_bound);
criterion_main!(benches);
