//! B3 — cost of the full holistic analysis (admission-control latency) on
//! the paper scenario and on larger synthetic flow sets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gmf_analysis::{analyze, AnalysisConfig};
use gmf_workloads::{build_converging_flow_set, paper_scenario, random_flow_collection, SweepConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_holistic(c: &mut Criterion) {
    let config = AnalysisConfig::paper();

    let (scenario, _) = paper_scenario();
    c.bench_function("holistic_paper_scenario", |b| {
        b.iter(|| analyze(black_box(&scenario.topology), &scenario.flows, &config).unwrap())
    });

    let mut group = c.benchmark_group("holistic_synthetic");
    for n_flows in [4usize, 8, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let sweep = SweepConfig::default();
        let flows = random_flow_collection(&mut rng, n_flows, 0.4, &sweep.synthetic);
        let (topology, set, _) = build_converging_flow_set(&mut rng, flows, &sweep);
        group.bench_with_input(BenchmarkId::from_parameter(n_flows), &n_flows, |b, _| {
            b.iter(|| analyze(black_box(&topology), &set, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_holistic);
criterion_main!(benches);
