//! B3 — cost of the full holistic analysis (admission-control latency) on
//! the paper scenario and on larger synthetic flow sets, plus the two
//! fixed-point engine axes: worker-thread count and iteration strategy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gmf_analysis::{analyze, AnalysisConfig, FixedPointStrategy};
use gmf_bench::{
    long_tail_bench_scenario, synthetic_converging_set, HOLISTIC_SYNTHETIC_AXIS,
    HOLISTIC_THREAD_AXIS,
};
use gmf_workloads::paper_scenario;

fn bench_holistic(c: &mut Criterion) {
    let config = AnalysisConfig::paper();

    let (scenario, _) = paper_scenario();
    c.bench_function("holistic_paper_scenario", |b| {
        b.iter(|| analyze(black_box(&scenario.topology), &scenario.flows, &config).unwrap())
    });

    let mut group = c.benchmark_group("holistic_synthetic");
    for n_flows in HOLISTIC_SYNTHETIC_AXIS {
        let (topology, set) = synthetic_converging_set(n_flows);
        group.bench_with_input(BenchmarkId::from_parameter(n_flows), &n_flows, |b, _| {
            b.iter(|| analyze(black_box(&topology), &set, &config).unwrap())
        });
    }
    group.finish();

    // Engine axis 1: worker threads for the Jacobi rounds (16-flow set).
    // The reports are byte-identical at every point; only wall clock moves.
    let (topology, set) = synthetic_converging_set(*HOLISTIC_SYNTHETIC_AXIS.last().unwrap());
    let mut group = c.benchmark_group("holistic_threads");
    for threads in HOLISTIC_THREAD_AXIS {
        let config = AnalysisConfig::paper().with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| analyze(black_box(&topology), &set, &config).unwrap())
        });
    }
    group.finish();

    // Engine axis 2: fixed-point strategy on the long-tail line workload,
    // where Anderson(1) needs measurably fewer outer rounds than Picard.
    let (topology, flows) = long_tail_bench_scenario();
    let mut group = c.benchmark_group("holistic_longtail");
    for (name, strategy) in [
        ("picard", FixedPointStrategy::Picard),
        ("anderson1", FixedPointStrategy::Anderson1),
    ] {
        let config = AnalysisConfig::paper().with_strategy(strategy);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| analyze(black_box(&topology), &flows, &config).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_holistic);
criterion_main!(benches);
