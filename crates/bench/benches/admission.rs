//! B5 — admission-control churn: cold-restart vs incremental warm-started
//! trials on the shared churn script (arrivals and departures on the
//! converging star).
//!
//! Decisions and bounds are byte-identical across the two modes (the churn
//! replay asserts as much in its tests); only the per-decision analysis
//! cost — and therefore the wall clock measured here — moves.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gmf_analysis::{AdmissionMode, AnalysisConfig};
use gmf_bench::{churn_bench_config, CHURN_BENCH_SEED};
use gmf_workloads::run_churn;

fn bench_admission_churn(c: &mut Criterion) {
    let config = churn_bench_config();
    let analysis = AnalysisConfig::paper();
    let mut group = c.benchmark_group("churn_admission");
    for (name, mode) in [("cold", AdmissionMode::Cold), ("warm", AdmissionMode::Warm)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                black_box(run_churn(
                    black_box(CHURN_BENCH_SEED),
                    &config,
                    &analysis,
                    mode,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission_churn);
criterion_main!(benches);
