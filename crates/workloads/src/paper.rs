//! The paper's worked example, packaged as a ready-to-analyse scenario.
//!
//! The scenario combines the Figure 1 network, the Figure 2 route and the
//! Figure 3/4 MPEG flow, plus the kind of background traffic the paper's
//! introduction motivates (Voice-over-IP calls and a video-conference).
//! Every experiment that reproduces a worked number of the paper starts
//! from [`paper_scenario`] or its single-flow variant
//! [`paper_video_only_scenario`].

use gmf_model::{paper_figure3_flow, voip_flow, GmfFlow, Time, VoiceCodec};
use gmf_net::{
    paper_figure1, paper_figure1_with, shortest_path, FlowSet, PaperNetwork, PaperNetworkConfig,
    Priority, Topology,
};
use serde::{Deserialize, Serialize};

/// Identifier constants for the flows of the full paper scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperScenarioFlows {
    /// Index of the MPEG video flow (host 0 → host 3).
    pub video: usize,
    /// Index of the first voice call (host 1 → host 3).
    pub voice_a: usize,
    /// Index of the second voice call (host 2 → host 0).
    pub voice_b: usize,
    /// Index of the conference video flow (host 2 → host 1).
    pub conference: usize,
}

/// A complete scenario: topology, node map and flow set.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network.
    pub topology: Topology,
    /// The node map of the paper network.
    pub network: PaperNetwork,
    /// The offered flows.
    pub flows: FlowSet,
}

/// The single-flow scenario of Figures 2–4: only the MPEG stream from
/// host 0 to host 3, with the given deadline and generalized jitter
/// (the paper's Figure 4 uses 1 ms of jitter).
pub fn paper_video_only_scenario(deadline: Time, jitter: Time) -> Scenario {
    let (topology, network) = paper_figure1();
    let mut flows = FlowSet::new();
    let video = paper_figure3_flow("mpeg-video", deadline, jitter);
    let route = shortest_path(&topology, network.hosts[0], network.hosts[3])
        // tidy-allow: unwrap invariant: the paper network is connected
        .expect("the paper network is connected");
    flows.add(video, route, Priority(5));
    Scenario {
        topology,
        network,
        flows,
    }
}

/// The full paper scenario: the MPEG stream plus interactive traffic.
///
/// * MPEG video, host 0 → host 3, priority 5, 150 ms deadline, 1 ms jitter
///   (the Figure 3/4 flow);
/// * a G.711 voice call, host 1 → host 3, priority 7, 20 ms deadline;
/// * a G.711 voice call, host 2 → host 0, priority 7, 20 ms deadline;
/// * a small conference video, host 2 → host 1, priority 6, 80 ms deadline.
pub fn paper_scenario() -> (Scenario, PaperScenarioFlows) {
    paper_scenario_with(PaperNetworkConfig::default())
}

/// [`paper_scenario`] on a network with explicit link speeds / switch
/// parameters (used by the sensitivity experiments).
pub fn paper_scenario_with(config: PaperNetworkConfig) -> (Scenario, PaperScenarioFlows) {
    let (topology, network) = paper_figure1_with(config);
    let mut flows = FlowSet::new();

    let route = |from: usize, to: usize| {
        shortest_path(&topology, network.hosts[from], network.hosts[to])
            // tidy-allow: unwrap invariant: the paper network is connected
            .expect("the paper network is connected")
    };

    let video = paper_figure3_flow(
        "mpeg-video",
        Time::from_millis(150.0),
        Time::from_millis(1.0),
    );
    let video_id = flows.add(video, route(0, 3), Priority(5)).0;

    let voice_a = voip_flow(
        "voip-1-to-3",
        VoiceCodec::G711,
        Time::from_millis(20.0),
        Time::from_millis(0.5),
    );
    let voice_a_id = flows.add(voice_a, route(1, 3), Priority(7)).0;

    let voice_b = voip_flow(
        "voip-2-to-0",
        VoiceCodec::G711,
        Time::from_millis(20.0),
        Time::from_millis(0.5),
    );
    let voice_b_id = flows.add(voice_b, route(2, 0), Priority(7)).0;

    let conference = conference_video("conf-2-to-1", Time::from_millis(80.0));
    let conference_id = flows.add(conference, route(2, 1), Priority(6)).0;

    (
        Scenario {
            topology,
            network,
            flows,
        },
        PaperScenarioFlows {
            video: video_id,
            voice_a: voice_a_id,
            voice_b: voice_b_id,
            conference: conference_id,
        },
    )
}

/// A small two-frame conference video flow (~1.3 Mbit/s): a 10 kB refresh
/// frame followed by three 4 kB difference frames every 40 ms.
pub fn conference_video(name: &str, deadline: Time) -> GmfFlow {
    use gmf_model::{Bits, FrameSpec};
    GmfFlow::new(
        name,
        vec![
            FrameSpec {
                payload: Bits::from_bytes(10_000),
                min_interarrival: Time::from_millis(40.0),
                deadline,
                jitter: Time::from_millis(1.0),
            },
            FrameSpec {
                payload: Bits::from_bytes(4_000),
                min_interarrival: Time::from_millis(40.0),
                deadline,
                jitter: Time::from_millis(1.0),
            },
            FrameSpec {
                payload: Bits::from_bytes(4_000),
                min_interarrival: Time::from_millis(40.0),
                deadline,
                jitter: Time::from_millis(1.0),
            },
            FrameSpec {
                payload: Bits::from_bytes(4_000),
                min_interarrival: Time::from_millis(40.0),
                deadline,
                jitter: Time::from_millis(1.0),
            },
        ],
    )
    // tidy-allow: unwrap invariant: conference video parameters are valid
    .expect("conference video parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_analysis::{analyze, AnalysisConfig};

    #[test]
    fn video_only_scenario_matches_figure2_route() {
        let s = paper_video_only_scenario(Time::from_millis(100.0), Time::from_millis(1.0));
        assert_eq!(s.flows.len(), 1);
        let binding = &s.flows.bindings()[0];
        assert_eq!(binding.route.source(), s.network.hosts[0]);
        assert_eq!(binding.route.destination(), s.network.hosts[3]);
        assert_eq!(binding.route.n_hops(), 3);
        assert_eq!(binding.flow.n_frames(), 9);
        s.flows.validate_against(&s.topology).unwrap();
    }

    #[test]
    fn full_scenario_has_four_flows_and_is_schedulable() {
        let (s, ids) = paper_scenario();
        assert_eq!(s.flows.len(), 4);
        assert_eq!(ids.video, 0);
        assert_eq!(ids.conference, 3);
        s.flows.validate_against(&s.topology).unwrap();
        let report = analyze(&s.topology, &s.flows, &AnalysisConfig::paper()).unwrap();
        assert!(report.schedulable, "{report}");
    }

    #[test]
    fn scenario_with_faster_network_has_smaller_bounds() {
        let (slow, _) = paper_scenario();
        let fast_cfg = PaperNetworkConfig {
            access: gmf_net::LinkProfile::ethernet_100m(),
            backbone: gmf_net::LinkProfile::ethernet_1g(),
            ..Default::default()
        };
        let (fast, _) = paper_scenario_with(fast_cfg);
        let cfg = AnalysisConfig::paper();
        let slow_report = analyze(&slow.topology, &slow.flows, &cfg).unwrap();
        let fast_report = analyze(&fast.topology, &fast.flows, &cfg).unwrap();
        assert!(fast_report.worst_bound().unwrap() < slow_report.worst_bound().unwrap());
    }

    #[test]
    fn conference_video_structure() {
        let v = conference_video("c", Time::from_millis(80.0));
        assert_eq!(v.n_frames(), 4);
        assert_eq!(v.tsum(), Time::from_millis(160.0));
        assert!(v.mean_payload_rate_bps() > 1.0e6);
    }
}
