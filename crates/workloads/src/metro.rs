//! Metro-scale admission workloads: many independent access cells, one
//! operator, one admission plane.
//!
//! A metropolitan operator network is not one giant coupled system — it is
//! thousands of small access *cells* (a software switch and a handful of
//! hosts each) whose traffic stays local.  The jitter-dependency graph of
//! such a workload partitions into one shard per cell, which is exactly
//! the regime the sharded admission plane is built for: preloading
//! verifies cells concurrently, and admission trials touch one cell's
//! worth of flows no matter how many cells the operator runs.
//!
//! [`metro_scenario`] builds the topology and a pre-admitted flow set
//! (100k+ flows at the default scale); [`metro_candidates`] draws a
//! deterministic stream of admission candidates against it, with a
//! configurable fraction of impossible deadlines so rejection paths are
//! exercised too.  Everything derives from `(seed, config)` via per-cell
//! [`gmf_par::derive_seed`] streams — cells can be regenerated
//! independently and the result never depends on thread counts.

use crate::synthetic::{random_gmf_flow, SyntheticConfig};
use gmf_analysis::AdmissionRequest;
use gmf_model::{GmfFlow, Time};
use gmf_net::{shortest_path, FlowSet, LinkProfile, NodeId, Priority, SwitchConfig, Topology};
use gmf_par::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the metro workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetroConfig {
    /// Number of independent access cells.
    pub n_cells: usize,
    /// Hosts per cell (all attached to the cell's switch).
    pub hosts_per_cell: usize,
    /// Pre-admitted flows per cell.
    pub flows_per_cell: usize,
    /// Speed of every access link.
    pub link: LinkProfile,
    /// Switch CPU parameters of every cell switch.
    pub switch: SwitchConfig,
    /// Flow-structure generator configuration.
    pub synthetic: SyntheticConfig,
    /// Per-flow target utilization of the reference link, drawn uniformly
    /// from this range.  Keep it low: a cell aggregates
    /// `flows_per_cell` × this much demand over `hosts_per_cell` access
    /// links, and the pre-admitted set must verify as schedulable.
    pub flow_utilization: (f64, f64),
    /// Number of 802.1p priority levels assigned (uniformly at random).
    pub priority_levels: u8,
}

impl Default for MetroConfig {
    fn default() -> Self {
        let link = LinkProfile::ethernet_100m();
        MetroConfig {
            n_cells: 5200,
            hosts_per_cell: 8,
            flows_per_cell: 20,
            link,
            switch: SwitchConfig::paper(),
            synthetic: SyntheticConfig {
                reference_speed_bps: link.speed.as_bps(),
                // Lax deadlines: the pre-admitted set must verify, so the
                // generator leaves slack for admission trials to consume.
                deadline_factor: (6.0, 12.0),
                jitter: Time::from_millis(0.2),
                ..SyntheticConfig::default()
            },
            flow_utilization: (0.0005, 0.003),
            priority_levels: 8,
        }
    }
}

impl MetroConfig {
    /// A CI/bench-sized metro: a few dozen cells instead of thousands,
    /// same per-cell shape.
    pub fn small() -> Self {
        MetroConfig {
            n_cells: 24,
            ..MetroConfig::default()
        }
    }

    /// Total pre-admitted flows of the scenario.
    pub fn n_flows(&self) -> usize {
        self.n_cells * self.flows_per_cell
    }

    /// Check the configuration for values the generator cannot honour.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cells == 0 {
            return Err("n_cells must be at least 1".into());
        }
        if self.hosts_per_cell < 2 {
            return Err("hosts_per_cell must be at least 2 (flows need distinct endpoints)".into());
        }
        if self.flows_per_cell == 0 {
            return Err("flows_per_cell must be at least 1".into());
        }
        if self.flow_utilization.0 <= 0.0 || self.flow_utilization.0 > self.flow_utilization.1 {
            return Err("flow_utilization must be a non-empty positive range".into());
        }
        Ok(())
    }
}

/// One access cell: its switch and its hosts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetroCell {
    /// The cell's software switch.
    pub switch: NodeId,
    /// The cell's end hosts, in creation order.
    pub hosts: Vec<NodeId>,
}

/// A generated metro workload: the topology, the pre-admitted flow set
/// (cell by cell, so flow ids are contiguous per cell) and the cell map.
#[derive(Debug, Clone)]
pub struct MetroScenario {
    /// The network: `config.n_cells` disjoint stars.
    pub topology: Topology,
    /// The pre-admitted flows, every route internal to one cell.
    pub flows: FlowSet,
    /// The cells, in creation order.
    pub cells: Vec<MetroCell>,
}

/// Draw one intra-cell flow: random distinct endpoints, random priority.
pub(crate) fn cell_flow<R: Rng>(
    rng: &mut R,
    flow: GmfFlow,
    topology: &Topology,
    cell: &MetroCell,
    priority_levels: u8,
) -> (GmfFlow, gmf_net::Route, Priority) {
    let source = cell.hosts[rng.gen_range(0..cell.hosts.len())];
    let mut sink = cell.hosts[rng.gen_range(0..cell.hosts.len())];
    while sink == source {
        sink = cell.hosts[rng.gen_range(0..cell.hosts.len())];
    }
    // tidy-allow: unwrap invariant: cell hosts share a switch
    let route = shortest_path(topology, source, sink).expect("cell hosts share a switch");
    let priority = Priority(rng.gen_range(0..priority_levels.max(1)));
    (flow, route, priority)
}

/// Build the metro topology and its pre-admitted flow set.
///
/// Cell `c` draws everything from its own ChaCha8 stream seeded with
/// [`derive_seed`]`(seed, c)`, so the scenario depends only on
/// `(seed, config)` and any cell can be regenerated in isolation.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`MetroConfig::validate`]).
pub fn metro_scenario(seed: u64, config: &MetroConfig) -> MetroScenario {
    // tidy-allow: unwrap invariant: invalid metro configuration
    config.validate().expect("invalid metro configuration");
    let mut topology = Topology::new();
    let mut cells = Vec::with_capacity(config.n_cells);
    for c in 0..config.n_cells {
        let switch = topology.add_switch(config.switch, format!("sw{c}"));
        let hosts: Vec<NodeId> = (0..config.hosts_per_cell)
            .map(|h| {
                let host = topology.add_end_host(format!("c{c}h{h}"));
                topology
                    .add_duplex_link(host, switch, config.link)
                    // tidy-allow: unwrap invariant: freshly created nodes are linkable
                    .expect("freshly created nodes are linkable");
                host
            })
            .collect();
        cells.push(MetroCell { switch, hosts });
    }

    let mut flows = FlowSet::new();
    for (c, cell) in cells.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, c as u64));
        for f in 0..config.flows_per_cell {
            let utilization = rng.gen_range(config.flow_utilization.0..=config.flow_utilization.1);
            let flow = random_gmf_flow(
                &mut rng,
                &format!("m{c}-{f}"),
                utilization,
                &config.synthetic,
            );
            let (flow, route, priority) =
                cell_flow(&mut rng, flow, &topology, cell, config.priority_levels);
            flows.add(flow, route, priority);
        }
    }
    MetroScenario {
        topology,
        flows,
        cells,
    }
}

/// Draw `n` admission candidates against a metro scenario: each picks a
/// pseudo-random cell and an intra-cell route.  A `tight_fraction` of them
/// carry an impossible (sub-transmission-time) deadline so the stream
/// exercises rejections and victim attribution, not just acceptances.
///
/// Candidate `i` draws from stream [`derive_seed`]`(seed, i)`; the stream
/// is independent of [`metro_scenario`]'s cell streams, so candidates and
/// scenario can be scaled separately.
pub fn metro_candidates(
    seed: u64,
    scenario: &MetroScenario,
    config: &MetroConfig,
    n: usize,
    tight_fraction: f64,
) -> Vec<AdmissionRequest> {
    assert!(
        (0.0..=1.0).contains(&tight_fraction),
        "tight_fraction must be within [0, 1]"
    );
    (0..n)
        .map(|i| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, i as u64));
            let cell = &scenario.cells[rng.gen_range(0..scenario.cells.len())];
            let utilization = rng.gen_range(config.flow_utilization.0..=config.flow_utilization.1);
            let mut flow = random_gmf_flow(
                &mut rng,
                &format!("cand{i}"),
                utilization,
                &config.synthetic,
            );
            if rng.gen_range(0.0..1.0) < tight_fraction {
                // An impossible ask: tighter than one frame's transmission
                // time on the access link.  Rejected with the candidate as
                // the victim, deterministically.
                let frames = flow
                    .frames()
                    .iter()
                    .map(|frame| frame.with_deadline(Time::from_micros(1.0)))
                    .collect();
                flow = GmfFlow::new(flow.name(), frames)
                    // tidy-allow: unwrap invariant: only the deadline changed
                    .expect("only the deadline changed");
            }
            let (flow, route, priority) = cell_flow(
                &mut rng,
                flow,
                &scenario.topology,
                cell,
                config.priority_levels,
            );
            AdmissionRequest::new(flow, route, priority)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_analysis::{AdmissionController, AnalysisConfig, DependencyGraph};

    fn tiny() -> MetroConfig {
        MetroConfig {
            n_cells: 4,
            hosts_per_cell: 4,
            flows_per_cell: 6,
            ..MetroConfig::default()
        }
    }

    #[test]
    fn scenario_is_reproducible_and_cell_local() {
        let config = tiny();
        let a = metro_scenario(11, &config);
        let b = metro_scenario(11, &config);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.flows.len(), config.n_flows());
        a.flows.validate_against(&a.topology).unwrap();
        // Every route stays inside one cell.
        for binding in a.flows.bindings() {
            let cell = a
                .cells
                .iter()
                .find(|cell| cell.hosts.contains(&binding.route.source()))
                .unwrap();
            assert!(cell.hosts.contains(&binding.route.destination()));
            assert_eq!(binding.route.nodes().len(), 3);
            assert_eq!(binding.route.nodes()[1], cell.switch);
        }
        // Cells never couple: at most one shard per cell.
        let graph = DependencyGraph::new(&a.flows);
        assert!(graph.n_shards() >= config.n_cells);
        let largest = graph
            .shards()
            .into_iter()
            .map(|s| graph.shard_flows(s).unwrap().len())
            .max()
            .unwrap();
        assert!(largest <= config.flows_per_cell);
    }

    #[test]
    fn preadmitted_metro_verifies_and_admits_candidates() {
        let config = tiny();
        let scenario = metro_scenario(7, &config);
        let (mut ctl, stats) = AdmissionController::with_accepted(
            scenario.topology.clone(),
            scenario.flows.clone(),
            AnalysisConfig::paper(),
        )
        .unwrap();
        assert_eq!(
            stats.shards,
            DependencyGraph::new(&scenario.flows).n_shards()
        );
        assert!(stats.largest_shard <= config.flows_per_cell);

        let candidates = metro_candidates(13, &scenario, &config, 12, 0.25);
        assert_eq!(candidates.len(), 12);
        let decisions = ctl.request_batch(candidates.clone()).unwrap();
        let accepted = decisions.iter().filter(|d| d.is_accepted()).count();
        let rejected = decisions.len() - accepted;
        assert!(accepted > 0, "no candidate admitted");
        assert!(rejected > 0, "no candidate rejected (tight_fraction draw)");
        // Every trial stayed within one cell's worth of flows.
        for d in &decisions {
            assert!(d.cost().shard_flows <= config.flows_per_cell + candidates.len());
        }

        // The candidate stream is deterministic.
        assert_eq!(
            candidates,
            metro_candidates(13, &scenario, &config, 12, 0.25)
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(MetroConfig {
            n_cells: 0,
            ..tiny()
        }
        .validate()
        .is_err());
        assert!(MetroConfig {
            hosts_per_cell: 1,
            ..tiny()
        }
        .validate()
        .is_err());
        assert!(MetroConfig {
            flows_per_cell: 0,
            ..tiny()
        }
        .validate()
        .is_err());
        assert!(MetroConfig {
            flow_utilization: (0.2, 0.1),
            ..tiny()
        }
        .validate()
        .is_err());
        assert!(MetroConfig::default().validate().is_ok());
        assert_eq!(MetroConfig::default().n_flows(), 104_000);
        assert_eq!(MetroConfig::small().n_cells, 24);
    }
}
