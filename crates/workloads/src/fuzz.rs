//! Randomized *valid* scenario generation for the conformance harness.
//!
//! The analysis-vs-simulation validation (E7/E13) needs many random
//! scenarios that are (a) structurally legal, (b) schedulable under the
//! conservative analysis and (c) inside the regime the published per-frame
//! equations are sound for — every frame's transmission (plus its
//! generalized-jitter window) must fit inside its minimum inter-arrival
//! time on every traversed link, because the equations never charge a
//! flow's *own* preceding frames (see DESIGN.md §4 and §5, and the known
//! counterexample in `exp_analysis_vs_sim`).
//!
//! [`draw_scenario`] makes one deterministic draw from a seed — a random
//! tree / star / line topology with mixed link profiles, a random
//! VoIP / MPEG / synthetic-GMF flow mix with utilization-targeted demand
//! scaling — and either returns the scenario or rejects it with a
//! machine-readable [`ScenarioRejection`] naming the violated invariant.
//! [`valid_scenario`] retries derived sub-seeds until a draw is accepted,
//! returning the rejection trail alongside, so a fuzz campaign is a pure
//! function of its master seed.

use crate::synthetic::{random_gmf_flow, uunifast, SyntheticConfig};
use gmf_analysis::{analyze, AnalysisConfig};
use gmf_model::{paper_figure3_flow, voip_flow, GmfFlow, LinkDemand, Time, VoiceCodec};
use gmf_net::{
    line, random_tree, shortest_path, star, FlowSet, LinkProfile, NodeId, Priority, PriorityPolicy,
    SwitchConfig, Topology,
};
use gmf_par::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The topology family a scenario was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyShape {
    /// One switch, `hosts` end hosts.
    Star {
        /// Number of end hosts on the switch.
        hosts: usize,
    },
    /// A chain of `switches` switches with one host at each end.
    Line {
        /// Number of switches in the chain.
        switches: usize,
    },
    /// A random spanning tree of `switches` switches with `hosts` end
    /// hosts spread over them.
    Tree {
        /// Number of switches in the tree.
        switches: usize,
        /// Total number of end hosts.
        hosts: usize,
    },
}

impl fmt::Display for TopologyShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyShape::Star { hosts } => write!(f, "star{hosts}"),
            TopologyShape::Line { switches } => write!(f, "line{switches}"),
            TopologyShape::Tree { switches, hosts } => write!(f, "tree{switches}x{hosts}"),
        }
    }
}

/// Why a random draw was rejected (the draw is discarded, the reason is
/// recorded — a fuzz campaign's rejection trail documents the boundary of
/// the valid-scenario space).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioRejection {
    /// The conservative analysis rejects the set (overload, a missed
    /// deadline, or an analysis-level error).
    Unschedulable {
        /// The analysis failure string or the missed flows.
        reason: String,
    },
    /// The holistic jitter iteration did not reach a fixed point within
    /// its budget.
    NotConverged,
    /// A frame's transmission time plus its generalized-jitter window
    /// exceeds the soundness margin of its minimum inter-arrival time on
    /// a traversed link — the regime in which the published equations do
    /// not charge the flow's own backlog and can be beaten by the
    /// simulator (the E7 counterexample).  Such draws are *excluded*, not
    /// failed: a violation here is a known model limitation, not a bug.
    SelfBacklog {
        /// Name of the offending flow.
        flow: String,
        /// Transmitting end of the offending link.
        from: NodeId,
        /// Receiving end of the offending link.
        to: NodeId,
        /// Frame index within the flow's GMF cycle.
        frame: usize,
        /// Transmission time plus jitter window on that link.
        demand: Time,
        /// The budget it exceeded (`margin × min_interarrival`).
        budget: Time,
    },
    /// A frame's *end-to-end bound* exceeds its minimum inter-arrival
    /// time: successive packets of the flow would coexist in the network
    /// and queue behind each other — own-flow backlog the published
    /// per-frame equations never charge, at any hop.  The per-link
    /// [`ScenarioRejection::SelfBacklog`] gate catches the single-link
    /// case cheaply; this post-analysis gate closes the multi-hop one
    /// (found by the fuzz campaign itself: a scaled MPEG GOP whose 35 ms
    /// bound crossed its 30 ms slot on a two-switch tree).
    PipelinedFrames {
        /// Name of the offending flow.
        flow: String,
        /// Frame index within the flow's GMF cycle.
        frame: usize,
        /// The frame's end-to-end response-time bound.
        bound: Time,
        /// The minimum inter-arrival time it exceeds.
        interarrival: Time,
    },
    /// The draw was structurally unusable (e.g. not enough distinct
    /// hosts for a route).
    Degenerate {
        /// What made the draw unusable.
        reason: String,
    },
}

impl ScenarioRejection {
    /// Coarse stable tag of the rejection (for tallies in campaign
    /// reports): `unschedulable`, `not-converged`, `self-backlog`,
    /// `pipelined-frames` or `degenerate`.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioRejection::Unschedulable { .. } => "unschedulable",
            ScenarioRejection::NotConverged => "not-converged",
            ScenarioRejection::SelfBacklog { .. } => "self-backlog",
            ScenarioRejection::PipelinedFrames { .. } => "pipelined-frames",
            ScenarioRejection::Degenerate { .. } => "degenerate",
        }
    }
}

impl fmt::Display for ScenarioRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioRejection::Unschedulable { reason } => {
                write!(f, "unschedulable: {reason}")
            }
            ScenarioRejection::NotConverged => {
                write!(f, "holistic iteration did not converge")
            }
            ScenarioRejection::SelfBacklog {
                flow,
                from,
                to,
                frame,
                demand,
                budget,
            } => write!(
                f,
                "self-backlog regime: flow {flow} frame {frame} needs {demand} on \
                 link({},{}) but the sound budget is {budget}",
                from.0, to.0
            ),
            ScenarioRejection::PipelinedFrames {
                flow,
                frame,
                bound,
                interarrival,
            } => write!(
                f,
                "pipelined-frames regime: flow {flow} frame {frame} is bounded by {bound}, \
                 past its {interarrival} inter-arrival — successive packets would coexist"
            ),
            ScenarioRejection::Degenerate { reason } => write!(f, "degenerate draw: {reason}"),
        }
    }
}

/// One accepted random scenario.
#[derive(Debug, Clone)]
pub struct FuzzScenario {
    /// The seed this exact draw came from (replaying it with the same
    /// [`FuzzConfig`] reproduces the scenario bit for bit).
    pub seed: u64,
    /// Stable human-readable label (`fuzz-<seed in hex>-<shape>`).
    pub label: String,
    /// The topology family drawn.
    pub shape: TopologyShape,
    /// The network.
    pub topology: Topology,
    /// The offered flows.
    pub flows: FlowSet,
}

/// Parameters of the scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzConfig {
    /// Flows per scenario (inclusive range).
    pub n_flows: (usize, usize),
    /// Offered utilization of the 100 Mbit/s reference link, drawn
    /// uniformly from this range and split over the flows with UUniFast.
    pub utilization: (f64, f64),
    /// Largest random tree (switch count; trees draw `2..=max_switches`).
    pub max_switches: usize,
    /// Structure of the synthetic GMF flows in the mix.
    pub synthetic: SyntheticConfig,
    /// Relative weights of the flow kinds in the mix
    /// (VoIP, scaled MPEG GOP, synthetic GMF).
    pub mix_weights: (f64, f64, f64),
    /// 802.1p priority levels for the deadline-monotonic assignment.
    pub priority_levels: u8,
    /// The analysis a scenario must be schedulable under (the conformance
    /// harness validates bounds from this same configuration).
    pub analysis: AnalysisConfig,
    /// Soundness margin of the self-backlog gate: accept only
    /// `c(k) + GJ(k) ≤ margin × t(k)` on every traversed link.
    pub soundness_margin: f64,
    /// Retry budget of [`valid_scenario`].
    pub max_attempts: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            n_flows: (3, 9),
            utilization: (0.1, 0.7),
            max_switches: 5,
            synthetic: SyntheticConfig {
                min_frames: 1,
                max_frames: 5,
                min_interarrival: Time::from_millis(10.0),
                max_interarrival: Time::from_millis(40.0),
                burstiness: 4.0,
                deadline_factor: (4.0, 12.0),
                jitter: Time::from_millis(0.5),
                reference_speed_bps: 100.0e6,
            },
            mix_weights: (0.3, 0.2, 0.5),
            priority_levels: 8,
            analysis: AnalysisConfig::conservative(),
            soundness_margin: 0.9,
            max_attempts: 64,
        }
    }
}

/// The link-profile pool of one draw: mostly fast Ethernet, occasionally
/// gigabit, metro (long propagation) or the paper's slow 10 Mbit/s access
/// (which the self-backlog gate prunes when the flow mix is too heavy
/// for it).
fn draw_link_profile<R: Rng>(rng: &mut R) -> LinkProfile {
    match rng.gen_range(0u8..6) {
        0 => LinkProfile::ethernet_1g(),
        1 => LinkProfile::metro_100m(),
        2 => LinkProfile::ethernet_10m(),
        _ => LinkProfile::ethernet_100m(),
    }
}

/// Draw the switch CPU profile: the paper's measured constants, scaled by
/// a modest random factor so the routing task is sometimes the bottleneck.
fn draw_switch_config<R: Rng>(rng: &mut R) -> SwitchConfig {
    let paper = SwitchConfig::paper();
    let factor = rng.gen_range(1.0f64..=3.0);
    SwitchConfig {
        croute: paper.croute * factor,
        csend: paper.csend * factor,
        processors: 1,
    }
}

/// Draw the topology of one scenario.
fn draw_topology<R: Rng>(
    rng: &mut R,
    config: &FuzzConfig,
) -> (Topology, Vec<NodeId>, TopologyShape) {
    let access = draw_link_profile(rng);
    let backbone = draw_link_profile(rng);
    let switch = draw_switch_config(rng);
    match rng.gen_range(0u8..3) {
        0 => {
            let n_hosts = rng.gen_range(3usize..=6);
            let (topology, _switch, hosts) = star(n_hosts, access, switch);
            (topology, hosts, TopologyShape::Star { hosts: n_hosts })
        }
        1 => {
            let n_switches = rng.gen_range(1usize..=config.max_switches.max(1));
            let (topology, a, b, _) = line(n_switches, access, backbone, switch);
            (
                topology,
                vec![a, b],
                TopologyShape::Line {
                    switches: n_switches,
                },
            )
        }
        _ => {
            let n_switches = rng.gen_range(2usize..=config.max_switches.max(2));
            let hosts_per_switch = rng.gen_range(1usize..=2);
            let (topology, _switches, hosts) =
                random_tree(rng, n_switches, hosts_per_switch, access, backbone, switch);
            let n_hosts = hosts.len();
            (
                topology,
                hosts,
                TopologyShape::Tree {
                    switches: n_switches,
                    hosts: n_hosts,
                },
            )
        }
    }
}

/// Draw one flow of the mix and scale its demand toward `share` of the
/// reference link (VoIP codecs are fixed-rate and keep their nominal
/// demand; MPEG GOPs and synthetic GMF flows are payload-scaled).
fn draw_flow<R: Rng>(rng: &mut R, index: usize, share: f64, config: &FuzzConfig) -> GmfFlow {
    let (w_voip, w_mpeg, w_gmf) = config.mix_weights;
    let total = (w_voip + w_mpeg + w_gmf).max(f64::MIN_POSITIVE);
    let pick = rng.gen_range(0.0..total);
    if pick < w_voip {
        let codec = match rng.gen_range(0u8..4) {
            0 => VoiceCodec::G711,
            1 => VoiceCodec::G726,
            2 => VoiceCodec::G729,
            _ => VoiceCodec::G7231,
        };
        let deadline = codec.packet_interval() * rng.gen_range(2.0f64..=8.0);
        let jitter = Time::from_millis(rng.gen_range(0.0f64..=1.0));
        voip_flow(&format!("voip{index}"), codec, deadline, jitter)
    } else if pick < w_voip + w_mpeg {
        let deadline = Time::from_millis(rng.gen_range(60.0f64..=200.0));
        let jitter = Time::from_millis(rng.gen_range(0.5f64..=2.0));
        let base = paper_figure3_flow(&format!("mpeg{index}"), deadline, jitter);
        let reference = gmf_model::BitRate::from_bps(config.synthetic.reference_speed_bps);
        let utilization =
            LinkDemand::new(&base, &gmf_model::EncapsulationConfig::paper(), reference)
                .utilization();
        let factor = (share / utilization.max(f64::MIN_POSITIVE)).clamp(0.02, 4.0);
        base.with_scaled_payloads(factor)
    } else {
        random_gmf_flow(
            rng,
            &format!("gmf{index}"),
            share.max(1e-3),
            &config.synthetic,
        )
    }
}

/// The self-backlog soundness gate (see [`ScenarioRejection::SelfBacklog`]).
fn check_sound_regime(
    topology: &Topology,
    flows: &FlowSet,
    margin: f64,
) -> Result<(), ScenarioRejection> {
    for binding in flows.bindings() {
        for hop in binding.route.hops() {
            let link = topology
                .link_between(hop.from, hop.to)
                // tidy-allow: unwrap invariant: routes are validated against the topology
                .expect("routes are validated against the topology");
            let demand = LinkDemand::new(&binding.flow, &binding.encapsulation, link.speed);
            for (k, spec) in binding.flow.frames().iter().enumerate() {
                let needed = demand.c(k) + spec.jitter;
                let budget = spec.min_interarrival * margin;
                if needed > budget {
                    return Err(ScenarioRejection::SelfBacklog {
                        flow: binding.flow.name().to_string(),
                        from: hop.from,
                        to: hop.to,
                        frame: k,
                        demand: needed,
                        budget,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Make one deterministic draw from `seed`: either a valid scenario or
/// the reason the draw was rejected.
pub fn draw_scenario(seed: u64, config: &FuzzConfig) -> Result<FuzzScenario, ScenarioRejection> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (topology, hosts, shape) = draw_topology(&mut rng, config);
    if hosts.len() < 2 {
        return Err(ScenarioRejection::Degenerate {
            reason: format!("{shape} has fewer than two hosts"),
        });
    }

    let (lo, hi) = config.n_flows;
    let n_flows = rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
    let utilization = rng.gen_range(config.utilization.0..=config.utilization.1);
    let shares = uunifast(&mut rng, n_flows, utilization);

    let mut flows = FlowSet::new();
    for (index, &share) in shares.iter().enumerate() {
        let flow = draw_flow(&mut rng, index, share, config);
        let source = hosts[rng.gen_range(0..hosts.len())];
        let destination = loop {
            let candidate = hosts[rng.gen_range(0..hosts.len())];
            if candidate != source {
                break candidate;
            }
        };
        let route = shortest_path(&topology, source, destination)
            // tidy-allow: unwrap invariant: generated topologies are connected
            .expect("generated topologies are connected");
        flows.add(flow, route, Priority(0));
    }
    flows.assign_priorities(PriorityPolicy::DeadlineMonotonic {
        levels: config.priority_levels,
    });

    // Gate 1 (cheap): the sound-analysis regime.
    check_sound_regime(&topology, &flows, config.soundness_margin)?;

    // Gate 2: the conservative analysis must accept the set.
    let report = match analyze(&topology, &flows, &config.analysis) {
        Ok(report) => report,
        Err(e) => {
            return Err(ScenarioRejection::Unschedulable {
                reason: e.to_string(),
            })
        }
    };
    if !report.converged {
        return Err(ScenarioRejection::NotConverged);
    }
    if !report.schedulable {
        let reason = report
            .failure
            .clone()
            .unwrap_or_else(|| format!("missed deadlines: {:?}", report.missed_flows()));
        return Err(ScenarioRejection::Unschedulable { reason });
    }

    // Gate 3: no pipelined frames.  Every frame must be fully delivered
    // (per its own bound) before its successor arrives, or two packets of
    // the same flow coexist in the network and the uncharged own-backlog
    // regime begins.
    for binding in flows.bindings() {
        let flow_report = report
            .flow(binding.id)
            // tidy-allow: unwrap invariant: schedulable reports are complete
            .expect("schedulable reports are complete");
        for (k, frame) in flow_report.frames.iter().enumerate() {
            let interarrival = binding.flow.frames()[k].min_interarrival;
            if frame.bound > interarrival {
                return Err(ScenarioRejection::PipelinedFrames {
                    flow: binding.flow.name().to_string(),
                    frame: k,
                    bound: frame.bound,
                    interarrival,
                });
            }
        }
    }

    Ok(FuzzScenario {
        seed,
        label: format!("fuzz-{seed:016x}-{shape}"),
        shape,
        topology,
        flows,
    })
}

/// Derive sub-seeds from `seed` and redraw until a scenario is accepted;
/// returns it together with the rejection trail (sub-seed, reason).
///
/// # Panics
///
/// Panics when `config.max_attempts` consecutive draws are rejected —
/// with the default configuration the acceptance rate is far higher than
/// `1 / max_attempts`, so hitting the budget indicates a misconfigured
/// generator rather than bad luck.
pub fn valid_scenario(
    seed: u64,
    config: &FuzzConfig,
) -> (FuzzScenario, Vec<(u64, ScenarioRejection)>) {
    let mut rejections = Vec::new();
    for attempt in 0..config.max_attempts.max(1) as u64 {
        let sub_seed = derive_seed(seed, attempt);
        match draw_scenario(sub_seed, config) {
            Ok(scenario) => return (scenario, rejections),
            Err(reason) => rejections.push((sub_seed, reason)),
        }
    }
    panic!(
        "no valid scenario within {} attempts of seed {seed:#x}; rejections: {}",
        config.max_attempts,
        rejections
            .iter()
            .map(|(s, r)| format!("[{s:#x}: {r}]"))
            .collect::<Vec<_>>()
            .join(" ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        let config = FuzzConfig::default();
        for seed in [1u64, 42, 0xDEAD] {
            let a = draw_scenario(seed, &config);
            let b = draw_scenario(seed, &config);
            match (a, b) {
                (Ok(sa), Ok(sb)) => {
                    assert_eq!(sa.topology, sb.topology);
                    assert_eq!(sa.flows, sb.flows);
                    assert_eq!(sa.label, sb.label);
                }
                (Err(ra), Err(rb)) => assert_eq!(ra, rb),
                (a, b) => panic!("verdicts differ: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn valid_scenarios_are_schedulable_and_sound() {
        let config = FuzzConfig::default();
        let mut shapes = std::collections::BTreeSet::new();
        for seed in 0u64..8 {
            let (scenario, rejections) = valid_scenario(seed, &config);
            scenario.flows.validate_against(&scenario.topology).unwrap();
            assert!(!scenario.flows.is_empty());
            check_sound_regime(&scenario.topology, &scenario.flows, config.soundness_margin)
                .unwrap();
            let report = analyze(&scenario.topology, &scenario.flows, &config.analysis).unwrap();
            assert!(report.schedulable, "{}", scenario.label);
            // The pipelined-frames gate held: every frame clears before
            // its successor arrives.
            for binding in scenario.flows.bindings() {
                let flow_report = report.flow(binding.id).unwrap();
                for (k, frame) in flow_report.frames.iter().enumerate() {
                    assert!(
                        frame.bound <= binding.flow.frames()[k].min_interarrival,
                        "{}: {} frame {k} is pipelined",
                        scenario.label,
                        binding.flow.name()
                    );
                }
            }
            shapes.insert(format!("{}", scenario.shape));
            // The rejection trail is part of the deterministic output.
            let (again, rejections_again) = valid_scenario(seed, &config);
            assert_eq!(scenario.flows, again.flows);
            assert_eq!(rejections, rejections_again);
        }
        // Eight seeds should exercise more than one topology family.
        assert!(shapes.len() >= 2, "shapes drawn: {shapes:?}");
    }

    #[test]
    fn overloaded_draws_are_rejected_with_a_reason() {
        // Forcing the offered utilization far above 1 must reject every
        // draw (unschedulable or self-backlog, depending on the mix).
        let config = FuzzConfig {
            utilization: (3.0, 3.5),
            max_attempts: 6,
            ..FuzzConfig::default()
        };
        let mut rejected = 0;
        for seed in 0u64..6 {
            if let Err(reason) = draw_scenario(seed, &config) {
                rejected += 1;
                assert!(!reason.to_string().is_empty());
            }
        }
        assert!(rejected >= 5, "only {rejected}/6 overloaded draws rejected");
    }

    #[test]
    fn self_backlog_gate_names_the_offending_link() {
        // An MPEG GOP on a 10 Mbit/s line is the paper's own
        // counterexample regime: the I+P frame needs ~35.8 ms against a
        // 30 ms inter-arrival, so the gate must fire.
        let (topology, a, b, _) = line(
            1,
            LinkProfile::ethernet_10m(),
            LinkProfile::ethernet_10m(),
            SwitchConfig::paper(),
        );
        let mut flows = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        flows.add(video, shortest_path(&topology, a, b).unwrap(), Priority(6));
        let rejection = check_sound_regime(&topology, &flows, 0.9).unwrap_err();
        match &rejection {
            ScenarioRejection::SelfBacklog {
                flow,
                frame,
                demand,
                budget,
                ..
            } => {
                assert_eq!(flow, "video");
                assert_eq!(*frame, 0, "the I+P frame is the oversized one");
                assert!(demand > budget);
            }
            other => panic!("expected SelfBacklog, got {other}"),
        }
        assert!(rejection.to_string().contains("self-backlog"));
    }

    #[test]
    fn rejection_display_is_informative() {
        let r = ScenarioRejection::Unschedulable {
            reason: "link(0,1) overloaded".into(),
        };
        assert!(r.to_string().contains("overloaded"));
        assert!(ScenarioRejection::NotConverged
            .to_string()
            .contains("converge"));
        let p = ScenarioRejection::PipelinedFrames {
            flow: "mpeg".into(),
            frame: 0,
            bound: Time::from_millis(35.6),
            interarrival: Time::from_millis(30.0),
        };
        assert!(p.to_string().contains("coexist"));
        assert_eq!(p.kind(), "pipelined-frames");
        let d = ScenarioRejection::Degenerate {
            reason: "one host".into(),
        };
        assert!(d.to_string().contains("degenerate"));
    }
}
