//! Parameter sweeps: the machinery behind the acceptance-ratio and
//! sensitivity experiments.
//!
//! [`acceptance_sweep`] regenerates the classic "acceptance ratio vs
//! offered utilization" curve (experiment E8): at each utilization level it
//! draws many random flow sets, routes them across a bottleneck link of a
//! star network, and records which admission tests accept them —
//!
//! * the GMF holistic response-time analysis (the paper's contribution),
//! * the same analysis on the sporadic collapse of every flow (the
//!   pre-existing state of the art), and
//! * the utilization-only necessary condition (an upper bound on what any
//!   analysis could accept).

use crate::synthetic::{random_flow_collection, SyntheticConfig};
use gmf_analysis::{analyze, analyze_sporadic_baseline, utilization_check, AnalysisConfig};
use gmf_net::{
    shortest_path, star, FlowSet, LinkProfile, NodeId, Priority, PriorityPolicy, SwitchConfig,
    Topology,
};
use gmf_par::{par_map, Threads};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One point of the acceptance-ratio curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// Offered utilization of the bottleneck link.
    pub utilization: f64,
    /// Number of random flow sets evaluated.
    pub trials: usize,
    /// Fraction accepted by the GMF holistic analysis.
    pub gmf_accepted: f64,
    /// Fraction accepted by the sporadic-collapse baseline.
    pub sporadic_accepted: f64,
    /// Fraction passing the utilization-only necessary test.
    pub utilization_feasible: f64,
}

/// Configuration of the acceptance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of flows per random set.
    pub flows_per_set: usize,
    /// Number of random sets per utilization point.
    pub sets_per_point: usize,
    /// Number of source hosts on the star (all flows converge on one sink).
    pub n_sources: usize,
    /// Speed of every link of the star.
    pub link: LinkProfile,
    /// Switch CPU parameters.
    pub switch: SwitchConfig,
    /// Flow-structure generator configuration.
    pub synthetic: SyntheticConfig,
    /// Number of 802.1p priority levels available.
    pub priority_levels: u8,
}

impl Default for SweepConfig {
    fn default() -> Self {
        let link = LinkProfile::ethernet_100m();
        SweepConfig {
            flows_per_set: 8,
            sets_per_point: 20,
            n_sources: 4,
            link,
            switch: SwitchConfig::paper(),
            synthetic: SyntheticConfig {
                reference_speed_bps: link.speed.as_bps(),
                ..SyntheticConfig::default()
            },
            priority_levels: 8,
        }
    }
}

impl SweepConfig {
    /// Check the configuration for values that would silently corrupt a
    /// sweep rather than fail it loudly: `sets_per_point == 0` makes every
    /// acceptance ratio `0/0 = NaN`, `flows_per_set == 0` makes every set
    /// vacuously schedulable, and `n_sources == 0` leaves the star with no
    /// hosts to route from.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets_per_point == 0 {
            return Err(
                "sets_per_point must be at least 1 (0 yields NaN acceptance ratios)".into(),
            );
        }
        if self.flows_per_set == 0 {
            return Err("flows_per_set must be at least 1".into());
        }
        if self.n_sources == 0 {
            return Err("n_sources must be at least 1".into());
        }
        Ok(())
    }
}

/// Build the star topology and route a collection of flows from random
/// source hosts to the common sink (host 0), assigning deadline-monotonic
/// priorities.  Returns `(topology, flow set, sink)`.
pub fn build_converging_flow_set<R: Rng>(
    rng: &mut R,
    flows: Vec<gmf_model::GmfFlow>,
    config: &SweepConfig,
) -> (Topology, FlowSet, NodeId) {
    let (topology, _switch, hosts) = star(config.n_sources + 1, config.link, config.switch);
    let sink = hosts[0];
    let sources = &hosts[1..];
    let mut set = FlowSet::new();
    for flow in flows {
        let source = sources[rng.gen_range(0..sources.len())];
        // tidy-allow: unwrap invariant: star is connected
        let route = shortest_path(&topology, source, sink).expect("star is connected");
        set.add(flow, route, Priority(0));
    }
    set.assign_priorities(PriorityPolicy::DeadlineMonotonic {
        levels: config.priority_levels,
    });
    (topology, set, sink)
}

/// Build a seeded random converging flow set — the sweep generator's star
/// with `n_flows` random flows at the given offered utilization.
///
/// One call, one deterministic workload: the property-test suites, the
/// benches and the experiments all draw their "random sweep set" from this
/// helper so they exercise exactly the same distribution.
pub fn random_sweep_set(
    seed: u64,
    n_flows: usize,
    utilization: f64,
    config: &SweepConfig,
) -> (Topology, FlowSet) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let flows = random_flow_collection(&mut rng, n_flows, utilization, &config.synthetic);
    let (topology, set, _) = build_converging_flow_set(&mut rng, flows, config);
    (topology, set)
}

/// Run the acceptance sweep over the given utilization levels.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`SweepConfig::validate`]) — most
/// importantly `sets_per_point == 0`, which would silently turn every
/// acceptance ratio into `NaN`.
pub fn acceptance_sweep<R: Rng>(
    rng: &mut R,
    utilizations: &[f64],
    config: &SweepConfig,
    analysis: &AnalysisConfig,
) -> Vec<AcceptancePoint> {
    // tidy-allow: unwrap invariant: invalid sweep configuration
    config.validate().expect("invalid sweep configuration");
    utilizations
        .iter()
        .map(|&utilization| acceptance_point(rng, utilization, config, analysis))
        .collect()
}

/// Evaluate one utilization point of the acceptance sweep.  Both the
/// sequential and the parallel sweep call this — the sequential one with
/// its single caller-provided stream, the parallel one with a per-point
/// seeded stream.
fn acceptance_point<R: Rng>(
    rng: &mut R,
    utilization: f64,
    config: &SweepConfig,
    analysis: &AnalysisConfig,
) -> AcceptancePoint {
    let mut gmf = 0usize;
    let mut sporadic = 0usize;
    let mut feasible = 0usize;
    for _ in 0..config.sets_per_point {
        let flows =
            random_flow_collection(rng, config.flows_per_set, utilization, &config.synthetic);
        let (topology, set, _) = build_converging_flow_set(rng, flows, config);

        if analyze(&topology, &set, analysis)
            .map(|r| r.schedulable)
            .unwrap_or(false)
        {
            gmf += 1;
        }
        if analyze_sporadic_baseline(&topology, &set, analysis)
            .map(|r| r.schedulable)
            .unwrap_or(false)
        {
            sporadic += 1;
        }
        if utilization_check(&topology, &set)
            .map(|c| c.feasible)
            .unwrap_or(false)
        {
            feasible += 1;
        }
    }
    let denom = config.sets_per_point as f64;
    AcceptancePoint {
        utilization,
        trials: config.sets_per_point,
        gmf_accepted: gmf as f64 / denom,
        sporadic_accepted: sporadic as f64 / denom,
        utilization_feasible: feasible as f64 / denom,
    }
}

/// Run the acceptance sweep with one independently seeded RNG per
/// utilization point, evaluating up to `threads` points concurrently.
///
/// Each point draws its ChaCha8 seed deterministically from `seed` and its
/// index, so the result depends only on `(seed, utilizations, config,
/// analysis)` — never on the thread count: `threads = 1` and `threads = N`
/// produce identical output, and the points can be recomputed individually.
/// (The per-point RNG streams differ from the single-stream
/// [`acceptance_sweep`], so the two functions agree in distribution but not
/// sample-for-sample.)
///
/// # Panics
///
/// Panics if `config` is invalid (see [`SweepConfig::validate`]).
pub fn acceptance_sweep_par(
    seed: u64,
    utilizations: &[f64],
    config: &SweepConfig,
    analysis: &AnalysisConfig,
    threads: usize,
) -> Vec<AcceptancePoint> {
    // tidy-allow: unwrap invariant: invalid sweep configuration
    config.validate().expect("invalid sweep configuration");
    par_map(
        Threads::new(threads),
        utilizations,
        |index, &utilization| {
            // Well-spread per-point seed: splitmix64 of (seed, index).
            let mut rng = ChaCha8Rng::seed_from_u64(gmf_par::derive_seed(seed, index as u64));
            acceptance_point(&mut rng, utilization, config, analysis)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            flows_per_set: 4,
            sets_per_point: 5,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn converging_flow_set_routes_everything_to_the_sink() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = small_config();
        let flows = random_flow_collection(&mut rng, 4, 0.3, &config.synthetic);
        let (topology, set, sink) = build_converging_flow_set(&mut rng, flows, &config);
        assert_eq!(set.len(), 4);
        set.validate_against(&topology).unwrap();
        for binding in set.bindings() {
            assert_eq!(binding.route.destination(), sink);
            assert_ne!(binding.route.source(), sink);
        }
        // Deadline-monotonic priorities were assigned (not all zero unless
        // all deadlines are in the same quantile).
        assert!(set.bindings().iter().any(|b| b.priority.0 > 0));
    }

    #[test]
    fn acceptance_decreases_with_utilization_and_gmf_dominates_sporadic() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let config = small_config();
        let points = acceptance_sweep(&mut rng, &[0.10, 0.95], &config, &AnalysisConfig::paper());
        assert_eq!(points.len(), 2);
        let low = &points[0];
        let high = &points[1];
        // At 10% utilization (almost) everything is accepted; at 95% the
        // necessary condition already rejects many sets and the sufficient
        // analyses accept no more than it.
        assert!(low.gmf_accepted >= 0.8, "low point: {low:?}");
        assert!(high.gmf_accepted <= low.gmf_accepted);
        for p in &points {
            assert!(p.gmf_accepted >= p.sporadic_accepted - 1e-9, "{p:?}");
            assert_eq!(p.trials, config.sets_per_point);
        }
    }

    #[test]
    fn parallel_sweep_is_identical_at_any_thread_count() {
        let config = small_config();
        let utilizations = [0.2, 0.5, 0.8];
        let reference =
            acceptance_sweep_par(42, &utilizations, &config, &AnalysisConfig::paper(), 1);
        assert_eq!(reference.len(), 3);
        for threads in [2usize, 3, 8] {
            let parallel = acceptance_sweep_par(
                42,
                &utilizations,
                &config,
                &AnalysisConfig::paper(),
                threads,
            );
            assert_eq!(reference, parallel, "threads = {threads}");
        }
        // A different master seed gives a different (but valid) curve.
        let other = acceptance_sweep_par(7, &utilizations, &config, &AnalysisConfig::paper(), 2);
        for p in &other {
            assert!(p.gmf_accepted >= p.sporadic_accepted - 1e-9);
            assert_eq!(p.trials, config.sets_per_point);
        }
    }

    #[test]
    fn zero_sets_per_point_is_rejected_not_nan() {
        // Regression: `acceptance_point` divides by `sets_per_point`, so a
        // zero used to yield a silent NaN acceptance ratio.
        let config = SweepConfig {
            sets_per_point: 0,
            ..SweepConfig::default()
        };
        assert!(config.validate().unwrap_err().contains("sets_per_point"));
        assert!(SweepConfig {
            flows_per_set: 0,
            ..SweepConfig::default()
        }
        .validate()
        .is_err());
        assert!(SweepConfig {
            n_sources: 0,
            ..SweepConfig::default()
        }
        .validate()
        .is_err());
        assert!(SweepConfig::default().validate().is_ok());

        let result = std::panic::catch_unwind(|| {
            acceptance_sweep(
                &mut ChaCha8Rng::seed_from_u64(1),
                &[0.5],
                &config,
                &AnalysisConfig::paper(),
            )
        });
        assert!(result.is_err(), "a zero-trial sweep must panic, not NaN");
        let result = std::panic::catch_unwind(|| {
            acceptance_sweep_par(1, &[0.5], &config, &AnalysisConfig::paper(), 2)
        });
        assert!(result.is_err());
    }

    #[test]
    fn sweep_is_reproducible_for_a_seed() {
        let config = small_config();
        let a = acceptance_sweep(
            &mut ChaCha8Rng::seed_from_u64(3),
            &[0.3],
            &config,
            &AnalysisConfig::paper(),
        );
        let b = acceptance_sweep(
            &mut ChaCha8Rng::seed_from_u64(3),
            &[0.3],
            &config,
            &AnalysisConfig::paper(),
        );
        assert_eq!(a, b);
    }
}
