//! Synthetic GMF workload generation for the evaluation experiments.
//!
//! The acceptance-ratio experiments (E8) need many random flow sets with a
//! controlled *offered utilization* of a bottleneck link.  The generator
//! follows the standard recipe of the schedulability-analysis literature:
//!
//! 1. split the target utilization among `n` flows with the UUniFast
//!    algorithm (unbiased uniform sampling of the utilization simplex);
//! 2. for each flow, draw a GMF structure (number of frames, per-frame
//!    minimum inter-arrival times, a size profile that makes one frame much
//!    larger than the others, video-style);
//! 3. scale the payloads so the flow's long-run wire utilization of the
//!    reference link matches its share;
//! 4. draw a relative deadline as a multiple of the per-frame inter-arrival
//!    time.

use gmf_model::{Bits, FrameSpec, GmfFlow, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic GMF flow generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Minimum number of frames per GMF cycle.
    pub min_frames: usize,
    /// Maximum number of frames per GMF cycle.
    pub max_frames: usize,
    /// Minimum per-frame inter-arrival time.
    pub min_interarrival: Time,
    /// Maximum per-frame inter-arrival time.
    pub max_interarrival: Time,
    /// Weight of the largest frame relative to the others (video-style
    /// burstiness); 1.0 makes all frames equal.
    pub burstiness: f64,
    /// Deadline of a frame = this factor × its inter-arrival time
    /// (drawn uniformly from the range).
    pub deadline_factor: (f64, f64),
    /// Generalized jitter assigned to every frame.
    pub jitter: Time,
    /// Reference link speed (bit/s) used to convert utilization shares into
    /// payload sizes.
    pub reference_speed_bps: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            min_frames: 1,
            max_frames: 10,
            min_interarrival: Time::from_millis(10.0),
            max_interarrival: Time::from_millis(100.0),
            burstiness: 6.0,
            deadline_factor: (2.0, 10.0),
            jitter: Time::from_millis(0.5),
            reference_speed_bps: 100.0e6,
        }
    }
}

/// UUniFast: split `total` into `n` non-negative shares whose sum is
/// `total`, uniformly over the simplex.
pub fn uunifast<R: Rng>(rng: &mut R, n: usize, total: f64) -> Vec<f64> {
    assert!(n >= 1);
    let mut shares = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let next = remaining * rng.gen_range(0.0f64..1.0).powf(1.0 / (n - i) as f64);
        shares.push(remaining - next);
        remaining = next;
    }
    shares.push(remaining);
    shares
}

/// Generate one random GMF flow whose long-run utilization of the reference
/// link is (approximately) `utilization`.
pub fn random_gmf_flow<R: Rng>(
    rng: &mut R,
    name: &str,
    utilization: f64,
    config: &SyntheticConfig,
) -> GmfFlow {
    assert!(utilization > 0.0, "utilization must be positive");
    let n_frames = rng.gen_range(config.min_frames..=config.max_frames.max(config.min_frames));

    // Inter-arrival times and the per-frame size weights.
    let mut interarrivals = Vec::with_capacity(n_frames);
    let mut weights = Vec::with_capacity(n_frames);
    for k in 0..n_frames {
        let t =
            rng.gen_range(config.min_interarrival.as_secs()..=config.max_interarrival.as_secs());
        interarrivals.push(Time::from_secs(t));
        weights.push(if k == 0 {
            config.burstiness.max(1.0)
        } else {
            1.0
        });
    }
    let tsum: Time = interarrivals.iter().copied().sum();
    let total_weight: f64 = weights.iter().sum();

    // Total payload bits per cycle so that (roughly, ignoring header
    // overhead) payload / TSUM = utilization × reference speed.
    let total_payload_bits = utilization * config.reference_speed_bps * tsum.as_secs();

    let frames = (0..n_frames)
        .map(|k| {
            let share = weights[k] / total_weight;
            let payload_bits = (total_payload_bits * share).max(64.0);
            let deadline_factor =
                rng.gen_range(config.deadline_factor.0..=config.deadline_factor.1);
            FrameSpec {
                payload: Bits::from_bytes((payload_bits / 8.0).ceil().max(8.0) as u64),
                min_interarrival: interarrivals[k],
                deadline: interarrivals[k] * deadline_factor,
                jitter: config.jitter,
            }
        })
        .collect();

    // tidy-allow: unwrap invariant: generated parameters are always valid
    GmfFlow::new(name, frames).expect("generated parameters are always valid")
}

/// Generate `n_flows` random flows whose utilizations of the reference link
/// sum to `total_utilization`.
pub fn random_flow_collection<R: Rng>(
    rng: &mut R,
    n_flows: usize,
    total_utilization: f64,
    config: &SyntheticConfig,
) -> Vec<GmfFlow> {
    let shares = uunifast(rng, n_flows, total_utilization);
    shares
        .iter()
        .enumerate()
        .map(|(i, &u)| random_gmf_flow(rng, &format!("synthetic{i}"), u.max(1e-4), config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{EncapsulationConfig, LinkDemand};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn uunifast_shares_sum_to_total_and_are_non_negative() {
        let mut r = rng();
        for n in [1, 2, 5, 20] {
            for total in [0.1, 0.5, 0.9] {
                let shares = uunifast(&mut r, n, total);
                assert_eq!(shares.len(), n);
                assert!(shares.iter().all(|&s| s >= 0.0));
                let sum: f64 = shares.iter().sum();
                assert!((sum - total).abs() < 1e-9, "sum {sum} != {total}");
            }
        }
    }

    #[test]
    fn random_flow_respects_structure_bounds() {
        let mut r = rng();
        let config = SyntheticConfig::default();
        for i in 0..50 {
            let flow = random_gmf_flow(&mut r, &format!("f{i}"), 0.1, &config);
            assert!(flow.n_frames() >= config.min_frames);
            assert!(flow.n_frames() <= config.max_frames);
            for spec in flow.frames() {
                assert!(spec.min_interarrival >= config.min_interarrival);
                assert!(spec.min_interarrival <= config.max_interarrival);
                assert!(spec.deadline >= spec.min_interarrival * config.deadline_factor.0 * 0.999);
                assert!(spec.jitter == config.jitter);
                assert!(!spec.payload.is_zero());
            }
            // The first frame carries the burst.
            assert_eq!(flow.max_payload(), flow.frame(0).unwrap().payload);
        }
    }

    #[test]
    fn generated_utilization_tracks_the_target() {
        let mut r = rng();
        let config = SyntheticConfig::default();
        // Payload utilization targets the reference speed; the wire
        // utilization (with headers) is slightly larger but within ~15%.
        for &target in &[0.05, 0.2, 0.4] {
            let flow = random_gmf_flow(&mut r, "f", target, &config);
            let demand = LinkDemand::new(
                &flow,
                &EncapsulationConfig::paper(),
                gmf_model::BitRate::from_bps(config.reference_speed_bps),
            );
            let measured = demand.utilization();
            assert!(
                measured >= target * 0.95 && measured <= target * 1.25,
                "target {target}, measured {measured}"
            );
        }
    }

    #[test]
    fn collection_utilization_sums_to_target() {
        let mut r = rng();
        let config = SyntheticConfig::default();
        let flows = random_flow_collection(&mut r, 8, 0.6, &config);
        assert_eq!(flows.len(), 8);
        let total: f64 = flows
            .iter()
            .map(|f| {
                LinkDemand::new(
                    f,
                    &EncapsulationConfig::paper(),
                    gmf_model::BitRate::from_bps(config.reference_speed_bps),
                )
                .utilization()
            })
            .sum();
        assert!(total > 0.55 && total < 0.80, "total {total}");
    }

    #[test]
    fn generation_is_reproducible() {
        let config = SyntheticConfig::default();
        let a = random_flow_collection(&mut rng(), 5, 0.5, &config);
        let b = random_flow_collection(&mut rng(), 5, 0.5, &config);
        assert_eq!(a, b);
    }
}
