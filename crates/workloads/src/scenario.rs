//! Scenario files: saving and loading a complete (topology + flows)
//! description as JSON.
//!
//! Operators (and the experiment binaries) can dump the exact scenario an
//! experiment ran on, re-load it, and re-run either the analysis or the
//! simulator on it — the file format is simply the serde representation of
//! the two substrate types plus a little metadata.

use gmf_net::{FlowSet, Topology};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A self-contained scenario description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioFile {
    /// Free-form scenario name.
    pub name: String,
    /// Free-form description of where the scenario comes from.
    pub description: String,
    /// The network.
    pub topology: Topology,
    /// The offered flows.
    pub flows: FlowSet,
}

impl ScenarioFile {
    /// Bundle a topology and flow set into a scenario.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        topology: Topology,
        flows: FlowSet,
    ) -> Self {
        ScenarioFile {
            name: name.into(),
            description: description.into(),
            topology,
            flows,
        }
    }

    /// Serialise to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Write the scenario to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Load a scenario from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        ScenarioFile::from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Basic consistency check: every route of the flow set exists in the
    /// topology.
    pub fn validate(&self) -> Result<(), gmf_net::NetError> {
        self.flows.validate_against(&self.topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_scenario;

    #[test]
    fn json_roundtrip_preserves_structure() {
        let (s, _) = paper_scenario();
        let file = ScenarioFile::new("paper", "Figure 1-4 example", s.topology, s.flows);
        let json = file.to_json().unwrap();
        let back = ScenarioFile::from_json(&json).unwrap();
        assert_eq!(back.name, "paper");
        assert_eq!(back.flows.len(), file.flows.len());
        assert_eq!(back.topology.n_nodes(), file.topology.n_nodes());
        back.validate().unwrap();
        // The round-tripped scenario analyses identically.
        let a = gmf_analysis::analyze(
            &file.topology,
            &file.flows,
            &gmf_analysis::AnalysisConfig::paper(),
        )
        .unwrap();
        let b = gmf_analysis::analyze(
            &back.topology,
            &back.flows,
            &gmf_analysis::AnalysisConfig::paper(),
        )
        .unwrap();
        assert_eq!(a.schedulable, b.schedulable);
        assert_eq!(a.n_frame_bounds(), b.n_frame_bounds());
    }

    #[test]
    fn save_and_load_from_disk() {
        let (s, _) = paper_scenario();
        let file = ScenarioFile::new("paper", "example", s.topology, s.flows);
        let dir = std::env::temp_dir().join("gmfnet-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper.json");
        file.save(&path).unwrap();
        let back = ScenarioFile::load(&path).unwrap();
        assert_eq!(back.flows.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ScenarioFile::from_json("{not json").is_err());
        assert!(ScenarioFile::load("/nonexistent/path/scenario.json").is_err());
    }
}
