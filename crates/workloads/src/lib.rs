//! # gmf-workloads
//!
//! Workload generators, canonical scenarios and parameter sweeps for the
//! GMF multihop schedulability experiments:
//!
//! * [`paper`] — the paper's worked example (Figure 1 network, Figure 2
//!   route, Figure 3/4 MPEG flow) plus the interactive traffic its
//!   introduction motivates;
//! * [`synthetic`] — random GMF flow sets with a controlled offered
//!   utilization (UUniFast split, video-style burstiness);
//! * [`sweep`] — acceptance-ratio sweeps comparing the GMF analysis with
//!   the sporadic-collapse baseline and the utilization-only necessary
//!   test;
//! * [`churn`] — deterministic arrival/departure scripts replayed through
//!   the admission controller (the incremental-engine experiment);
//! * [`metro`] — metro-scale admission workloads: thousands of independent
//!   access cells, a 100k+-flow pre-admitted set and a deterministic
//!   candidate stream for the sharded admission plane (E14 / `exp_metro`);
//! * [`resilience`] — metro cells on a protection ring plus deterministic
//!   fault scripts, the workload of the survivability experiments (E16 /
//!   `exp_resilience`);
//! * [`fuzz`] — deterministic random *valid* scenario generation (random
//!   topologies, mixed flow kinds, rejection-with-reason) for the
//!   conformance harness (E13);
//! * [`scenario`] — JSON scenario files for saving / re-running exact
//!   experiment inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod churn;
pub mod fuzz;
pub mod metro;
pub mod paper;
pub mod resilience;
pub mod scenario;
pub mod sweep;
pub mod synthetic;

pub use churn::{run_churn, ChurnConfig, ChurnOutcome};
pub use fuzz::{
    draw_scenario, valid_scenario, FuzzConfig, FuzzScenario, ScenarioRejection, TopologyShape,
};
pub use metro::{metro_candidates, metro_scenario, MetroCell, MetroConfig, MetroScenario};
pub use paper::{
    conference_video, paper_scenario, paper_scenario_with, paper_video_only_scenario,
    PaperScenarioFlows, Scenario,
};
pub use resilience::{
    fault_script, resilience_scenario, FaultPlan, ResilienceConfig, ResilienceScenario,
};
pub use scenario::ScenarioFile;
pub use sweep::{
    acceptance_sweep, acceptance_sweep_par, build_converging_flow_set, random_sweep_set,
    AcceptancePoint, SweepConfig,
};
pub use synthetic::{random_flow_collection, random_gmf_flow, uunifast, SyntheticConfig};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::churn::{run_churn, ChurnConfig, ChurnOutcome};
    pub use crate::fuzz::{draw_scenario, valid_scenario, FuzzConfig, FuzzScenario};
    pub use crate::metro::{metro_candidates, metro_scenario, MetroConfig, MetroScenario};
    pub use crate::paper::{paper_scenario, paper_video_only_scenario, Scenario};
    pub use crate::resilience::{
        fault_script, resilience_scenario, FaultPlan, ResilienceConfig, ResilienceScenario,
    };
    pub use crate::scenario::ScenarioFile;
    pub use crate::sweep::{acceptance_sweep, AcceptancePoint, SweepConfig};
    pub use crate::synthetic::{random_flow_collection, random_gmf_flow, SyntheticConfig};
}
