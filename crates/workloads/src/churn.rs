//! Churn workloads: flow arrivals *and departures* over time, driven
//! through an [`AdmissionController`].
//!
//! The acceptance sweeps analyse independent random sets; an operator's
//! real workload is a *churning* set — calls arrive, live for a while and
//! tear down.  This module generates a deterministic churn script on the
//! sweep's converging star network and replays it against an admission
//! controller, recording what every decision cost.  Running the same
//! script in [`AdmissionMode::Cold`] and [`AdmissionMode::Warm`] is the
//! headline experiment of the incremental admission engine (E11 /
//! `exp_admission_churn`): decisions and bounds are byte-identical, the
//! per-decision cost is not.
//!
//! Determinism: every event draws from its own ChaCha8 stream seeded with
//! [`gmf_par::derive_seed`]`(seed, event_index)`, so the event sequence
//! depends only on `(seed, config)` — never on thread counts or on how
//! many analyses an engine ran.  Departures pick uniformly among the
//! currently *live* flows; since cold and warm engines take byte-identical
//! decisions, both replay the identical script.

use crate::sweep::SweepConfig;
use crate::synthetic::random_gmf_flow;
use gmf_analysis::{AdmissionController, AdmissionMode, AdmissionRequest, AnalysisConfig};
use gmf_model::FlowId;
use gmf_net::{shortest_path, star, Priority};
use gmf_par::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of events (arrival attempts or departures) to replay.
    pub n_events: usize,
    /// Probability that an event is a departure, when any flow is live.
    pub departure_fraction: f64,
    /// Per-flow target utilization of the bottleneck link, drawn uniformly
    /// from this range for each arrival.
    pub flow_utilization: (f64, f64),
    /// Number of sink hosts on the star.  Each arrival routes from a
    /// random source to a random sink; flows towards different sinks on
    /// different access links never interfere, which is exactly what the
    /// warm engine's dependency-scoped re-verification exploits.
    pub n_sinks: usize,
    /// The star network and flow-structure generator (the sweep's);
    /// `sweep.n_sources` is the number of *source* hosts, on top of which
    /// `n_sinks` sink hosts are added.
    pub sweep: SweepConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            n_events: 60,
            departure_fraction: 0.35,
            flow_utilization: (0.01, 0.06),
            n_sinks: 2,
            sweep: SweepConfig::default(),
        }
    }
}

/// What one churn replay did and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnOutcome {
    /// The engine the replay drove.
    pub mode: AdmissionMode,
    /// Arrival attempts (admission requests).
    pub arrivals: usize,
    /// Accepted arrivals.
    pub accepted: usize,
    /// Rejected arrivals.
    pub rejected: usize,
    /// Departures (releases).
    pub departures: usize,
    /// Flows live at the end of the replay.
    pub live: usize,
    /// Total holistic rounds across all decisions (including cold fallback
    /// reruns).
    pub rounds: usize,
    /// Total per-flow pipeline analyses across all decisions — the cost
    /// metric the warm engine shrinks.
    pub flow_analyses: usize,
    /// Decisions whose final report came from the warm-started path.
    pub warm_decisions: usize,
    /// Worst end-to-end bound of the final accepted set (ns-precision
    /// string keeps the type serde-friendly), `"-"` when empty.
    pub final_worst_bound: String,
    /// `true` if the final accepted set re-verifies as schedulable.
    pub final_schedulable: bool,
}

impl ChurnOutcome {
    /// Decisions taken (arrival attempts).
    pub fn decisions(&self) -> usize {
        self.arrivals
    }

    /// Mean holistic rounds per admission decision.
    pub fn rounds_per_decision(&self) -> f64 {
        self.rounds as f64 / self.arrivals.max(1) as f64
    }

    /// Mean per-flow analyses per admission decision.
    pub fn analyses_per_decision(&self) -> f64 {
        self.flow_analyses as f64 / self.arrivals.max(1) as f64
    }
}

/// Replay a deterministic churn script against a fresh admission
/// controller in the given mode.
///
/// # Panics
///
/// Panics if `config.sweep` is invalid (see [`SweepConfig::validate`]),
/// `config.departure_fraction` is outside `[0, 1]`, `config.n_sinks` is
/// zero, or `config.flow_utilization` is empty or non-positive.
pub fn run_churn(
    seed: u64,
    config: &ChurnConfig,
    analysis: &AnalysisConfig,
    mode: AdmissionMode,
) -> ChurnOutcome {
    config
        .sweep
        .validate()
        // tidy-allow: unwrap invariant: invalid sweep configuration
        .expect("invalid sweep configuration");
    assert!(
        (0.0..=1.0).contains(&config.departure_fraction),
        "departure_fraction must be within [0, 1]"
    );
    assert!(config.n_sinks >= 1, "n_sinks must be at least 1");
    assert!(
        config.flow_utilization.0 > 0.0 && config.flow_utilization.0 <= config.flow_utilization.1,
        "flow_utilization must be a non-empty positive range"
    );

    let (topology, _switch, hosts) = star(
        config.sweep.n_sources + config.n_sinks,
        config.sweep.link,
        config.sweep.switch,
    );
    let sinks: Vec<_> = hosts[..config.n_sinks].to_vec();
    let sources: Vec<_> = hosts[config.n_sinks..].to_vec();
    let mut ctl = AdmissionController::new(topology, *analysis).with_mode(mode);

    let mut outcome = ChurnOutcome {
        mode,
        arrivals: 0,
        accepted: 0,
        rejected: 0,
        departures: 0,
        live: 0,
        rounds: 0,
        flow_analyses: 0,
        warm_decisions: 0,
        final_worst_bound: "-".to_string(),
        final_schedulable: true,
    };

    for event in 0..config.n_events {
        // One independent stream per event: the script depends only on
        // (seed, event) and the decisions taken so far.
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, event as u64));
        let depart = ctl.n_accepted() > 0 && rng.gen_range(0.0..1.0) < config.departure_fraction;
        if depart {
            let live: Vec<FlowId> = ctl.accepted().ids().collect();
            let victim = live[rng.gen_range(0..live.len())];
            // tidy-allow: unwrap invariant: victim is live
            ctl.release(victim).expect("victim is live");
            outcome.departures += 1;
        } else {
            let utilization = rng.gen_range(config.flow_utilization.0..=config.flow_utilization.1);
            let flow = random_gmf_flow(
                &mut rng,
                &format!("churn-{event}"),
                utilization.max(1e-4),
                &config.sweep.synthetic,
            );
            let source = sources[rng.gen_range(0..sources.len())];
            let sink = sinks[rng.gen_range(0..sinks.len())];
            // tidy-allow: unwrap invariant: star is connected
            let route = shortest_path(ctl.topology(), source, sink).expect("star is connected");
            let priority = Priority(rng.gen_range(0..config.sweep.priority_levels.max(1)));
            let decision = ctl
                .request_batch([AdmissionRequest::new(flow, route, priority)])
                // tidy-allow: unwrap invariant: routes on the star are structurally valid
                .expect("routes on the star are structurally valid")
                .pop()
                // tidy-allow: unwrap invariant: a one-element batch yields one decision
                .expect("one decision per request");
            outcome.arrivals += 1;
            let cost = decision.cost();
            outcome.rounds += cost.rounds;
            outcome.flow_analyses += cost.flow_analyses;
            if cost.warm {
                outcome.warm_decisions += 1;
            }
            if decision.is_accepted() {
                outcome.accepted += 1;
            } else {
                outcome.rejected += 1;
            }
        }
    }

    outcome.live = ctl.n_accepted();
    // tidy-allow: unwrap invariant: accepted set is structurally valid
    let final_report = ctl.reanalyze().expect("accepted set is structurally valid");
    outcome.final_schedulable = final_report.schedulable;
    if let Some(worst) = final_report.worst_bound() {
        outcome.final_worst_bound = worst.to_string();
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnConfig {
        ChurnConfig {
            n_events: 24,
            sweep: SweepConfig {
                flows_per_set: 4,
                sets_per_point: 5,
                ..SweepConfig::default()
            },
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn churn_is_reproducible_for_a_seed() {
        let a = run_churn(5, &small(), &AnalysisConfig::paper(), AdmissionMode::Warm);
        let b = run_churn(5, &small(), &AnalysisConfig::paper(), AdmissionMode::Warm);
        assert_eq!(a, b);
        assert_eq!(a.arrivals + a.departures, small().n_events);
        assert!(a.arrivals > 0 && a.departures > 0, "{a:?}");
        assert!(a.final_schedulable);
    }

    #[test]
    fn warm_and_cold_replays_agree_and_warm_is_cheaper() {
        let config = small();
        let analysis = AnalysisConfig::paper();
        let cold = run_churn(9, &config, &analysis, AdmissionMode::Cold);
        let warm = run_churn(9, &config, &analysis, AdmissionMode::Warm);
        // Identical script, identical decisions, identical final bounds.
        assert_eq!(cold.arrivals, warm.arrivals);
        assert_eq!(cold.accepted, warm.accepted);
        assert_eq!(cold.rejected, warm.rejected);
        assert_eq!(cold.departures, warm.departures);
        assert_eq!(cold.live, warm.live);
        assert_eq!(cold.final_worst_bound, warm.final_worst_bound);
        assert_eq!(cold.final_schedulable, warm.final_schedulable);
        // The cold engine never reports warm decisions; the warm engine
        // does real incremental work and is strictly cheaper in total.
        assert_eq!(cold.warm_decisions, 0);
        assert!(warm.warm_decisions > 0, "{warm:?}");
        assert!(
            warm.flow_analyses < cold.flow_analyses,
            "warm {} vs cold {}",
            warm.flow_analyses,
            cold.flow_analyses
        );
        assert!(warm.analyses_per_decision() < cold.analyses_per_decision());
    }

    #[test]
    fn churn_output_is_thread_invariant() {
        let config = small();
        let base = run_churn(3, &config, &AnalysisConfig::paper(), AdmissionMode::Warm);
        let par = run_churn(
            3,
            &config,
            &AnalysisConfig::paper().with_threads(4),
            AdmissionMode::Warm,
        );
        // Thread count moves wall clock only, never results or costs.
        assert_eq!(base, par);
    }

    #[test]
    #[should_panic(expected = "departure_fraction")]
    fn invalid_departure_fraction_is_rejected() {
        let config = ChurnConfig {
            departure_fraction: 1.5,
            ..small()
        };
        run_churn(1, &config, &AnalysisConfig::paper(), AdmissionMode::Warm);
    }

    #[test]
    #[should_panic(expected = "flow_utilization")]
    fn reversed_utilization_range_is_rejected() {
        let config = ChurnConfig {
            flow_utilization: (0.05, 0.01),
            ..small()
        };
        run_churn(1, &config, &AnalysisConfig::paper(), AdmissionMode::Warm);
    }
}
