//! Resilience workloads: metro cells on a protection ring, plus the
//! deterministic fault scripts that break them.
//!
//! The plain [`crate::metro`] workload keeps every cell disjoint — cut any
//! access cable and the victim host is simply gone.  Survivability needs
//! *redundancy*, so this generator joins the cell switches into a ring of
//! trunk links: cut one trunk and every transit flow still reaches its
//! destination the long way around; degrade one switch CPU and only its
//! cell plus the transit flows through it feel it.  That makes the
//! topology a worthwhile subject for
//! `gmf_analysis::resilience::SurvivabilityAnalysis` (every trunk cut is
//! survivable by re-routing, not vacuously fatal) and for the simulator's
//! scripted faults (`switch_sim::FaultScript`).
//!
//! Everything derives from `(seed, config)` via per-cell
//! [`gmf_par::derive_seed`] streams, exactly like the metro generator:
//! same seed, same scenario, regardless of thread counts.

use crate::metro::{cell_flow, MetroCell};
use crate::synthetic::{random_gmf_flow, SyntheticConfig};
use gmf_model::Time;
use gmf_net::{shortest_path, FlowSet, LinkProfile, NodeId, Priority, SwitchConfig, Topology};
use gmf_par::derive_seed;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use switch_sim::{FaultKind, FaultScript, TransientEvent};

/// Parameters of the resilient-metro workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Number of cells on the protection ring (≥ 3, so one trunk cut
    /// always leaves an alternate path).
    pub n_cells: usize,
    /// Hosts per cell (all attached to the cell's switch).
    pub hosts_per_cell: usize,
    /// Intra-cell flows per cell.
    pub local_flows_per_cell: usize,
    /// Transit flows per cell (each from a host of cell `c` to a host of
    /// cell `c+1`, routed over the trunk between them).
    pub transit_flows_per_cell: usize,
    /// Speed of every host–switch access link.
    pub access: LinkProfile,
    /// Speed of every switch–switch trunk link.
    pub trunk: LinkProfile,
    /// Switch CPU parameters of every cell switch.
    pub switch: SwitchConfig,
    /// Flow-structure generator configuration.
    pub synthetic: SyntheticConfig,
    /// Per-flow target utilization of the reference link, drawn uniformly
    /// from this range.  Keep it low enough that the pre-admitted set
    /// verifies even after a trunk cut doubles up traffic on the ring.
    pub flow_utilization: (f64, f64),
    /// Number of 802.1p priority levels assigned (uniformly at random).
    pub priority_levels: u8,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        let access = LinkProfile::ethernet_100m();
        ResilienceConfig {
            n_cells: 6,
            hosts_per_cell: 4,
            local_flows_per_cell: 4,
            transit_flows_per_cell: 2,
            access,
            trunk: LinkProfile::ethernet_1g(),
            switch: SwitchConfig::paper(),
            synthetic: SyntheticConfig {
                reference_speed_bps: access.speed.as_bps(),
                // Generous deadlines: a re-routed transit flow crosses up
                // to `n_cells` switches the long way around the ring, and
                // the survivor set must still verify.
                deadline_factor: (20.0, 40.0),
                jitter: Time::from_millis(0.2),
                ..SyntheticConfig::default()
            },
            flow_utilization: (0.0005, 0.002),
            priority_levels: 8,
        }
    }
}

impl ResilienceConfig {
    /// A minimal configuration for unit tests: three cells, few flows.
    pub fn tiny() -> Self {
        ResilienceConfig {
            n_cells: 3,
            hosts_per_cell: 3,
            local_flows_per_cell: 2,
            transit_flows_per_cell: 1,
            ..ResilienceConfig::default()
        }
    }

    /// Total pre-admitted flows of the scenario.
    pub fn n_flows(&self) -> usize {
        self.n_cells * (self.local_flows_per_cell + self.transit_flows_per_cell)
    }

    /// Check the configuration for values the generator cannot honour.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cells < 3 {
            return Err("n_cells must be at least 3 (a 2-ring has no spare path)".into());
        }
        if self.hosts_per_cell < 2 {
            return Err("hosts_per_cell must be at least 2 (flows need distinct endpoints)".into());
        }
        if self.local_flows_per_cell + self.transit_flows_per_cell == 0 {
            return Err("at least one flow per cell is required".into());
        }
        if self.flow_utilization.0 <= 0.0 || self.flow_utilization.0 > self.flow_utilization.1 {
            return Err("flow_utilization must be a non-empty positive range".into());
        }
        Ok(())
    }
}

/// A generated resilient-metro workload.
#[derive(Debug, Clone)]
pub struct ResilienceScenario {
    /// The network: `n_cells` stars whose switches form a ring.
    pub topology: Topology,
    /// The pre-admitted flows: per cell, first the local flows, then the
    /// transit flows to the next cell.
    pub flows: FlowSet,
    /// The cells, in creation (= ring) order.
    pub cells: Vec<MetroCell>,
    /// The ring's trunk cables: entry `c` joins the switches of cells `c`
    /// and `(c+1) % n_cells`.
    pub trunks: Vec<(NodeId, NodeId)>,
}

/// Build the ring-of-cells topology and its pre-admitted flow set.
///
/// Cell `c` draws everything (local flows, then transit flows) from its own
/// ChaCha8 stream seeded with [`derive_seed`]`(seed, c)`.  Transit flows
/// are routed with [`shortest_path`], which picks the direct trunk — a ring
/// of ≥ 3 cells makes the one-trunk route strictly shorter than the
/// long way around.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`ResilienceConfig::validate`]).
pub fn resilience_scenario(seed: u64, config: &ResilienceConfig) -> ResilienceScenario {
    // tidy-allow: unwrap invariant: invalid resilience configuration
    config.validate().expect("invalid resilience configuration");
    let mut topology = Topology::new();
    let mut cells = Vec::with_capacity(config.n_cells);
    for c in 0..config.n_cells {
        let switch = topology.add_switch(config.switch, format!("rsw{c}"));
        let hosts: Vec<NodeId> = (0..config.hosts_per_cell)
            .map(|h| {
                let host = topology.add_end_host(format!("r{c}h{h}"));
                topology
                    .add_duplex_link(host, switch, config.access)
                    // tidy-allow: unwrap invariant: freshly created nodes are linkable
                    .expect("freshly created nodes are linkable");
                host
            })
            .collect();
        cells.push(MetroCell { switch, hosts });
    }
    let trunks: Vec<(NodeId, NodeId)> = (0..config.n_cells)
        .map(|c| {
            let a = cells[c].switch;
            let b = cells[(c + 1) % config.n_cells].switch;
            topology
                .add_duplex_link(a, b, config.trunk)
                // tidy-allow: unwrap invariant: ring switches are distinct
                .expect("ring switches are distinct");
            (a, b)
        })
        .collect();

    let mut flows = FlowSet::new();
    for (c, cell) in cells.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, c as u64));
        for f in 0..config.local_flows_per_cell {
            let utilization = rng.gen_range(config.flow_utilization.0..=config.flow_utilization.1);
            let flow = random_gmf_flow(
                &mut rng,
                &format!("r{c}-local{f}"),
                utilization,
                &config.synthetic,
            );
            let (flow, route, priority) =
                cell_flow(&mut rng, flow, &topology, cell, config.priority_levels);
            flows.add(flow, route, priority);
        }
        let next = &cells[(c + 1) % config.n_cells];
        for f in 0..config.transit_flows_per_cell {
            let utilization = rng.gen_range(config.flow_utilization.0..=config.flow_utilization.1);
            let flow = random_gmf_flow(
                &mut rng,
                &format!("r{c}-transit{f}"),
                utilization,
                &config.synthetic,
            );
            let source = cell.hosts[rng.gen_range(0..cell.hosts.len())];
            let sink = next.hosts[rng.gen_range(0..next.hosts.len())];
            let route = shortest_path(&topology, source, sink)
                // tidy-allow: unwrap invariant: ring cells are connected
                .expect("ring cells are connected");
            let priority = Priority(rng.gen_range(0..config.priority_levels.max(1)));
            flows.add(flow, route, priority);
        }
    }
    ResilienceScenario {
        topology,
        flows,
        cells,
        trunks,
    }
}

/// When the scripted faults of [`fault_script`] fire.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// When the chosen trunk cable goes down.
    pub outage_start: Time,
    /// How long the trunk stays down.
    pub outage: Time,
    /// When the chosen switch CPU degrades.
    pub degrade_at: Time,
    /// The degradation factor (≥ 1; 1 disables the degrade event).
    pub degrade_factor: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            outage_start: Time::from_millis(50.0),
            outage: Time::from_millis(40.0),
            degrade_at: Time::from_millis(120.0),
            degrade_factor: 2,
        }
    }
}

/// Draw a deterministic fault script against a resilient-metro scenario:
/// one seeded trunk cable goes down and comes back
/// (`outage_start`/`outage`), and one seeded cell switch degrades by
/// `degrade_factor` (omitted when the factor is 1).  The script validates
/// against the scenario's topology by construction.
pub fn fault_script(seed: u64, scenario: &ResilienceScenario, plan: &FaultPlan) -> FaultScript {
    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, u64::MAX));
    let (a, b) = scenario.trunks[rng.gen_range(0..scenario.trunks.len())];
    let switch = scenario.cells[rng.gen_range(0..scenario.cells.len())].switch;
    let mut events = vec![
        TransientEvent {
            at: plan.outage_start,
            kind: FaultKind::LinkDown { a, b },
        },
        TransientEvent {
            at: plan.outage_start + plan.outage,
            kind: FaultKind::LinkUp { a, b },
        },
    ];
    if plan.degrade_factor > 1 {
        events.push(TransientEvent {
            at: plan.degrade_at,
            kind: FaultKind::CpuDegrade {
                switch,
                factor: plan.degrade_factor,
            },
        });
    }
    FaultScript::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_analysis::{resilience::SurvivabilityAnalysis, AnalysisConfig};
    use gmf_net::reroute_severed;

    #[test]
    fn scenario_is_reproducible_and_well_formed() {
        let config = ResilienceConfig::tiny();
        let a = resilience_scenario(5, &config);
        let b = resilience_scenario(5, &config);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.trunks, b.trunks);
        assert_eq!(a.flows.len(), config.n_flows());
        assert_eq!(a.trunks.len(), config.n_cells);
        a.flows.validate_against(&a.topology).unwrap();
        // Transit flows cross exactly one trunk: 4 nodes, 3 links.
        let transit = a
            .flows
            .bindings()
            .iter()
            .filter(|f| f.route.nodes().len() == 4)
            .count();
        assert_eq!(transit, config.n_cells * config.transit_flows_per_cell);
    }

    #[test]
    fn every_trunk_cut_is_reroutable() {
        let config = ResilienceConfig::tiny();
        let scenario = resilience_scenario(9, &config);
        for &(a, b) in &scenario.trunks {
            let mut faulty = scenario.topology.clone();
            faulty.fail_link(a, b).unwrap();
            let survivor = faulty.survivor();
            let outcomes = reroute_severed(&survivor, &scenario.flows);
            assert!(
                outcomes.iter().all(|o| !o.is_stranded()),
                "trunk ({a}, {b}) stranded a flow despite the ring"
            );
        }
    }

    #[test]
    fn preadmitted_set_verifies_and_survives_trunk_cuts() {
        let config = ResilienceConfig::tiny();
        let scenario = resilience_scenario(3, &config);
        let (analysis, stats) = SurvivabilityAnalysis::new(
            scenario.topology.clone(),
            scenario.flows.clone(),
            AnalysisConfig::paper(),
        )
        .unwrap();
        assert!(stats.shards >= 1);
        for &(a, b) in &scenario.trunks {
            let verdict = analysis
                .assess(&gmf_analysis::resilience::FailureScenario::CableCut {
                    a: a.min(b),
                    b: a.max(b),
                })
                .unwrap();
            assert!(verdict.stranded.is_empty());
            assert!(verdict.survivable, "trunk cut ({a}, {b}) not survivable");
        }
    }

    #[test]
    fn fault_script_is_deterministic_and_valid() {
        let config = ResilienceConfig::tiny();
        let scenario = resilience_scenario(7, &config);
        let plan = FaultPlan::default();
        let script = fault_script(11, &scenario, &plan);
        assert_eq!(script, fault_script(11, &scenario, &plan));
        script.validate(&scenario.topology).unwrap();
        assert_eq!(script.events().len(), 3);
        // Factor 1 drops the degrade event.
        let no_degrade = fault_script(
            11,
            &scenario,
            &FaultPlan {
                degrade_factor: 1,
                ..plan
            },
        );
        assert_eq!(no_degrade.events().len(), 2);
        no_degrade.validate(&scenario.topology).unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ResilienceConfig {
            n_cells: 2,
            ..ResilienceConfig::tiny()
        }
        .validate()
        .is_err());
        assert!(ResilienceConfig {
            hosts_per_cell: 1,
            ..ResilienceConfig::tiny()
        }
        .validate()
        .is_err());
        assert!(ResilienceConfig {
            local_flows_per_cell: 0,
            transit_flows_per_cell: 0,
            ..ResilienceConfig::tiny()
        }
        .validate()
        .is_err());
        assert!(ResilienceConfig::default().validate().is_ok());
        assert_eq!(ResilienceConfig::default().n_flows(), 36);
    }
}
