//! Tier-1 enforcement of the determinism & soundness linter: `cargo test`
//! fails if any workspace source violates a tidy rule.

use std::path::Path;

#[test]
fn tidy_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = gmf_tidy::check_workspace(&root).expect("workspace sources are readable");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("{v}");
        }
        panic!(
            "gmf-tidy found {} violation(s); run `cargo run -p gmf-tidy` for the list, \
             fix them or annotate with `tidy-allow: <rule> <reason>` (see DESIGN.md \
             §\"Static invariants\")",
            violations.len()
        );
    }
}
