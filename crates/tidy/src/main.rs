//! `gmf-tidy` — lint the workspace for determinism & soundness invariants.
//!
//! Usage:
//!   gmf-tidy [WORKSPACE_ROOT]   lint (default: the workspace this binary
//!                               was built from, else the current directory)
//!   gmf-tidy --list             print the rule set and rationales
//!
//! Exits non-zero if any violation is found.  See DESIGN.md §"Static
//! invariants" for the rule list and the `tidy-allow` suppression syntax.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p gmf-tidy`, the manifest dir points at
    // crates/tidy; the workspace root is two levels up.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--list") {
        for rule in gmf_tidy::RULES {
            println!("{:12} {}", rule.name, rule.rationale);
        }
        return ExitCode::SUCCESS;
    }
    let root = arg.map_or_else(workspace_root, PathBuf::from);
    match gmf_tidy::check_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("gmf-tidy: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "gmf-tidy: {} violation(s); fix them or add `tidy-allow: <rule> <reason>`",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!(
                "gmf-tidy: cannot walk workspace at {}: {err}",
                root.display()
            );
            ExitCode::FAILURE
        }
    }
}
