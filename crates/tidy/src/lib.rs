//! `gmf-tidy`: the repo's in-tree determinism & soundness linter.
//!
//! Every guarantee this workspace makes — byte-identical reports across
//! thread counts, warm-vs-cold admission equality, conformance bounds that
//! dominate simulation — is a *determinism and numeric-exactness* property.
//! The dynamic test suite can only catch a violation it happens to execute;
//! this linter catches the well-known ways of smuggling nondeterminism or
//! silent numeric wrap into the tree *statically*, at `cargo test` time.
//!
//! The checks are deliberately lexical (line-oriented token scanning with
//! comment/string stripping), in the style of rustc's own `tidy`: no
//! dependencies, no type information, millisecond runtime, zero risk of the
//! gate itself breaking the build.  Each check is a named rule; see
//! [`RULES`] for the list and DESIGN.md §"Static invariants" for the full
//! rationale.
//!
//! ## Suppressing a finding
//!
//! Every exception must be a reviewed, grep-able decision:
//!
//! * per line — a comment on the flagged line, or alone on the line above:
//!   `tidy-allow: unwrap invariant: routes have at least two nodes`
//!   (several rules may be listed comma-separated before the reason);
//! * per file — a `tidy-allow-file: float <reason>` comment anywhere in the
//!   file (conventionally in the header) exempts the whole file from the
//!   named rules.
//!
//! A reason is mandatory; an annotation naming an unknown rule is itself a
//! violation, so stale allows cannot rot silently.
//!
//! ## Heuristics (and their limits)
//!
//! * Test code is exempt from most rules.  A file region is considered test
//!   code from the first line containing `#[cfg(test)]` onward — the
//!   workspace convention of a trailing `mod tests`.  Files under `tests/`
//!   are test code in full; `src/bin/`, `benches/` and `examples/` are
//!   binary/example code.
//! * String literals and comments are stripped before matching, so writing
//!   `"HashMap"` in a message cannot trip the linter.  Raw strings, nested
//!   block comments and char literals are handled; exotic macro tricks are
//!   not — this is a tripwire, not a proof.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Marker introducing a per-line suppression comment.  Built by
/// concatenation so the linter does not mistake its own source for an
/// annotation when run over this crate.
const ALLOW: &str = concat!("tidy-", "allow:");
/// Marker introducing a whole-file suppression comment.
const ALLOW_FILE: &str = concat!("tidy-", "allow-file:");
/// First line of the conventional trailing test module.
const TEST_MARKER: &str = concat!("#[cfg", "(test)]");

/// One finding: a rule fired on a line of a workspace source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the rule that fired (see [`RULES`]).
    pub rule: &'static str,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A rule's name and one-line rationale, for `--list` output and docs.
pub struct RuleDef {
    /// Short kebab-case name used in `tidy-allow` annotations.
    pub name: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
}

/// The rule set, in the order checks run.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "hash",
        rationale: "std HashMap/HashSet iteration order is randomized per process; one \
                    iteration in a report or analysis path breaks byte-identical output. \
                    Use BTreeMap/BTreeSet or dense indices.",
    },
    RuleDef {
        name: "float",
        rationale: "bound-computing modules must stay on the Time/Bits newtypes whose \
                    tolerances are centrally controlled; ad-hoc f32/f64 arithmetic \
                    reintroduces platform- and order-dependent rounding. Tag genuine \
                    telemetry/ratio code with an allow.",
    },
    RuleDef {
        name: "clock",
        rationale: "wall-clock reads and ambient randomness (Instant::now, SystemTime, \
                    thread_rng) make deterministic paths run-dependent; seeds and times \
                    must flow in through configuration.",
    },
    RuleDef {
        name: "cast",
        rationale: "bare `as` numeric casts truncate or saturate silently; in the \
                    analysis crate use the index helpers or checked conversions so \
                    every narrowing is witnessed.",
    },
    RuleDef {
        name: "time-arith",
        rationale: "busy-period and w(q) accumulations in the analysis hot paths must \
                    use the checked/saturating Time helpers (saturating_add, \
                    checked_mul) so overflow fails loudly instead of wrapping; bare \
                    `+=`/`-=` bypasses them.",
    },
    RuleDef {
        name: "unwrap",
        rationale: "library code must not panic on recoverable states; every unwrap()/ \
                    expect() kept for a structural invariant needs an allow stating \
                    that invariant.",
    },
    RuleDef {
        name: "alloc",
        rationale: "the per-frame kernel paths must stay allocation-free: storage \
                    comes from the per-worker KernelScratch arena, reset per flow. \
                    Vec::new/to_vec/collect there reintroduces per-frame heap \
                    traffic the refactor removed.",
    },
];

fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// What kind of source file a path is, for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` of a crate, excluding `src/bin` and `src/main.rs`).
    Lib,
    /// Binary / bench-harness code (`src/bin/`, `src/main.rs`, `benches/`).
    Bin,
    /// Integration-test code (`tests/`).
    Test,
    /// Example code (`examples/`).
    Example,
}

/// Per-file context a rule's scope predicate sees.
struct FileCtx<'a> {
    rel: &'a str,
    kind: FileKind,
    crate_name: &'a str,
    in_test_region: bool,
}

/// Classify a workspace-relative path (forward slashes).
fn classify(rel: &str) -> (FileKind, &str) {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/').unwrap_or((rest, ""));
        let kind = if tail.starts_with("tests/") {
            FileKind::Test
        } else if tail.starts_with("examples/") {
            FileKind::Example
        } else if tail.starts_with("benches/")
            || tail.starts_with("src/bin/")
            || tail == "src/main.rs"
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        (kind, name)
    } else if rel.starts_with("tests/") {
        (FileKind::Test, "gmfnet")
    } else if rel.starts_with("examples/") {
        (FileKind::Example, "gmfnet")
    } else if rel == "src/main.rs" || rel.starts_with("src/bin/") {
        (FileKind::Bin, "gmfnet")
    } else {
        (FileKind::Lib, "gmfnet")
    }
}

/// Crates whose library code forms the deterministic engine: analysis
/// results must be a pure function of inputs.  `gmf-bench` is deliberately
/// absent — measuring wall time is its job.
const ENGINE_CRATES: &[&str] = &[
    "gmf-model",
    "net",
    "par",
    "analysis",
    "switch-sim",
    "workloads",
    "gmfnet",
];

/// Modules that compute or carry schedulability bounds, where raw floats
/// are banned outside tagged telemetry/ratio code.
const BOUND_SCOPE: &[&str] = &[
    "crates/analysis/src/",
    "crates/net/src/",
    "crates/gmf-model/src/units.rs",
    "crates/gmf-model/src/demand.rs",
    "crates/gmf-model/src/encapsulation.rs",
    "crates/gmf-model/src/arrival.rs",
    "crates/switch-sim/src/stats.rs",
];

/// Index-heavy engine modules where bare `as` casts are banned (rule
/// `cast`): the analysis crate plus the shard scheduler's engine path —
/// the flow-component union-find the partition layer is built on and the
/// deterministic work-partitioning primitives admission lanes run
/// through.
const CAST_SCOPE: &[&str] = &[
    "crates/analysis/src/",
    "crates/net/src/components.rs",
    "crates/par/src/",
];

/// The per-frame / busy-period hot paths where unchecked accumulation is
/// banned entirely (rule `time-arith`).
const HOT_PATHS: &[&str] = &[
    "crates/analysis/src/busy_period.rs",
    "crates/analysis/src/first_hop.rs",
    "crates/analysis/src/ingress.rs",
    "crates/analysis/src/egress.rs",
    "crates/analysis/src/kernel.rs",
    "crates/gmf-model/src/table.rs",
];

/// The per-frame kernel modules where heap allocation is banned entirely
/// (rule `alloc`): every byte of scratch must come from the per-worker
/// `KernelScratch` arena so the steady-state analysis loop performs no
/// allocator calls at all.
const ALLOC_SCOPE: &[&str] = &["crates/analysis/src/kernel.rs"];

fn rule_applies(rule: &str, ctx: &FileCtx<'_>) -> bool {
    // Test code may use whatever is convenient; the properties it asserts
    // are what guard the engine.
    if ctx.kind == FileKind::Test || ctx.in_test_region {
        return false;
    }
    match rule {
        "hash" => true,
        "float" => ctx.kind == FileKind::Lib && BOUND_SCOPE.iter().any(|p| ctx.rel.starts_with(p)),
        "clock" => ENGINE_CRATES.contains(&ctx.crate_name),
        "cast" => ctx.kind == FileKind::Lib && CAST_SCOPE.iter().any(|p| ctx.rel.starts_with(p)),
        "time-arith" => HOT_PATHS.contains(&ctx.rel),
        "unwrap" => ctx.kind == FileKind::Lib,
        "alloc" => ALLOC_SCOPE.contains(&ctx.rel),
        _ => false,
    }
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// `true` if `code` contains `tok` delimited by non-identifier characters.
fn has_token(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(tok) {
        let i = from + pos;
        let j = i + tok.len();
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after_ok = j >= bytes.len() || !is_ident_byte(bytes[j]);
        if before_ok && after_ok {
            return true;
        }
        from = i + 1;
    }
    false
}

const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Find a bare `as <numeric type>` cast in stripped code; returns the
/// target type.
fn bare_numeric_cast(code: &str) -> Option<&'static str> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("as") {
        let i = from + pos;
        let j = i + 2;
        let word = (i == 0 || !is_ident_byte(bytes[i - 1]))
            && (j >= bytes.len() || !is_ident_byte(bytes[j]));
        if word {
            let rest = code[j..].trim_start();
            let end = rest
                .bytes()
                .position(|c| !is_ident_byte(c))
                .unwrap_or(rest.len());
            let target = &rest[..end];
            if let Some(t) = NUMERIC_TYPES.iter().find(|t| **t == target) {
                return Some(t);
            }
        }
        from = i + 2;
    }
    None
}

/// Run one rule's matcher over a stripped code line.
fn rule_check(rule: &str, code: &str) -> Option<String> {
    match rule {
        "hash" => ["HashMap", "HashSet"]
            .iter()
            .find(|t| has_token(code, t))
            .map(|t| {
                format!(
                    "{t} has randomized iteration order; use BTreeMap/BTreeSet or dense indices"
                )
            }),
        "float" => ["f32", "f64"].iter().find(|t| has_token(code, t)).map(|t| {
            format!("raw {t} in a bound-computing module; use Time/Bits or tag as telemetry")
        }),
        "clock" => ["Instant", "SystemTime", "thread_rng", "from_entropy"]
            .iter()
            .find(|t| has_token(code, t))
            .map(|t| {
                format!(
                    "{t} makes a deterministic path run-dependent; inject times/seeds via config"
                )
            }),
        "cast" => bare_numeric_cast(code)
            .map(|t| format!("bare `as {t}` cast; use the index helpers or a checked conversion")),
        "time-arith" => ["+=", "-="].iter().find(|t| code.contains(**t)).map(|t| {
            format!("`{t}` in an analysis hot path; use Time::saturating_add/checked_mul helpers")
        }),
        "alloc" => ["Vec::new", ".to_vec(", ".collect("]
            .iter()
            .find(|t| code.contains(**t))
            .map(|t| {
                format!(
                    "`{t}` allocates in a per-frame kernel path; take storage from the \
                     KernelScratch arena"
                )
            }),
        "unwrap" => [".unwrap()", ".expect("]
            .iter()
            .find(|t| code.contains(**t))
            .map(|t| {
                format!(
                    "{t}..) in library code; handle the error or state the invariant in an allow",
                )
            }),
        _ => None,
    }
}

/// Incremental comment/string stripper.  Feed raw lines in order; returns
/// the line with comments and literal contents blanked out.
#[derive(Default)]
struct Stripper {
    /// Nesting depth of `/* */` block comments.
    block_depth: usize,
    /// Inside a normal `"` string that continues past a line break.
    in_string: bool,
    /// Inside a raw string; the number of `#`s that close it.
    in_raw: Option<usize>,
}

impl Stripper {
    fn strip_line(&mut self, line: &str) -> String {
        let b = line.as_bytes();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            if self.block_depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    self.block_depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    self.block_depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = self.in_raw {
                if b[i] == b'"' && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes {
                    self.in_raw = None;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                continue;
            }
            if self.in_string {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        self.in_string = false;
                        i += 1;
                    }
                    _ => i += 1,
                }
                continue;
            }
            match b[i] {
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break,
                b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                    self.block_depth = 1;
                    i += 2;
                }
                b'"' => {
                    // Look back for a raw/byte-string prefix (r", br", r#"…).
                    let mut k = i;
                    let mut hashes = 0;
                    while k > 0 && b[k - 1] == b'#' {
                        k -= 1;
                        hashes += 1;
                    }
                    let raw = k > 0
                        && (b[k - 1] == b'r')
                        && (k < 2 || !is_ident_byte(b[k - 2]) || b[k - 2] == b'b');
                    if raw {
                        self.in_raw = Some(hashes);
                    } else {
                        self.in_string = true;
                    }
                    out.push(' ');
                    i += 1;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes within a
                    // few characters; a lifetime never closes.
                    let rest = &b[i + 1..];
                    let close = if rest.first() == Some(&b'\\') {
                        rest.iter().skip(1).position(|&c| c == b'\'').map(|p| p + 1)
                    } else {
                        rest.iter().take(2).position(|&c| c == b'\'')
                    };
                    match close {
                        Some(p) => {
                            out.push(' ');
                            i += p + 2;
                        }
                        None => {
                            out.push('\'');
                            i += 1;
                        }
                    }
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            }
        }
        out
    }
}

/// A parsed `tidy-allow` annotation.
struct Allow {
    rules: Vec<String>,
    whole_file: bool,
    /// `true` if the annotation is the only content on its line, so it also
    /// covers the following line.
    standalone: bool,
}

/// Parse the allow annotation on a raw line, if any.  Returns an error
/// message for malformed annotations (unknown rule, missing reason).
fn parse_allow(raw: &str, stripped: &str) -> Option<Result<Allow, String>> {
    let (marker, whole_file) = if raw.contains(ALLOW_FILE) {
        (ALLOW_FILE, true)
    } else if raw.contains(ALLOW) {
        (ALLOW, false)
    } else {
        return None;
    };
    let pos = raw.find(marker).unwrap_or(0);
    // Annotations live in `//` comments; the marker appearing anywhere else
    // (e.g. in a help-message string literal) is not an annotation.
    if !raw[..pos].contains("//") {
        return None;
    }
    let after = &raw[pos + marker.len()..];
    // tidy-allow: unwrap invariant text
    // tidy-allow: float, cast utilization ratio
    let mut rules = Vec::new();
    let mut rest = after.trim_start();
    loop {
        let end = rest
            .bytes()
            .position(|c| !(is_ident_byte(c) || c == b'-'))
            .unwrap_or(rest.len());
        let word = &rest[..end];
        if !known_rule(word) {
            if rules.is_empty() {
                return Some(Err(format!(
                    "allow annotation names unknown rule `{word}` (known: {})",
                    RULES.iter().map(|r| r.name).collect::<Vec<_>>().join(", ")
                )));
            }
            break;
        }
        rules.push(word.to_string());
        rest = rest[end..].trim_start();
        if let Some(stripped_comma) = rest.strip_prefix(',') {
            rest = stripped_comma.trim_start();
        } else {
            break;
        }
    }
    if rest.trim().is_empty() {
        return Some(Err(
            "allow annotation is missing a reason; write `tidy-allow: unwrap <why it is safe>`"
                .to_string(),
        ));
    }
    Some(Ok(Allow {
        rules,
        whole_file,
        standalone: stripped.trim().is_empty(),
    }))
}

/// Check one source file's contents.  `rel` is the workspace-relative path
/// with forward slashes; it drives rule scoping.
pub fn check_source(rel: &str, content: &str) -> Vec<Violation> {
    let (kind, crate_name) = classify(rel);
    let lines: Vec<&str> = content.lines().collect();

    // Pass 1: strip, find the test region, and collect allow annotations.
    let mut stripper = Stripper::default();
    let stripped: Vec<String> = lines.iter().map(|l| stripper.strip_line(l)).collect();
    let test_region_start = lines
        .iter()
        .position(|l| l.contains(TEST_MARKER))
        .unwrap_or(lines.len());

    let mut violations = Vec::new();
    let mut file_allows: Vec<String> = Vec::new();
    // line index -> rules allowed on that line
    let mut line_allows: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    for (idx, raw) in lines.iter().enumerate() {
        match parse_allow(raw, &stripped[idx]) {
            None => {}
            Some(Err(msg)) => violations.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                message: msg,
            }),
            Some(Ok(allow)) => {
                if allow.whole_file {
                    file_allows.extend(allow.rules);
                } else {
                    if allow.standalone && idx + 1 < lines.len() {
                        let next = line_allows[idx + 1].clone();
                        line_allows[idx + 1] = [next, allow.rules.clone()].concat();
                    }
                    line_allows[idx].extend(allow.rules);
                }
            }
        }
    }

    // Pass 2: run every in-scope rule over the stripped code.
    for (idx, code) in stripped.iter().enumerate() {
        let ctx = FileCtx {
            rel,
            kind,
            crate_name,
            in_test_region: idx >= test_region_start,
        };
        for rule in RULES {
            if !rule_applies(rule.name, &ctx) {
                continue;
            }
            if file_allows.iter().any(|a| a == rule.name)
                || line_allows[idx].iter().any(|a| a == rule.name)
            {
                continue;
            }
            if let Some(message) = rule_check(rule.name, code) {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: rule.name,
                    message,
                });
            }
        }
    }
    violations
}

/// Collect every `.rs` file the linter covers, as sorted
/// `(workspace-relative, absolute)` pairs.  Vendored stand-in crates and
/// build outputs are out of scope.
fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut roots: Vec<PathBuf> = ["src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            for sub in ["src", "tests", "benches", "examples"] {
                roots.push(dir.join(sub));
            }
        }
    }
    for r in roots {
        collect_rs(&r, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for (rel, abs) in workspace_sources(root)? {
        let content = fs::read_to_string(&abs)?;
        violations.extend(check_source(&rel, &content));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/analysis/src/pipeline.rs";

    fn check(rel: &str, src: &str) -> Vec<Violation> {
        check_source(rel, src)
    }

    fn rules_fired(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hash_rule_fires_and_btree_passes() {
        let bad = "use std::collections::HashMap;\n";
        let good = "use std::collections::BTreeMap;\n";
        assert_eq!(rules_fired(&check(LIB, bad)), ["hash"]);
        assert!(check(LIB, good).is_empty());
    }

    #[test]
    fn hash_rule_skips_strings_comments_and_tests() {
        let in_string = "let msg = \"HashMap is banned\";\n";
        assert!(check(LIB, in_string).is_empty());
        let in_comment = "// a HashMap would be wrong here\n";
        assert!(check(LIB, in_comment).is_empty());
        let in_block = "/* HashMap\nHashSet */ let x = 1;\n";
        assert!(check(LIB, in_block).is_empty());
        let in_tests = format!(
            "fn ok() {{}}\n{}\nmod t {{ use std::collections::HashMap; }}\n",
            TEST_MARKER
        );
        assert!(check(LIB, &in_tests).is_empty());
    }

    #[test]
    fn float_rule_scoped_to_bound_modules() {
        let bad = "pub fn f(x: f64) -> f64 { x }\n";
        assert_eq!(rules_fired(&check(LIB, bad)), ["float"]);
        // In scope since the histogram rework: the simulator statistics
        // module computes bound-comparable percentiles, so raw floats must
        // carry a telemetry tag there too.
        assert_eq!(
            rules_fired(&check("crates/switch-sim/src/stats.rs", bad)),
            ["float"]
        );
        // Still out of scope: the rest of the simulator.
        assert!(check("crates/switch-sim/src/sim.rs", bad).is_empty());
        // Substrings of identifiers do not count.
        assert!(check(LIB, "let f64ish_name = time;\n").is_empty());
    }

    #[test]
    fn clock_rule_fires_in_engine_not_bench() {
        let bad = "let t0 = std::time::Instant::now();\n";
        assert_eq!(rules_fired(&check("crates/par/src/lib.rs", bad)), ["clock"]);
        assert_eq!(rules_fired(&check(LIB, bad)), ["clock"]);
        assert!(check("crates/bench/src/lib.rs", bad).is_empty());
        let rng = "let mut rng = thread_rng();\n";
        assert_eq!(
            rules_fired(&check("crates/workloads/src/fuzz.rs", rng)),
            ["clock"]
        );
    }

    #[test]
    fn clock_rule_covers_the_resilience_surfaces() {
        // The failure-and-recovery subsystem is engine code on all three
        // layers: survivor analysis, scripted simulator faults and the
        // ring workload generator must stay pure functions of their seeds.
        let bad = "let t0 = std::time::Instant::now();\n";
        for path in [
            "crates/analysis/src/resilience.rs",
            "crates/switch-sim/src/faults.rs",
            "crates/workloads/src/resilience.rs",
        ] {
            assert_eq!(rules_fired(&check(path, bad)), ["clock"], "{path}");
        }
    }

    #[test]
    fn cast_rule_fires_on_bare_casts_only_in_analysis() {
        let bad = "let i = x as usize;\n";
        assert_eq!(rules_fired(&check(LIB, bad)), ["cast"]);
        // The shard scheduler is an engine path: the union-find behind the
        // partition layer and the parallel work-partitioning crate.
        assert_eq!(
            rules_fired(&check("crates/net/src/components.rs", bad)),
            ["cast"]
        );
        assert_eq!(rules_fired(&check("crates/par/src/lib.rs", bad)), ["cast"]);
        assert!(check("crates/net/src/route.rs", bad).is_empty());
        // `as` used for imports is not a cast.
        assert!(check(LIB, "use gmf_model::Time as T;\n").is_empty());
        // try_from is the sanctioned form.
        assert!(check(LIB, "let i = usize::try_from(x)?;\n").is_empty());
    }

    #[test]
    fn time_arith_rule_scoped_to_hot_paths() {
        let bad = "total += d.mx(t);\n";
        let hot = "crates/analysis/src/first_hop.rs";
        assert_eq!(rules_fired(&check(hot, bad)), ["time-arith"]);
        // The same accumulation elsewhere in the crate is not flagged.
        assert!(check(LIB, bad).is_empty());
        let good = "total = total.saturating_add(d.mx(t));\n";
        assert!(check(hot, good).is_empty());
        // The kernel modules added by the demand-table refactor are hot
        // paths too.
        assert_eq!(
            rules_fired(&check("crates/analysis/src/kernel.rs", bad)),
            ["time-arith"]
        );
        assert_eq!(
            rules_fired(&check("crates/gmf-model/src/table.rs", bad)),
            ["time-arith"]
        );
    }

    #[test]
    fn alloc_rule_scoped_to_kernel_paths() {
        let kernel = "crates/analysis/src/kernel.rs";
        for bad in [
            "let v: Vec<Time> = Vec::new();\n",
            "let copy = slice.to_vec();\n",
            "let all: Vec<Time> = items.iter().map(f).collect();\n",
        ] {
            assert_eq!(rules_fired(&check(kernel, bad)), ["alloc"], "{bad:?}");
            // The same allocation outside the kernel paths is fine.
            assert!(check(LIB, bad).is_empty(), "{bad:?}");
        }
        // Arena reuse is the sanctioned pattern.
        assert!(check(kernel, "scratch.terms.extend(specs.iter().map(f));\n").is_empty());
        // The escape hatch documents intentional one-time allocation.
        let allowed = "// tidy-allow: alloc arena construction, once per worker\nlet v: Vec<Time> = Vec::new();\n";
        assert!(check(kernel, allowed).is_empty());
    }

    #[test]
    fn unwrap_rule_exempts_bins_tests_examples() {
        let bad = "let v = m.get(&k).unwrap();\n";
        let bad2 = "let v = m.get(&k).expect(\"present\");\n";
        assert_eq!(rules_fired(&check(LIB, bad)), ["unwrap"]);
        assert_eq!(rules_fired(&check(LIB, bad2)), ["unwrap"]);
        assert!(check("crates/bench/src/bin/exp_topology.rs", bad).is_empty());
        assert!(check("tests/properties.rs", bad).is_empty());
        assert!(check("examples/quickstart.rs", bad).is_empty());
        // unwrap_or is fine.
        assert!(check(LIB, "let v = m.get(&k).copied().unwrap_or(0);\n").is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses() {
        let src = format!("let v = m.get(&k).unwrap(); // {ALLOW} unwrap key inserted above\n");
        assert!(check(LIB, &src).is_empty());
    }

    #[test]
    fn standalone_allow_covers_next_line() {
        let src = format!("// {ALLOW} unwrap key inserted above\nlet v = m.get(&k).unwrap();\n");
        assert!(check(LIB, &src).is_empty());
        // ... but not two lines down.
        let far = format!(
            "// {ALLOW} unwrap key inserted above\nlet a = 1;\nlet v = m.get(&k).unwrap();\n"
        );
        assert_eq!(rules_fired(&check(LIB, &far)), ["unwrap"]);
    }

    #[test]
    fn allow_is_rule_specific() {
        let src = format!("let i = x as usize; // {ALLOW} unwrap not the right rule\n");
        assert_eq!(rules_fired(&check(LIB, &src)), ["cast"]);
    }

    #[test]
    fn comma_separated_allow_covers_multiple_rules() {
        let src =
            format!("let u = c as f64 / t as f64; // {ALLOW} float, cast utilization ratio\n");
        assert!(check(LIB, &src).is_empty());
    }

    #[test]
    fn file_level_allow_covers_whole_file() {
        let src = format!(
            "// {ALLOW_FILE} float Time's storage representation lives here\npub fn f(x: f64) -> f64 {{ x }}\n"
        );
        assert!(check(LIB, &src).is_empty());
    }

    #[test]
    fn malformed_allows_are_violations() {
        let unknown = format!("let x = 1; // {ALLOW} bogus-rule some reason\n");
        assert_eq!(rules_fired(&check(LIB, &unknown)), ["allow-syntax"]);
        let no_reason = format!("let v = m.get(&k).unwrap(); // {ALLOW} unwrap\n");
        let fired = rules_fired(&check(LIB, &no_reason));
        assert!(
            fired.contains(&"allow-syntax"),
            "missing reason must be flagged: {fired:?}"
        );
    }

    #[test]
    fn violation_display_is_file_line_rule() {
        let v = &check(LIB, "use std::collections::HashSet;\n")[0];
        let s = v.to_string();
        assert!(
            s.starts_with("crates/analysis/src/pipeline.rs:1: [hash]"),
            "{s}"
        );
    }

    #[test]
    fn raw_strings_and_char_literals_are_stripped() {
        let raw = "let p = r#\"contains HashMap and f64\"#;\n";
        assert!(check(LIB, raw).is_empty());
        let ch = "let c = 'a'; let t: &'static str = x;\n";
        assert!(check(LIB, ch).is_empty());
    }

    #[test]
    fn multiline_string_keeps_rule_quiet() {
        let src = "let s = \"first line HashMap\nsecond line f64\";\nlet ok = 1;\n";
        assert!(check(LIB, src).is_empty());
    }

    #[test]
    fn workspace_run_is_clean_smoke() {
        // The real gate lives in tests/tidy_clean.rs; this is a cheap sanity
        // check that the walker finds this very crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_sources(&root).expect("workspace walk");
        assert!(files.iter().any(|(rel, _)| rel == "crates/tidy/src/lib.rs"));
        assert!(files.iter().all(|(rel, _)| !rel.starts_with("vendor/")));
    }
}
