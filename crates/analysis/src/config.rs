//! Configuration of the schedulability analysis.

use crate::fixed_point::FixedPointStrategy;
use gmf_model::Time;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the response-time analysis.
///
/// The defaults reproduce the paper's equations as printed; the two
/// `refine_*` flags enable documented refinements that make the bounds
/// strictly more conservative (see DESIGN.md §4) and are used by the
/// ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Abort a busy-period / queuing-time fixed-point iteration once the
    /// iterate exceeds this horizon and report divergence.  The horizon also
    /// bounds the holistic jitter iteration.
    pub horizon: Time,
    /// Maximum number of iterations of any single fixed-point computation.
    pub max_fixed_point_iterations: usize,
    /// Maximum number of outer (holistic jitter) iterations.
    pub max_holistic_iterations: usize,
    /// Refinement of the switch-ingress analysis (eqs. 21–27): also count
    /// the analysed flow's *own* Ethernet frames — `q·NSUM_i` frames instead
    /// of `q` and `NSUM_i^k` service rounds instead of one for the frame
    /// under analysis.  The paper's equations as printed charge only one
    /// `CIRC(N)` for the packet under analysis; a multi-fragment UDP packet
    /// needs one routing-task service per Ethernet frame, so this flag makes
    /// the bound safe for fragmented packets at the cost of pessimism.
    pub refine_ingress_own_frames: bool,
    /// Refinement of the first-hop analysis (eqs. 14–20): widen the
    /// interference window of every *other* flow by that flow's largest
    /// single-frame transmission time (as if it had that much extra
    /// generalized jitter).  This captures the packet that was enqueued just
    /// before the frame under analysis; the paper's `MX(0) = 0` misses that
    /// case when all generalized jitters are zero (its worked example always
    /// uses a non-zero jitter).
    pub refine_first_hop_blocking: bool,
    /// Refinement of the switch-egress analysis (eqs. 28–35): treat the
    /// packet under analysis as its `NSUM_i^k` individual Ethernet frames
    /// rather than one atom.  The printed equations add `C_i^k` *after*
    /// the queueing fixed point `w(q)`, as if the packet transmitted
    /// contiguously once it reached the head of the priority queue — but
    /// Ethernet non-preemption is per *frame*: between two fragments a
    /// higher-or-equal-priority frame that arrived meanwhile is dequeued
    /// first, and when the input link rate-limits the fragment trickle, a
    /// *lower*-priority frame can slip onto the idle link in every
    /// inter-fragment gap.  (The adversarial conformance harness found
    /// both effects: a 7-fragment packet was overtaken mid-transmission
    /// and finished past its printed bound.)  With the flag on, fragmented
    /// frames solve the queueing fixed point with their own transmission
    /// inside the interference window and charge one `MFT` blocking per
    /// own Ethernet frame; the bound is strictly more conservative.
    pub refine_egress_own_frames: bool,
    /// How the holistic engine advances the jitter iterate between outer
    /// rounds: plain Picard (the paper's scheme, the default) or
    /// safeguarded Anderson(1) acceleration.  Both land on the same fixed
    /// point and produce identical flow reports at convergence (see
    /// `fixed_point` module docs); Anderson can need fewer rounds on
    /// workloads with long geometric tails.
    pub strategy: FixedPointStrategy,
    /// Worker threads for the per-flow analyses within one holistic round
    /// (the flows of a round are independent).  `1` (the default) runs
    /// inline on the caller's thread; any value produces byte-identical
    /// reports.
    pub threads: usize,
    /// Skip re-analysing a flow in a holistic round when every jitter slot
    /// its analysis reads is *exactly* unchanged from the round that
    /// produced its cached report (Jacobi memoization).  Within one round
    /// every flow is analysed against the same immutable previous-round
    /// map, so unchanged inputs reproduce the cached outputs bit for bit —
    /// the report, the convergence trace and the verdict are byte-identical
    /// with the flag on or off; only the `flow_analyses` cost counters
    /// shrink.  `true` by default; the ablation experiments switch it off
    /// to measure the saving.
    pub skip_unchanged_flows: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            horizon: Time::from_secs(10.0),
            max_fixed_point_iterations: 100_000,
            max_holistic_iterations: 100,
            refine_ingress_own_frames: false,
            refine_first_hop_blocking: false,
            refine_egress_own_frames: false,
            strategy: FixedPointStrategy::Picard,
            threads: 1,
            skip_unchanged_flows: true,
        }
    }
}

impl AnalysisConfig {
    /// The configuration that matches the paper's equations exactly.
    pub fn paper() -> Self {
        AnalysisConfig::default()
    }

    /// The conservative configuration: both refinements enabled.  Used by
    /// the simulation-validation experiment (E7), where the analytical bound
    /// must dominate every observed response time.
    pub fn conservative() -> Self {
        AnalysisConfig {
            refine_ingress_own_frames: true,
            refine_first_hop_blocking: true,
            refine_egress_own_frames: true,
            ..AnalysisConfig::default()
        }
    }

    /// Override the divergence horizon.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the fixed-point strategy of the holistic engine.
    pub fn with_strategy(mut self, strategy: FixedPointStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the outer (holistic jitter) iteration budget (`0` is
    /// treated as 1).  Warm-started admission trials inherit the same
    /// budget as cold runs; tests use small budgets to exercise the
    /// non-convergence paths.
    pub fn with_max_holistic_iterations(mut self, iterations: usize) -> Self {
        self.max_holistic_iterations = iterations.max(1);
        self
    }

    /// Override the worker-thread count of the holistic engine (`0` is
    /// treated as 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable the dirty-flow round skipping of the holistic
    /// engine (reports are byte-identical either way; only the
    /// `flow_analyses` cost counters differ).
    pub fn with_skip_unchanged_flows(mut self, skip: bool) -> Self {
        self.skip_unchanged_flows = skip;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = AnalysisConfig::default();
        assert!(!c.refine_ingress_own_frames);
        assert!(!c.refine_first_hop_blocking);
        assert!(!c.refine_egress_own_frames);
        assert_eq!(c, AnalysisConfig::paper());
        assert!(c.horizon > Time::from_secs(1.0));
        assert!(c.max_fixed_point_iterations > 1000);
        assert!(c.max_holistic_iterations >= 10);
    }

    #[test]
    fn conservative_enables_refinements() {
        let c = AnalysisConfig::conservative();
        assert!(c.refine_ingress_own_frames);
        assert!(c.refine_first_hop_blocking);
        assert!(c.refine_egress_own_frames);
    }

    #[test]
    fn with_horizon_overrides() {
        let c = AnalysisConfig::default().with_horizon(Time::from_secs(1.0));
        assert_eq!(c.horizon, Time::from_secs(1.0));
    }

    #[test]
    fn engine_defaults_preserve_the_paper_scheme() {
        let c = AnalysisConfig::default();
        assert_eq!(c.strategy, FixedPointStrategy::Picard);
        assert_eq!(c.threads, 1);
        // Round skipping is on by default — it is invisible in the bounds.
        assert!(c.skip_unchanged_flows);
        assert!(!c.with_skip_unchanged_flows(false).skip_unchanged_flows);
    }

    #[test]
    fn with_strategy_and_threads_override() {
        let c = AnalysisConfig::default()
            .with_strategy(FixedPointStrategy::Anderson1)
            .with_threads(4);
        assert_eq!(c.strategy, FixedPointStrategy::Anderson1);
        assert_eq!(c.threads, 4);
        assert_eq!(AnalysisConfig::default().with_threads(0).threads, 1);
    }

    #[test]
    fn config_serde_roundtrip_includes_engine_fields() {
        let c = AnalysisConfig::conservative()
            .with_strategy(FixedPointStrategy::Anderson1)
            .with_threads(8);
        let json = serde_json::to_string(&c).unwrap();
        let back: AnalysisConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
