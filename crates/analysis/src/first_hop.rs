//! First-hop analysis (paper Section 3.2, equations (14)–(20)).
//!
//! The first hop is special because the source node is an IP end host (or
//! router) whose queueing discipline the network operator does not control:
//! the only assumption is that the output queue is *work conserving*.  The
//! analysis therefore charges interference from **every** flow sharing the
//! first link, regardless of priority.
//!
//! For frame `k` of flow `τ_i` on its first link `link(S, succ(τ_i, S))`:
//!
//! 1. the busy-period length `t_i^k` is the least fixed point of
//!    `t = Σ_j MX_j(t + extra_j)` over all flows `j` on the link (eq. 15);
//! 2. `Q_i^k = ⌈t_i^k / TSUM_i⌉` instances of frame `k` can fall inside the
//!    busy period;
//! 3. the queueing time of the `q`-th instance is the least fixed point of
//!    `w(q) = q·CSUM_i + Σ_{j≠i} MX_j(w(q) + extra_j)` (eq. 17);
//! 4. its response time is `w(q) − q·TSUM_i + C_i^k` (eq. 18) and the hop
//!    bound is the maximum over `q` plus the propagation delay (eq. 19).
//!
//! The analysis requires the link not to be overloaded (eq. 20).
//!
//! ### Deviations from the paper (documented in DESIGN.md §4)
//!
//! * Equation (14) seeds the busy-period iteration at 0, which is a fixed
//!   point whenever every `extra_j` is zero; we seed at `C_i^k`, the
//!   smallest busy period that can contain the frame under analysis.
//! * With [`crate::AnalysisConfig::refine_first_hop_blocking`] enabled, the
//!   interference window of every *other* flow is widened by that flow's
//!   largest single-frame transmission time (equivalently, the flow is
//!   treated as having that much additional generalized jitter).  This
//!   covers the packet that was enqueued just before the frame under
//!   analysis even when all generalized jitters are zero.

use crate::busy_period::{fixed_point, FixedPointOutcome};
use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap, ResourceId};
use crate::error::{AnalysisError, StageKind};
use crate::index::qx;
use crate::kernel::KernelScratch;
use crate::stage::StageResult;
use gmf_model::{FlowId, Time};

/// Compute the first-hop response-time bound of frame `frame` of `flow`.
///
/// The jitter of every flow on the first link is taken from `jitters`
/// (the holistic iteration keeps it up to date); for the very first round
/// it is the specified source jitter.
pub fn first_hop_response(
    ctx: &AnalysisContext<'_>,
    jitters: &JitterMap,
    config: &AnalysisConfig,
    flow: FlowId,
    frame: usize,
) -> Result<StageResult, AnalysisError> {
    let binding = ctx.flows().get(flow)?;
    let source = binding.route.source();
    let succ = binding.route.successor(source)?;
    let link = ctx.topology().link_between(source, succ)?;
    let resource = ResourceId::Link {
        from: source,
        to: succ,
    };
    let resource_name = resource.to_string();

    let d_i = ctx.demand(flow, source, succ);
    let c_k = d_i.c(frame);
    let tsum_i = d_i.tsum();

    // All flows transmitting on the first link interfere (any
    // work-conserving queue, priorities are not trusted at the source).
    let all_flows = ctx.flows().flows_on_link(source, succ);
    debug_assert!(all_flows.contains(&flow));

    // Schedulability condition (20).
    let utilization = ctx.link_utilization(&all_flows, source, succ);
    if utilization >= 1.0 {
        return Err(AnalysisError::Overload {
            stage: StageKind::FirstHop,
            flow,
            utilization,
            resource: resource_name,
        });
    }

    // extra_j: the largest generalized jitter of any frame of flow j on
    // this link; under the blocking refinement, other flows' windows are
    // additionally widened by their largest single-frame transmission time
    // (the "enqueued just before us" packet).
    let extras: Vec<(FlowId, Time)> = all_flows
        .iter()
        .map(|&j| {
            let mut extra = jitters.max_jitter(j, resource);
            if config.refine_first_hop_blocking && j != flow {
                extra = extra.saturating_add(ctx.demand(j, source, succ).max_c());
            }
            (j, extra)
        })
        .collect();

    // Busy period, equation (15).
    let busy_period = match fixed_point(
        c_k,
        config.horizon,
        config.max_fixed_point_iterations,
        |t| {
            let mut total = Time::ZERO;
            for (j, extra) in &extras {
                total = total.saturating_add(ctx.demand(*j, source, succ).mx(t + *extra));
            }
            total
        },
    ) {
        FixedPointOutcome::Converged(t) => t,
        FixedPointOutcome::ExceededHorizon { .. } => {
            return Err(AnalysisError::HorizonExceeded {
                stage: StageKind::FirstHop,
                flow,
                horizon: config.horizon,
                resource: resource_name,
            })
        }
        FixedPointOutcome::IterationBudgetExhausted { .. } => {
            return Err(AnalysisError::NoConvergence {
                stage: StageKind::FirstHop,
                flow,
                iterations: config.max_fixed_point_iterations,
            })
        }
    };

    // Number of instances of frame k inside the busy period.
    let instances = busy_period.div_ceil(tsum_i).max(1);

    // Queueing time and response time per instance, equations (16)–(18).
    let mut worst = Time::ZERO;
    for q in 0..instances {
        let own = d_i.csum().saturating_mul(q);
        let w = match fixed_point(
            own,
            config.horizon,
            config.max_fixed_point_iterations,
            |w| {
                let mut total = own;
                for (j, extra) in &extras {
                    if *j == flow {
                        continue;
                    }
                    total = total.saturating_add(ctx.demand(*j, source, succ).mx(w + *extra));
                }
                total
            },
        ) {
            FixedPointOutcome::Converged(w) => w,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::FirstHop,
                    flow,
                    horizon: config.horizon,
                    resource: resource_name,
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::FirstHop,
                    flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };
        // Equation (18).
        let response = w - tsum_i.saturating_mul(q) + c_k;
        worst = worst.max(response);
    }

    // Equation (19): add the propagation delay of the first link.
    Ok(StageResult {
        response: worst + link.propagation,
        busy_period,
        instances,
    })
}

/// The dense per-round state of one flow's first-hop stage: interference
/// terms resolved into the worker's [`KernelScratch`] arena once, and the
/// queueing-time fixed points `w(q)` memoised across frames (they depend
/// on `q` but not on the frame, yet the keyed path re-solved them for
/// every frame of the cycle).
///
/// The busy period (eq. 15) *is* frame-dependent — it is seeded at the
/// frame's own transmission time — so it stays in
/// [`FirstHopDense::response`]; the `w(q)` memo is extended lazily in
/// ascending `q` order, which reproduces the keyed engine's error order
/// exactly (a later frame that needs a deeper `q` than its predecessors is
/// the first to solve — and the first to fail — that recurrence).
pub(crate) struct FirstHopDense {
    flow: gmf_model::FlowId,
    resource: crate::context::ResourceId,
    /// Every interferer's resolved term (busy-period walk), in id order.
    all_terms: std::ops::Range<usize>,
    /// The non-self terms (`w(q)` walk), in id order.
    other_terms: std::ops::Range<usize>,
    own_demand: u32,
    propagation: Time,
}

impl FirstHopDense {
    /// Resolve the stage's terms against the current iterate into the
    /// scratch arena and run the overload check (eq. 20) — everything
    /// frame-independent and fallible-once.
    pub(crate) fn build(
        plan: &crate::dense::DensePlan,
        jitters: &crate::dense::DenseJitters,
        config: &AnalysisConfig,
        flow: gmf_model::FlowId,
        stage: &crate::dense::StagePlan,
        scratch: &mut KernelScratch,
    ) -> Result<Self, AnalysisError> {
        if stage.utilization >= 1.0 {
            return Err(AnalysisError::Overload {
                stage: StageKind::FirstHop,
                flow,
                utilization: stage.utilization,
                resource: stage.resource.to_string(),
            });
        }
        // Under the blocking refinement the widening folds into `extra`
        // for every term: the plan stores `blocking_c == 0` for the
        // flow's own term, so the unconditional add matches the keyed
        // `is_self` branch bit for bit.
        let add_blocking = config.refine_first_hop_blocking;
        let all_terms =
            scratch.resolve_terms(plan.term_slice(&stage.all_terms), jitters, add_blocking);
        let other_terms =
            scratch.resolve_terms(plan.term_slice(&stage.other_terms), jitters, add_blocking);
        Ok(FirstHopDense {
            flow,
            resource: stage.resource,
            all_terms,
            other_terms,
            own_demand: stage.own_demand,
            propagation: stage.propagation,
        })
    }

    /// The first-hop response-time bound of `frame` — the same equations
    /// (15)–(19) as [`first_hop_response`], evaluated as table walks over
    /// the scratch arena's terms.
    pub(crate) fn response(
        &self,
        ctx: &AnalysisContext<'_>,
        config: &AnalysisConfig,
        frame: usize,
        scratch: &mut KernelScratch,
    ) -> Result<Time, AnalysisError> {
        let d_i = ctx.demand_by_index(self.own_demand);
        let c_k = d_i.c(frame);
        let tsum_i = d_i.tsum();
        let csum_i = d_i.csum();
        let tables = ctx.tables();
        let KernelScratch {
            terms, first_hop_w, ..
        } = scratch;
        let all = &terms[self.all_terms.clone()];
        let others = &terms[self.other_terms.clone()];

        // Busy period, equation (15), seeded at the frame's own C.
        let busy_period = match crate::kernel::solve_sum_mx(
            tables,
            all,
            Time::ZERO,
            c_k,
            config.horizon,
            config.max_fixed_point_iterations,
        ) {
            FixedPointOutcome::Converged(t) => t,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::FirstHop,
                    flow: self.flow,
                    horizon: config.horizon,
                    resource: self.resource.to_string(),
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::FirstHop,
                    flow: self.flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };

        let instances = busy_period.div_ceil(tsum_i).max(1);

        // Queueing time per instance (eqs. 16–17): frame-independent, so
        // solved once per `q` across the whole cycle.
        let mut worst = Time::ZERO;
        for q in 0..instances {
            if first_hop_w.len() <= qx(q) {
                let own = csum_i.saturating_mul(q);
                let w = match crate::kernel::solve_sum_mx(
                    tables,
                    others,
                    own,
                    own,
                    config.horizon,
                    config.max_fixed_point_iterations,
                ) {
                    FixedPointOutcome::Converged(w) => w,
                    FixedPointOutcome::ExceededHorizon { .. } => {
                        return Err(AnalysisError::HorizonExceeded {
                            stage: StageKind::FirstHop,
                            flow: self.flow,
                            horizon: config.horizon,
                            resource: self.resource.to_string(),
                        })
                    }
                    FixedPointOutcome::IterationBudgetExhausted { .. } => {
                        return Err(AnalysisError::NoConvergence {
                            stage: StageKind::FirstHop,
                            flow: self.flow,
                            iterations: config.max_fixed_point_iterations,
                        })
                    }
                };
                first_hop_w.push(w);
            }
            // Equation (18).
            let response = first_hop_w[qx(q)] - tsum_i.saturating_mul(q) + c_k;
            worst = worst.max(response);
        }

        // Equation (19).
        Ok(worst + self.propagation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, paper_figure3_flow, voip_flow, GmfFlow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, FlowSet, Priority, Topology};

    /// A flow set on the paper topology where `extra` flows share host 0's
    /// access link with the Figure 3 video flow.
    fn setup(extra_on_same_host: usize) -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
        fs.add(video, route.clone(), Priority(6));
        for i in 0..extra_on_same_host {
            let voice = voip_flow(
                &format!("voice{i}"),
                VoiceCodec::G711,
                Time::from_millis(20.0),
                Time::from_millis(0.5),
            );
            fs.add(voice, route.clone(), Priority(7));
        }
        (t, fs)
    }

    #[test]
    fn isolated_flow_first_hop_is_transmission_plus_propagation() {
        let (t, fs) = setup(0);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let config = AnalysisConfig::paper();
        // With no other flow on the link, the bound for frame k is its own
        // transmission time plus propagation (the busy period may span the
        // whole cycle but each instance only waits for itself).
        for k in 0..9 {
            let d = ctx.demand(FlowId(0), gmf_net::NodeId(0), gmf_net::NodeId(4));
            let r = first_hop_response(&ctx, &jitters, &config, FlowId(0), k).unwrap();
            let link = t
                .link_between(gmf_net::NodeId(0), gmf_net::NodeId(4))
                .unwrap();
            assert!(
                r.response.approx_eq(d.c(k) + link.propagation),
                "frame {k}: expected isolated bound, got {} vs {}",
                r.response,
                d.c(k) + link.propagation
            );
            assert!(r.instances >= 1);
        }
    }

    #[test]
    fn interference_increases_the_bound() {
        let (t, fs0) = setup(0);
        let (_, fs2) = setup(2);
        let ctx0 = AnalysisContext::new(&t, &fs0).unwrap();
        let ctx2 = AnalysisContext::new(&t, &fs2).unwrap();
        let config = AnalysisConfig::paper();
        let r0 =
            first_hop_response(&ctx0, &JitterMap::initial(&fs0), &config, FlowId(0), 0).unwrap();
        let r2 =
            first_hop_response(&ctx2, &JitterMap::initial(&fs2), &config, FlowId(0), 0).unwrap();
        assert!(
            r2.response > r0.response,
            "two extra voice flows must increase the first-hop bound"
        );
    }

    #[test]
    fn bound_grows_with_interfering_jitter() {
        let (t, fs) = setup(1);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let config = AnalysisConfig::paper();
        let base = JitterMap::initial(&fs);
        let mut jittery = base.clone();
        // Pretend the voice flow has accumulated 5 ms of jitter on the link.
        jittery.set(
            FlowId(1),
            ResourceId::Link {
                from: gmf_net::NodeId(0),
                to: gmf_net::NodeId(4),
            },
            0,
            Time::from_millis(5.0),
            1,
        );
        let r_base = first_hop_response(&ctx, &base, &config, FlowId(0), 0).unwrap();
        let r_jittery = first_hop_response(&ctx, &jittery, &config, FlowId(0), 0).unwrap();
        assert!(r_jittery.response >= r_base.response);
    }

    #[test]
    fn blocking_refinement_is_at_least_as_conservative() {
        let (t, fs) = setup(3);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let paper = AnalysisConfig::paper();
        let conservative = AnalysisConfig::conservative();
        for k in 0..9 {
            let a = first_hop_response(&ctx, &jitters, &paper, FlowId(0), k).unwrap();
            let b = first_hop_response(&ctx, &jitters, &conservative, FlowId(0), k).unwrap();
            assert!(b.response >= a.response);
        }
    }

    #[test]
    fn overload_is_detected() {
        // Ten HD-like video flows through a 10 Mbit/s access link cannot fit.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        for i in 0..10 {
            let f = cbr_flow(
                &format!("bulk{i}"),
                150_000,
                Time::from_millis(100.0),
                Time::from_millis(100.0),
                Time::ZERO,
            );
            fs.add(f, route.clone(), Priority(3));
        }
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let err =
            first_hop_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0).unwrap_err();
        assert!(matches!(err, AnalysisError::Overload { utilization, .. } if utilization >= 1.0));
        assert!(err.is_unschedulable());
    }

    #[test]
    fn near_saturation_still_converges() {
        // A single flow using ~80% of the link converges and the busy period
        // spans several cycles.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        // 10 Mbit/s link; 95 kB every 100 ms ≈ 7.9 Mbit/s of wire traffic.
        let big = cbr_flow(
            "big",
            95_000,
            Time::from_millis(100.0),
            Time::from_millis(500.0),
            Time::from_millis(2.0),
        );
        let small = cbr_flow(
            "small",
            10_000,
            Time::from_millis(100.0),
            Time::from_millis(500.0),
            Time::from_millis(2.0),
        );
        fs.add(big, route.clone(), Priority(5));
        fs.add(small, route, Priority(5));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let r = first_hop_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(1), 0).unwrap();
        // The small flow has to wait behind the big one.
        let d_small = ctx.demand(FlowId(1), gmf_net::NodeId(0), gmf_net::NodeId(4));
        assert!(r.response > d_small.c(0));
        assert!(r.response < Time::from_secs(1.0));
    }

    #[test]
    fn unknown_flow_errors() {
        let (t, fs) = setup(0);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        assert!(
            first_hop_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(7), 0).is_err()
        );
    }

    /// With several identical sporadic flows and zero jitter, the paper's
    /// first-hop bound for a flow equals C (plus propagation) because
    /// `MX(0) = 0`; the refined configuration additionally charges one
    /// maximal frame of another flow.  This pins down the exact semantics of
    /// the refinement flag.
    #[test]
    fn zero_jitter_blocking_semantics() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        for i in 0..2 {
            let f: GmfFlow = cbr_flow(
                &format!("cbr{i}"),
                1_000,
                Time::from_millis(10.0),
                Time::from_millis(10.0),
                Time::ZERO,
            );
            fs.add(f, route.clone(), Priority(5));
        }
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let link = t
            .link_between(gmf_net::NodeId(0), gmf_net::NodeId(4))
            .unwrap();
        let d = ctx.demand(FlowId(0), gmf_net::NodeId(0), gmf_net::NodeId(4));

        let paper =
            first_hop_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0).unwrap();
        assert!(paper.response.approx_eq(d.c(0) + link.propagation));

        let refined = first_hop_response(
            &ctx,
            &jitters,
            &AnalysisConfig::conservative(),
            FlowId(0),
            0,
        )
        .unwrap();
        assert!(refined.response.approx_eq(d.c(0) * 2u64 + link.propagation));
    }
}
