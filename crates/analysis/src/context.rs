//! Shared state of an analysis run: cached per-link demands and the
//! generalized-jitter map.
//!
//! The response-time equations repeatedly evaluate the request-bound
//! functions of every flow on every link it traverses, so the per-link
//! [`LinkDemand`]s are computed once per `(flow, link)` pair and cached in
//! an [`AnalysisContext`].
//!
//! The *generalized-jitter map* holds `GJ_i^{k,resource}` — the jitter of
//! frame `k` of flow `i` when it reaches `resource` — for every resource of
//! every flow's route.  The map is what the holistic iteration (Section
//! "Putting it all together") updates between rounds:
//!
//! * initially, the jitter on a flow's *first link* is its specified source
//!   jitter and the jitter everywhere else is zero;
//! * after analysing a flow with the Figure 6 algorithm, the map holds the
//!   accumulated `JSUM` values of that flow at every resource;
//! * the process repeats until the map stops changing.

use crate::error::AnalysisError;
use gmf_model::{DemandTable, FlowId, GmfFlow, LinkDemand, Time};
use gmf_net::{FlowSet, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A resource along a flow's route, in the sense of holistic analysis: a
/// place where the flow can be queued and therefore accumulates response
/// time and jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceId {
    /// The prioritized output queue and transmission on the directed link
    /// `from → to` (also used for the source node's first link).
    Link {
        /// Transmitting node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
    },
    /// The ingress processing of a switch: from reception of the Ethernet
    /// frames at `node` to their enqueueing in the output priority queue.
    SwitchIngress {
        /// The switch doing the processing.
        node: NodeId,
    },
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Link { from, to } => write!(f, "link({},{})", from.0, to.0),
            ResourceId::SwitchIngress { node } => write!(f, "in({})", node.0),
        }
    }
}

/// `GJ_i^{k,resource}` for every flow, frame and resource.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JitterMap {
    values: BTreeMap<(FlowId, ResourceId), Vec<Time>>,
}

impl JitterMap {
    /// The initial map of the holistic iteration for `flows`: source jitter
    /// on each flow's first link, zero everywhere else (nothing stored).
    pub fn initial(flows: &FlowSet) -> Self {
        let mut map = JitterMap::default();
        for binding in flows.bindings() {
            map.set_initial(binding);
        }
        map
    }

    /// Set one flow's initial entries (its source jitter on its first
    /// link), replacing any stored entry at that resource.  This is how a
    /// warm-started admission trial seeds the candidate without building
    /// the whole initial map of the trial set.
    pub fn set_initial(&mut self, binding: &gmf_net::FlowBinding) {
        let first_hop = binding
            .route
            .hops()
            .next()
            // tidy-allow: unwrap invariant: routes have at least one hop
            .expect("routes have at least one hop");
        let resource = ResourceId::Link {
            from: first_hop.from,
            to: first_hop.to,
        };
        let jitters = binding.flow.frames().iter().map(|f| f.jitter).collect();
        self.values.insert((binding.id, resource), jitters);
    }

    /// Set the jitter of frame `k` of `flow` at `resource`.
    pub fn set(
        &mut self,
        flow: FlowId,
        resource: ResourceId,
        frame: usize,
        jitter: Time,
        n_frames: usize,
    ) {
        let entry = self
            .values
            .entry((flow, resource))
            .or_insert_with(|| vec![Time::ZERO; n_frames]);
        if entry.len() < n_frames {
            entry.resize(n_frames, Time::ZERO);
        }
        entry[frame] = jitter;
    }

    /// The jitter of frame `k` of `flow` at `resource` (zero if unknown).
    pub fn get(&self, flow: FlowId, resource: ResourceId, frame: usize) -> Time {
        self.values
            .get(&(flow, resource))
            .and_then(|v| v.get(frame).copied())
            .unwrap_or(Time::ZERO)
    }

    /// `extra_j(resource)`: the largest jitter of any frame of `flow` at
    /// `resource` (zero if the flow has no recorded jitter there).  This is
    /// the paper's `extra_j(N, i)` term.
    pub fn max_jitter(&self, flow: FlowId, resource: ResourceId) -> Time {
        self.values
            .get(&(flow, resource))
            .map(|v| v.iter().copied().fold(Time::ZERO, Time::max))
            .unwrap_or(Time::ZERO)
    }

    /// Walk `self` and `other` in one merged key-ordered pass, calling
    /// `visit` with each key's value pair (an empty slice stands in for a
    /// missing entry).  Stops early when `visit` returns `false`.
    ///
    /// Both maps are `BTreeMap`s, so their iterators are already sorted:
    /// the classic two-pointer merge visits every key of the union exactly
    /// once without materialising a key-union set (the previous
    /// implementation collected the full union into a fresh `BTreeSet` —
    /// twice per holistic round).
    fn merged_walk(&self, other: &JitterMap, mut visit: impl FnMut(&[Time], &[Time]) -> bool) {
        let mut a = self.values.iter().peekable();
        let mut b = other.values.iter().peekable();
        loop {
            const EMPTY: &[Time] = &[];
            let (va, vb): (&[Time], &[Time]) = match (a.peek(), b.peek()) {
                (Some(&(ka, va)), Some(&(kb, vb))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Less => {
                        a.next();
                        (va.as_slice(), EMPTY)
                    }
                    std::cmp::Ordering::Greater => {
                        b.next();
                        (EMPTY, vb.as_slice())
                    }
                    std::cmp::Ordering::Equal => {
                        a.next();
                        b.next();
                        (va.as_slice(), vb.as_slice())
                    }
                },
                (Some(&(_, va)), None) => {
                    a.next();
                    (va.as_slice(), EMPTY)
                }
                (None, Some(&(_, vb))) => {
                    b.next();
                    (EMPTY, vb.as_slice())
                }
                (None, None) => return,
            };
            if !visit(va, vb) {
                return;
            }
        }
    }

    /// `true` if every entry of `self` equals the corresponding entry of
    /// `other` within the convergence tolerance.  Entries missing from one
    /// side are treated as zero.
    pub fn approx_eq(&self, other: &JitterMap) -> bool {
        let mut equal = true;
        self.merged_walk(other, |a, b| {
            let len = a.len().max(b.len());
            for idx in 0..len {
                let va = a.get(idx).copied().unwrap_or(Time::ZERO);
                let vb = b.get(idx).copied().unwrap_or(Time::ZERO);
                if !va.approx_eq(vb) {
                    equal = false;
                    return false;
                }
            }
            true
        });
        equal
    }

    /// The largest absolute componentwise difference between `self` and
    /// `other` — the residual the holistic fixed-point engine records per
    /// round.  Entries missing from one side are treated as zero.
    pub fn max_abs_diff(&self, other: &JitterMap) -> Time {
        let mut worst = Time::ZERO;
        self.merged_walk(other, |a, b| {
            let len = a.len().max(b.len());
            for idx in 0..len {
                let va = a.get(idx).copied().unwrap_or(Time::ZERO);
                let vb = b.get(idx).copied().unwrap_or(Time::ZERO);
                let diff = if va >= vb { va - vb } else { vb - va };
                worst = worst.max(diff);
            }
            true
        });
        worst
    }

    /// Iterate over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(FlowId, ResourceId), &Vec<Time>)> {
        self.values.iter()
    }

    /// Drop every entry of `flow` (a departure: the flow no longer exists,
    /// so its jitters must not seed future warm starts).  A `BTreeMap`
    /// range scan — `(flow, ·)` keys are contiguous, so the cost is the
    /// flow's own entry count, not the map size (the admission plane calls
    /// this per touched flow against a network-wide cache).
    pub fn remove_flow(&mut self, flow: FlowId) {
        let lo = (
            flow,
            ResourceId::Link {
                from: NodeId(0),
                to: NodeId(0),
            },
        );
        let hi = (
            FlowId(flow.0 + 1),
            ResourceId::Link {
                from: NodeId(0),
                to: NodeId(0),
            },
        );
        let keys: Vec<(FlowId, ResourceId)> =
            self.values.range(lo..hi).map(|(&key, _)| key).collect();
        for key in keys {
            self.values.remove(&key);
        }
    }

    /// Insert a whole per-(flow, resource) frame vector, replacing any
    /// stored entry.  This is the dense engine's boundary exit
    /// (`DenseJitters::to_keyed`).
    pub(crate) fn insert_raw(&mut self, flow: FlowId, resource: ResourceId, values: Vec<Time>) {
        self.values.insert((flow, resource), values);
    }

    /// Copy every stored entry of `flow` into `target` (a `BTreeMap` range
    /// scan — `(flow, ·)` keys are contiguous).  The admission plane uses
    /// this to carve one shard's jitters out of the global warm cache and
    /// to fold a committed trial's jitters back in.
    pub(crate) fn copy_flow_into(&self, flow: FlowId, target: &mut JitterMap) {
        let lo = (
            flow,
            ResourceId::Link {
                from: NodeId(0),
                to: NodeId(0),
            },
        );
        let hi = (
            FlowId(flow.0 + 1),
            ResourceId::Link {
                from: NodeId(0),
                to: NodeId(0),
            },
        );
        for (&key, values) in self.values.range(lo..hi) {
            target.values.insert(key, values.clone());
        }
    }
}

/// Cached per-link demands, the dense-index plan and references to the
/// topology and flow set.
///
/// The context is read-only during a single holistic round; the jitter map
/// is threaded separately so that rounds are explicit.  Besides the keyed
/// demand cache of the public API, construction interns flows and
/// resources into dense indices and precomputes every flow's per-stage
/// interference tables (see [`crate::dense`]) — the engine's hot loops
/// never touch a tree map or rescan the flow set.
#[derive(Debug, Clone)]
pub struct AnalysisContext<'a> {
    topology: &'a Topology,
    flows: &'a FlowSet,
    /// Demand storage, indexed by the dense plan's demand ids.
    demands: Vec<LinkDemand>,
    /// Precompiled prefix-maximum tables, parallel to `demands` (same
    /// index space) — the only demand view the per-frame kernels touch.
    tables: Vec<DemandTable>,
    /// Keyed view of `demands` backing the public [`Self::demand`] API.
    demand_lookup: BTreeMap<(FlowId, NodeId, NodeId), u32>,
    /// The interner and interference tables.
    plan: crate::dense::DensePlan,
}

impl<'a> AnalysisContext<'a> {
    /// Build the context: pre-compute the demand of every flow on every
    /// link of its route, intern flows and resources, lay out the jitter
    /// arena and build the per-stage interference tables.
    pub fn new(topology: &'a Topology, flows: &'a FlowSet) -> Result<Self, AnalysisError> {
        let mut demands = Vec::new();
        let mut demand_lookup = BTreeMap::new();
        let plan =
            crate::dense::DensePlan::build(topology, flows, &mut demands, &mut demand_lookup)?;
        let tables = demands.iter().map(DemandTable::new).collect();
        Ok(AnalysisContext {
            topology,
            flows,
            demands,
            tables,
            demand_lookup,
            plan,
        })
    }

    /// The dense plan (interner, arena layout, interference tables).
    pub(crate) fn plan(&self) -> &crate::dense::DensePlan {
        &self.plan
    }

    /// A demand by its dense index (hot-loop form of [`Self::demand`]).
    #[inline]
    pub(crate) fn demand_by_index(&self, index: u32) -> &LinkDemand {
        &self.demands[crate::index::ux(index)]
    }

    /// The interned demand tables, parallel to the demand indices (the
    /// kernels index this slice directly).
    #[inline]
    pub(crate) fn tables(&self) -> &[DemandTable] {
        &self.tables
    }

    /// Aggregate table statistics for the `kernel/*` bench counters:
    /// `(number of tables, total stored window spans, plan term count)`.
    pub fn kernel_stats(&self) -> (u64, u64, u64) {
        let windows = self
            .tables
            .iter()
            .map(|t| u64::try_from(t.n_windows()).unwrap_or(u64::MAX))
            .sum();
        (
            u64::try_from(self.tables.len()).unwrap_or(u64::MAX),
            windows,
            u64::try_from(self.plan.terms.len()).unwrap_or(u64::MAX),
        )
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The flow set under analysis.
    pub fn flows(&self) -> &FlowSet {
        self.flows
    }

    /// The traffic specification of a flow.
    pub fn flow(&self, id: FlowId) -> Result<&GmfFlow, AnalysisError> {
        Ok(&self.flows.get(id)?.flow)
    }

    /// The cached demand of `flow` on the directed link `from → to`.
    ///
    /// The demand exists for every hop of every flow's route; asking for a
    /// (flow, link) pair the flow does not traverse is a programming error
    /// and panics.
    pub fn demand(&self, flow: FlowId, from: NodeId, to: NodeId) -> &LinkDemand {
        self.demand_lookup
            .get(&(flow, from, to))
            .map(|&index| &self.demands[crate::index::ux(index)])
            .unwrap_or_else(|| panic!("no cached demand for {flow} on link({},{})", from.0, to.0))
    }

    /// Sum of `CSUM/TSUM` over the given flows on the given link — the
    /// left-hand side of the schedulability conditions (20), (34) and (35).
    // tidy-allow: float utilization is a dimensionless ratio compared against 1.0, not a bound
    pub fn link_utilization(&self, flows: &[FlowId], from: NodeId, to: NodeId) -> f64 {
        flows
            .iter()
            .map(|&j| self.demand(j, from, to).utilization())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, paper_figure3_flow};
    use gmf_net::{paper_figure1, shortest_path, Priority};

    fn setup() -> (Topology, FlowSet, Vec<NodeId>) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        fs.add(video, route, Priority(6));
        let voice = cbr_flow(
            "voice",
            160,
            Time::from_millis(20.0),
            Time::from_millis(20.0),
            Time::ZERO,
        );
        let route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        fs.add(voice, route, Priority(7));
        let nodes = vec![
            net.hosts[0],
            net.hosts[1],
            net.switches[0],
            net.switches[2],
            net.hosts[3],
        ];
        (t, fs, nodes)
    }

    #[test]
    fn resource_id_display_and_ordering() {
        let a = ResourceId::Link {
            from: NodeId(0),
            to: NodeId(4),
        };
        let b = ResourceId::SwitchIngress { node: NodeId(4) };
        assert_eq!(a.to_string(), "link(0,4)");
        assert_eq!(b.to_string(), "in(4)");
        assert_ne!(a, b);
        // Ord is derived; just check it is usable as a map key.
        let mut m = BTreeMap::new();
        m.insert(a, 1);
        m.insert(b, 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn initial_jitter_map_has_source_jitter_on_first_link() {
        let (_, fs, n) = setup();
        let map = JitterMap::initial(&fs);
        let first_link = ResourceId::Link {
            from: n[0],
            to: n[2],
        };
        // The video flow has 1 ms jitter on every frame.
        assert_eq!(
            map.max_jitter(FlowId(0), first_link),
            Time::from_millis(1.0)
        );
        assert_eq!(map.get(FlowId(0), first_link, 3), Time::from_millis(1.0));
        // Downstream resources start at zero.
        let downstream = ResourceId::Link {
            from: n[2],
            to: n[3],
        };
        assert_eq!(map.max_jitter(FlowId(0), downstream), Time::ZERO);
        // The voice flow declared no jitter.
        let voice_first = ResourceId::Link {
            from: n[1],
            to: n[2],
        };
        assert_eq!(map.max_jitter(FlowId(1), voice_first), Time::ZERO);
    }

    #[test]
    fn jitter_map_set_get_and_compare() {
        let (_, fs, n) = setup();
        let mut map = JitterMap::initial(&fs);
        let resource = ResourceId::SwitchIngress { node: n[2] };
        map.set(FlowId(0), resource, 2, Time::from_millis(3.0), 9);
        assert_eq!(map.get(FlowId(0), resource, 2), Time::from_millis(3.0));
        assert_eq!(map.get(FlowId(0), resource, 1), Time::ZERO);
        assert_eq!(map.max_jitter(FlowId(0), resource), Time::from_millis(3.0));
        // Unknown entries read as zero.
        assert_eq!(map.get(FlowId(1), resource, 0), Time::ZERO);

        let map2 = map.clone();
        assert!(map.approx_eq(&map2));
        let mut map3 = map.clone();
        map3.set(FlowId(0), resource, 2, Time::from_millis(4.0), 9);
        assert!(!map.approx_eq(&map3));
        // A map with an extra all-zero entry is still approx-equal.
        let mut map4 = map.clone();
        map4.set(FlowId(1), resource, 0, Time::ZERO, 1);
        assert!(map.approx_eq(&map4));
        assert!(map.iter().count() >= 2);
    }

    #[test]
    fn remove_and_reseed_flow_entries() {
        let (_, fs, n) = setup();
        let mut map = JitterMap::initial(&fs);
        let resource = ResourceId::SwitchIngress { node: n[2] };
        map.set(FlowId(0), resource, 1, Time::from_millis(2.0), 9);

        // Removing a flow drops all of its entries and nothing else.
        let mut pruned = map.clone();
        pruned.remove_flow(FlowId(0));
        assert_eq!(pruned.get(FlowId(0), resource, 1), Time::ZERO);
        assert!(pruned.iter().all(|(&(f, _), _)| f != FlowId(0)));
        assert!(pruned.iter().any(|(&(f, _), _)| f == FlowId(1)));

        // Re-seeding one flow's initial entries matches the full initial
        // map restricted to that flow.
        let fresh = JitterMap::initial(&fs);
        let mut reseeded = JitterMap::default();
        reseeded.set_initial(fs.get(FlowId(1)).unwrap());
        for (&(flow, resource), values) in reseeded.iter() {
            assert_eq!(flow, FlowId(1));
            for (frame, &value) in values.iter().enumerate() {
                assert_eq!(value, fresh.get(flow, resource, frame));
            }
        }
    }

    #[test]
    fn context_caches_demands_for_every_hop() {
        let (t, fs, n) = setup();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        // Video flow route: host0 -> switch4 -> switch6 -> host3.
        let d = ctx.demand(FlowId(0), n[0], n[2]);
        assert_eq!(d.nsum(), 94);
        // The backbone link is faster, so the same flow's CSUM is smaller.
        let d_backbone = ctx.demand(FlowId(0), n[2], n[3]);
        assert!(d_backbone.csum() < d.csum());
        // Both flows share the final link towards host3.
        let shared: Vec<FlowId> = fs.flows_on_link(n[3], n[4]);
        assert_eq!(shared.len(), 2);
        let u = ctx.link_utilization(&shared, n[3], n[4]);
        assert!(u > 0.0 && u < 1.0);
        assert_eq!(ctx.flows().len(), 2);
        assert_eq!(ctx.flow(FlowId(0)).unwrap().n_frames(), 9);
        assert_eq!(ctx.topology().n_nodes(), t.n_nodes());
    }

    #[test]
    #[should_panic(expected = "no cached demand")]
    fn demand_for_untraversed_link_panics() {
        let (t, fs, n) = setup();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        // The video flow never transmits on the reverse access link.
        let _ = ctx.demand(FlowId(0), n[2], n[0]);
    }
}
