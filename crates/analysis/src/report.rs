//! Structured results of the end-to-end analysis.

use crate::context::ResourceId;
use crate::error::StageKind;
use crate::fixed_point::ConvergenceTrace;
use gmf_model::{FlowId, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The response-time bound contributed by one resource of a flow's route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopBound {
    /// The resource (link or switch-ingress stage).
    pub resource: ResourceId,
    /// Which of the three analyses produced the bound.
    pub stage: StageKind,
    /// The response-time bound on this resource.
    pub response: Time,
}

impl StageKind {
    /// Serde-friendly tag (StageKind itself lives in `error.rs` and is not
    /// serializable there to keep error types lean).
    fn as_str(self) -> &'static str {
        match self {
            StageKind::FirstHop => "first_hop",
            StageKind::SwitchIngress => "switch_ingress",
            StageKind::EgressLink => "egress_link",
        }
    }
}

impl Serialize for StageKind {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for StageKind {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        match s.as_str() {
            "first_hop" => Ok(StageKind::FirstHop),
            "switch_ingress" => Ok(StageKind::SwitchIngress),
            "egress_link" => Ok(StageKind::EgressLink),
            other => Err(serde::de::Error::custom(format!(
                "unknown stage kind {other}"
            ))),
        }
    }
}

/// End-to-end bound of one frame of one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameBound {
    /// The flow.
    pub flow: FlowId,
    /// The frame index within the flow's GMF cycle.
    pub frame: usize,
    /// The generalized jitter of the frame at the source (included in the
    /// bound, following Figure 6 which initialises `RSUM := GJ_i^k`).
    pub source_jitter: Time,
    /// The end-to-end response-time bound, from arrival at the source until
    /// reception of every Ethernet frame at the destination.
    pub bound: Time,
    /// The frame's relative deadline.
    pub deadline: Time,
    /// Per-resource breakdown of the bound, in route order.
    pub hops: Vec<HopBound>,
}

impl FrameBound {
    /// `true` if the bound does not exceed the deadline.
    pub fn meets_deadline(&self) -> bool {
        self.bound <= self.deadline
    }

    /// Slack (deadline − bound); negative when the deadline is missed.
    pub fn slack(&self) -> Time {
        self.deadline - self.bound
    }

    /// Bound tightness of an observation: `observed / bound`.
    ///
    /// A sound analysis keeps every observed response at or below the
    /// bound, so the ratio lies in `[0, 1]`; a value above `1` is a bound
    /// violation.  Values near `1` mean the bound is tight (the workload
    /// actually reaches it), small values mean slack — the conformance
    /// harness (E13) tracks this per frame to watch bound slack over time.
    /// Returns `None` for a degenerate zero bound.
    // tidy-allow: float tightness is a dimensionless telemetry ratio, not a bound
    pub fn tightness(&self, observed: Time) -> Option<f64> {
        if self.bound.is_zero() {
            return None;
        }
        Some(observed / self.bound)
    }

    /// `true` if `observed` does not exceed the bound, up to [`Time`]'s
    /// relative epsilon (the conformance harness's per-frame soundness
    /// check).  Simulated observations accumulate f64 release times, so a
    /// strict comparison would flag spurious ~1e-14-relative "violations"
    /// on observations that sit exactly on the bound.
    pub fn dominates(&self, observed: Time) -> bool {
        observed <= self.bound || observed.approx_eq(self.bound)
    }
}

/// All frame bounds of one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// The flow.
    pub flow: FlowId,
    /// The flow's name.
    pub name: String,
    /// Per-frame bounds (one entry per frame of the GMF cycle).
    pub frames: Vec<FrameBound>,
}

impl FlowReport {
    /// The largest end-to-end bound over all frames.
    pub fn worst_bound(&self) -> Option<Time> {
        self.frames.iter().map(|f| f.bound).max()
    }

    /// The smallest slack over all frames.
    pub fn worst_slack(&self) -> Option<Time> {
        self.frames.iter().map(|f| f.slack()).min()
    }

    /// `true` if every frame meets its deadline.
    pub fn meets_all_deadlines(&self) -> bool {
        self.frames.iter().all(|f| f.meets_deadline())
    }

    /// The bound of frame `k`, if the report covers it.
    pub fn frame_bound(&self, k: usize) -> Option<Time> {
        self.frames.get(k).map(|f| f.bound)
    }

    /// Bound tightness (`observed / bound`) of frame `k` for an observed
    /// response time; `None` if the report does not cover frame `k` (or
    /// its bound is degenerate zero).  See [`FrameBound::tightness`].
    // tidy-allow: float tightness is a dimensionless telemetry ratio, not a bound
    pub fn frame_tightness(&self, k: usize, observed: Time) -> Option<f64> {
        self.frames.get(k).and_then(|f| f.tightness(observed))
    }

    /// The largest tightness ratio over a set of per-frame observations
    /// (`(frame index, observed response)` pairs); `None` when no
    /// observation maps onto a frame of the report.
    pub fn worst_tightness(
        &self,
        observations: impl IntoIterator<Item = (usize, Time)>,
        // tidy-allow: float tightness is a dimensionless telemetry ratio, not a bound
    ) -> Option<f64> {
        observations
            .into_iter()
            .filter_map(|(k, observed)| self.frame_tightness(k, observed))
            .fold(None, |acc, ratio| {
                Some(acc.map_or(ratio, |a: f64| a.max(ratio))) // tidy-allow: float telemetry ratio max
            })
    }
}

/// The result of a holistic analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Per-flow results (may be partial if the analysis aborted because a
    /// resource was found to be overloaded).
    pub flows: Vec<FlowReport>,
    /// `true` if the holistic jitter iteration reached a fixed point.
    pub converged: bool,
    /// Number of holistic (outer) iterations performed.
    pub iterations: usize,
    /// `true` if the iteration converged and every frame of every flow
    /// meets its deadline.
    pub schedulable: bool,
    /// Why the flow set is not schedulable, when it is not.
    pub failure: Option<String>,
    /// Per-round residuals and step decisions of the fixed-point engine
    /// (one entry per outer iteration).
    pub trace: ConvergenceTrace,
}

impl AnalysisReport {
    /// Look up the report of a flow.
    pub fn flow(&self, id: FlowId) -> Option<&FlowReport> {
        self.flows.iter().find(|f| f.flow == id)
    }

    /// The largest end-to-end bound of any frame of any flow.
    pub fn worst_bound(&self) -> Option<Time> {
        self.flows.iter().filter_map(|f| f.worst_bound()).max()
    }

    /// Total number of (flow, frame) bounds contained in the report.
    pub fn n_frame_bounds(&self) -> usize {
        self.flows.iter().map(|f| f.frames.len()).sum()
    }

    /// Ids of the flows with at least one frame missing its deadline, in
    /// report (flow-id) order.  Empty both for schedulable sets and for
    /// analyses that aborted (overload / divergence) before bounding the
    /// offending flow.
    pub fn missed_flows(&self) -> Vec<FlowId> {
        self.flows
            .iter()
            .filter(|f| !f.meets_all_deadlines())
            .map(|f| f.flow)
            .collect()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedulable: {} (converged: {}, iterations: {})",
            self.schedulable, self.converged, self.iterations
        )?;
        if let Some(reason) = &self.failure {
            writeln!(f, "failure: {reason}")?;
        }
        for flow in &self.flows {
            let worst = flow
                .worst_bound()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string());
            let slack = flow
                .worst_slack()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string());
            writeln!(
                f,
                "  {:<24} worst bound {:<14} worst slack {:<14} deadlines {}",
                flow.name,
                worst,
                slack,
                if flow.meets_all_deadlines() {
                    "met"
                } else {
                    "MISSED"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_net::NodeId;

    fn frame(bound_ms: f64, deadline_ms: f64) -> FrameBound {
        FrameBound {
            flow: FlowId(0),
            frame: 0,
            source_jitter: Time::from_millis(1.0),
            bound: Time::from_millis(bound_ms),
            deadline: Time::from_millis(deadline_ms),
            hops: vec![HopBound {
                resource: ResourceId::Link {
                    from: NodeId(0),
                    to: NodeId(4),
                },
                stage: StageKind::FirstHop,
                response: Time::from_millis(bound_ms),
            }],
        }
    }

    #[test]
    fn frame_bound_deadline_and_slack() {
        let ok = frame(40.0, 100.0);
        assert!(ok.meets_deadline());
        assert!(ok.slack().approx_eq(Time::from_millis(60.0)));
        let miss = frame(120.0, 100.0);
        assert!(!miss.meets_deadline());
        assert!(miss.slack().is_negative());
    }

    #[test]
    fn tightness_is_observed_over_bound() {
        let f = frame(40.0, 100.0);
        assert!((f.tightness(Time::from_millis(36.0)).unwrap() - 0.9).abs() < 1e-9);
        assert!((f.tightness(Time::from_millis(40.0)).unwrap() - 1.0).abs() < 1e-9);
        // Above 1.0 is a violation; `dominates` draws the line.
        assert!(f.tightness(Time::from_millis(44.0)).unwrap() > 1.0);
        assert!(f.dominates(Time::from_millis(40.0)));
        assert!(!f.dominates(Time::from_millis(40.1)));
        // Accumulated-f64 noise on an exactly-tight observation is not a
        // violation…
        assert!(f.dominates(Time::from_millis(40.0 * (1.0 + 1e-14))));
        // …but anything beyond the relative epsilon is.
        assert!(!f.dominates(Time::from_millis(40.0 * (1.0 + 1e-9))));
        // A degenerate zero bound yields no ratio instead of infinity.
        let mut zero = frame(0.0, 100.0);
        zero.bound = Time::ZERO;
        assert_eq!(zero.tightness(Time::from_millis(1.0)), None);
    }

    #[test]
    fn flow_report_tightness_accessors() {
        let report = FlowReport {
            flow: FlowId(0),
            name: "video".into(),
            frames: vec![frame(40.0, 100.0), frame(80.0, 100.0)],
        };
        assert_eq!(report.frame_bound(1), Some(Time::from_millis(80.0)));
        assert_eq!(report.frame_bound(2), None);
        assert!((report.frame_tightness(0, Time::from_millis(20.0)).unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(report.frame_tightness(2, Time::from_millis(20.0)), None);
        // Worst over observations: frame 0 at 0.5, frame 1 at 0.75.
        let worst = report
            .worst_tightness([
                (0, Time::from_millis(20.0)),
                (1, Time::from_millis(60.0)),
                (7, Time::from_millis(999.0)), // out of range, ignored
            ])
            .unwrap();
        assert!((worst - 0.75).abs() < 1e-9);
        assert_eq!(report.worst_tightness([(9, Time::from_millis(1.0))]), None);
        assert_eq!(report.worst_tightness([]), None);
    }

    #[test]
    fn flow_report_aggregates() {
        let report = FlowReport {
            flow: FlowId(0),
            name: "video".into(),
            frames: vec![frame(40.0, 100.0), frame(80.0, 100.0), frame(10.0, 100.0)],
        };
        assert_eq!(report.worst_bound(), Some(Time::from_millis(80.0)));
        assert!(report
            .worst_slack()
            .unwrap()
            .approx_eq(Time::from_millis(20.0)));
        assert!(report.meets_all_deadlines());
        let empty = FlowReport {
            flow: FlowId(1),
            name: "x".into(),
            frames: vec![],
        };
        assert_eq!(empty.worst_bound(), None);
        assert!(empty.meets_all_deadlines());
    }

    #[test]
    fn analysis_report_lookup_and_display() {
        let report = AnalysisReport {
            flows: vec![FlowReport {
                flow: FlowId(0),
                name: "video".into(),
                frames: vec![frame(40.0, 100.0)],
            }],
            converged: true,
            iterations: 3,
            schedulable: true,
            failure: None,
            trace: ConvergenceTrace::default(),
        };
        assert!(report.flow(FlowId(0)).is_some());
        assert!(report.flow(FlowId(5)).is_none());
        assert_eq!(report.worst_bound(), Some(Time::from_millis(40.0)));
        assert_eq!(report.n_frame_bounds(), 1);
        assert!(report.missed_flows().is_empty());
        let mut missing = report.clone();
        missing.flows.push(FlowReport {
            flow: FlowId(3),
            name: "late".into(),
            frames: vec![frame(120.0, 100.0)],
        });
        assert_eq!(missing.missed_flows(), vec![FlowId(3)]);
        let text = report.to_string();
        assert!(text.contains("schedulable: true"));
        assert!(text.contains("video"));

        let failed = AnalysisReport {
            flows: vec![],
            converged: false,
            iterations: 100,
            schedulable: false,
            failure: Some("link(4,6) overloaded".into()),
            trace: ConvergenceTrace::default(),
        };
        assert!(failed.to_string().contains("overloaded"));
    }

    #[test]
    fn stage_kind_serde_roundtrip() {
        for kind in [
            StageKind::FirstHop,
            StageKind::SwitchIngress,
            StageKind::EgressLink,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: StageKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
        assert!(serde_json::from_str::<StageKind>("\"bogus\"").is_err());
    }
}
