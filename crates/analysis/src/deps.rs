//! The **partition layer** of the admission plane: the jitter-dependency
//! graph's weakly-connected components as first-class *shards*.
//!
//! The holistic fixed point couples the jitters of two flows only through
//! shared resources: every dependency edge `(B, r) → (A, r')` built by the
//! engine requires `B` and `A` to share `r`'s underlying directed link (or
//! `B = A`; see `fixed_point::dependency_edges`).  Consequently the weak
//! components of the per-resource dependency graph, projected onto flows,
//! are exactly the connected components of the *"flows share a directed
//! link"* graph — a flow-level union-find over the
//! [`gmf_net::FlowSet::link_index`] suffices, with no per-resource nodes
//! at all.  That is what [`gmf_net::FlowComponents`] maintains and what
//! this module names:
//!
//! * a **shard** is one weak component, identified by its smallest member
//!   flow id ([`ShardId`]) — stable across arrivals and departures that
//!   do not remove that member;
//! * a candidate whose route touches links used by several shards
//!   **merges** them on acceptance (merge-on-bridge); a rejected candidate
//!   leaves the partition untouched;
//! * a departure rebuilds only the departed flow's shard, splitting it if
//!   the flow was the bridge.
//!
//! The payoff is scoping: the fixed point of a shard's flows is
//! independent of every other shard, so an admission trial needs to
//! re-analyze only the candidate's shard, and trials on disjoint shards
//! can run concurrently with bit-identical results (the
//! `AdmissionController::request_batch` path).

use crate::context::ResourceId;
use gmf_model::FlowId;
use gmf_net::{FlowBinding, FlowComponents, FlowSet, Route};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The stable name of a shard: the smallest [`FlowId`] among its members.
///
/// A shard keeps its id as long as its smallest member stays admitted;
/// merging shards adopts the smallest of the merged ids.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub FlowId);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard({})", self.0 .0)
    }
}

/// The flow-level view of the jitter-dependency graph: which flows are
/// coupled (transitively, through shared directed links) and therefore
/// must be analyzed together.
///
/// Maintained incrementally by the admission controller; also buildable
/// from any [`FlowSet`] for offline inspection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencyGraph {
    components: FlowComponents,
}

impl DependencyGraph {
    /// Build the partition of `flows` from scratch.
    pub fn new(flows: &FlowSet) -> Self {
        DependencyGraph {
            components: FlowComponents::build(flows),
        }
    }

    /// Number of flows in the partition.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the partition contains no flows.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.components.n_components()
    }

    /// All shard ids, in ascending order.
    pub fn shards(&self) -> Vec<ShardId> {
        self.components
            .components()
            .into_iter()
            .map(|(smallest, _)| ShardId(smallest))
            .collect()
    }

    /// The shard containing `flow`, or `None` if the flow is unknown.
    pub fn shard_of(&self, flow: FlowId) -> Option<ShardId> {
        self.components.component_of(flow).map(ShardId)
    }

    /// The sorted member flows of `shard`, or `None` if no such shard
    /// exists.
    pub fn shard_flows(&self, shard: ShardId) -> Option<&[FlowId]> {
        self.components.members_of(shard.0)
    }

    /// The shards a candidate taking `route` would merge: every shard
    /// with a flow on one of the route's directed links (ascending,
    /// deduplicated).  Empty means the candidate opens a new shard.
    pub fn shards_touching_route(&self, route: &Route) -> Vec<ShardId> {
        self.components
            .components_touching_route(route)
            .into_iter()
            .map(ShardId)
            .collect()
    }

    /// Record an admitted flow, merging every shard its route touches
    /// (merge-on-bridge).
    pub fn insert(&mut self, binding: &FlowBinding) {
        self.components.insert(binding);
    }

    /// Record a departure, rebuilding (and possibly splitting) the
    /// departed flow's shard.  `remaining` is the flow set *after* the
    /// removal.
    pub fn remove(&mut self, binding: &FlowBinding, remaining: &FlowSet) {
        self.components.remove(binding, remaining);
    }
}

/// The flows whose bounds can change when `seed` joins or leaves `flows` —
/// the re-verification scope of one incremental admission decision (the
/// closure of `seed`'s resources under the jitter-dependency edges,
/// projected onto flows).
///
/// Always a subset of `seed`'s shard; usually a *strict* subset, because
/// dependency edges are directed while shards are weak components.
/// Returns `None` when a route is structurally broken (callers fall back
/// to re-verifying everything).
pub fn affected_flows(flows: &FlowSet, seed: FlowId) -> Option<BTreeSet<FlowId>> {
    crate::fixed_point::affected_flows(flows, seed)
}

/// `true` if the jitter-dependency graph of `flows` is acyclic.
///
/// Acyclicity makes the holistic fixed point *unique*, which is what
/// licenses warm starts and Anderson acceleration; the admission plane
/// falls back to cold Picard per trial when a shard is cyclic.
pub fn dependency_is_acyclic(flows: &FlowSet) -> bool {
    crate::fixed_point::dependency_is_acyclic(flows)
}

/// A node of the jitter-dependency graph, re-exported for documentation
/// and diagnostics: one flow's jitter at one resource of its route.
pub type DependencyNode = (FlowId, ResourceId);

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, Time};
    use gmf_net::{shortest_path, star, LinkProfile, Priority, SwitchConfig};

    fn probe_flow(name: &str) -> gmf_model::GmfFlow {
        cbr_flow(
            name,
            200,
            Time::from_millis(10.0),
            Time::from_millis(10.0),
            Time::ZERO,
        )
    }

    #[test]
    fn shards_track_merge_and_split() {
        let (t, _, hosts) = star(6, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let r01 = shortest_path(&t, hosts[0], hosts[1]).unwrap();
        let r23 = shortest_path(&t, hosts[2], hosts[3]).unwrap();
        let a = fs.add(probe_flow("a"), r01, Priority(3));
        let b = fs.add(probe_flow("b"), r23, Priority(3));

        let mut g = DependencyGraph::new(&fs);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.n_shards(), 2);
        assert_eq!(g.shards(), vec![ShardId(a), ShardId(b)]);
        assert_eq!(g.shard_of(a), Some(ShardId(a)));
        assert_eq!(g.shard_flows(ShardId(b)).unwrap(), &[b]);
        assert_eq!(g.shard_of(FlowId(99)), None);

        // A 0 → 3 candidate bridges both shards.
        let bridge_route = shortest_path(&t, hosts[0], hosts[3]).unwrap();
        assert_eq!(
            g.shards_touching_route(&bridge_route),
            vec![ShardId(a), ShardId(b)]
        );
        let c = fs.add(probe_flow("c"), bridge_route, Priority(3));
        g.insert(fs.get(c).unwrap());
        assert_eq!(g.n_shards(), 1);
        assert_eq!(g.shard_flows(ShardId(a)).unwrap(), &[a, b, c]);

        // Departure of the bridge splits the shard again.
        let binding = fs.remove(c).unwrap();
        g.remove(&binding, &fs);
        assert_eq!(g.shards(), vec![ShardId(a), ShardId(b)]);
        assert_eq!(g, DependencyGraph::new(&fs));
    }

    #[test]
    fn shard_id_display_and_affected_flows_stay_in_shard() {
        assert_eq!(ShardId(FlowId(7)).to_string(), "shard(7)");

        let (t, _, hosts) = star(4, LinkProfile::ethernet_100m(), SwitchConfig::paper());
        let mut fs = FlowSet::new();
        let a = fs.add(
            probe_flow("a"),
            shortest_path(&t, hosts[0], hosts[1]).unwrap(),
            Priority(3),
        );
        let b = fs.add(
            probe_flow("b"),
            shortest_path(&t, hosts[0], hosts[2]).unwrap(),
            Priority(3),
        );
        let c = fs.add(
            probe_flow("c"),
            shortest_path(&t, hosts[2], hosts[3]).unwrap(),
            Priority(3),
        );
        assert!(dependency_is_acyclic(&fs));
        let g = DependencyGraph::new(&fs);
        // a and b share (h0, sw); c is coupled to b only via b's *shard*
        // membership, not via any shared link — they are disjoint.
        assert_eq!(g.shard_of(a), g.shard_of(b));
        assert_ne!(g.shard_of(a), g.shard_of(c));
        let affected = affected_flows(&fs, a).unwrap();
        let shard: BTreeSet<FlowId> = g
            .shard_flows(g.shard_of(a).unwrap())
            .unwrap()
            .iter()
            .copied()
            .collect();
        assert!(affected.is_subset(&shard));
        assert!(affected.contains(&a));
    }
}
