//! Sanctioned integer index conversions (tidy rule `cast`).
//!
//! The lexical `cast` rule of `gmf-tidy` bans bare `as` numeric casts in
//! this crate because float->int `as` saturates silently and int->int `as`
//! truncates silently.  Every index conversion the dense analysis core
//! needs funnels through these four helpers instead: widenings are
//! lossless by construction, narrowings are debug-asserted in range (and
//! lossless on the 64-bit targets we support).

/// Widen a `u32` arena / pair / flow index into a `usize` slice index.
#[inline(always)]
pub(crate) fn ux(i: u32) -> usize {
    i as usize // tidy-allow: cast u32 -> usize widening is lossless on all supported targets
}

/// Narrow a `u64` instance counter `q` into a `usize` memo index.
#[inline(always)]
pub(crate) fn qx(q: u64) -> usize {
    debug_assert!(
        u64::try_from(usize::MAX).map_or(true, |max| q <= max),
        "instance index {q} exceeds usize range"
    );
    q as usize // tidy-allow: cast u64 -> usize narrowing is debug-asserted in range above
}

/// Widen a `usize` loop counter into a `u64` instance index `q`.
#[inline(always)]
pub(crate) fn qw(i: usize) -> u64 {
    i as u64 // tidy-allow: cast usize -> u64 widening is lossless on all supported targets
}

/// Narrow a `usize` enumeration index into a dense `u32` arena index.
#[inline(always)]
pub(crate) fn cx(i: usize) -> u32 {
    debug_assert!(
        u32::try_from(i).is_ok(),
        "dense index {i} exceeds the u32 arena range"
    );
    i as u32 // tidy-allow: cast usize -> u32 narrowing; arena layouts are u32-bounded by plan construction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(ux(7), 7usize);
        assert_eq!(qx(9), 9usize);
        assert_eq!(qw(11), 11u64);
        assert_eq!(cx(13), 13u32);
        assert_eq!(ux(cx(usize::from(u16::MAX))), usize::from(u16::MAX));
    }
}
