//! Error types of the analysis crate.

use gmf_model::{FlowId, Time};
use gmf_net::NetError;
use std::fmt;

/// A reference to the resource a response-time computation was running on,
/// used in error messages and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// The first hop: the source node's output queue and its link.
    FirstHop,
    /// Switch ingress: from reception at a switch to enqueueing in the
    /// priority queue.
    SwitchIngress,
    /// Switch egress: from the priority queue to reception at the next node.
    EgressLink,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageKind::FirstHop => write!(f, "first hop"),
            StageKind::SwitchIngress => write!(f, "switch ingress"),
            StageKind::EgressLink => write!(f, "egress link"),
        }
    }
}

/// Errors raised by the response-time analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The long-run demand on a resource is at least its capacity, so the
    /// busy period is unbounded (paper conditions (20) and (34)).
    Overload {
        /// Which kind of stage detected the overload.
        stage: StageKind,
        /// The flow being analysed.
        flow: FlowId,
        /// The offending utilization (≥ 1).
        utilization: f64, // tidy-allow: float utilization is a reported dimensionless ratio, not a bound
        /// Human-readable resource description (e.g. `link(4,6)`).
        resource: String,
    },
    /// A fixed-point iteration exceeded the configured horizon without
    /// converging.
    HorizonExceeded {
        /// Which kind of stage was being computed.
        stage: StageKind,
        /// The flow being analysed.
        flow: FlowId,
        /// The horizon that was exceeded.
        horizon: Time,
        /// Human-readable resource description.
        resource: String,
    },
    /// A fixed-point iteration did not converge within the configured
    /// iteration budget (numerically pathological input).
    NoConvergence {
        /// Which kind of stage was being computed.
        stage: StageKind,
        /// The flow being analysed.
        flow: FlowId,
        /// The iteration limit that was reached.
        iterations: usize,
    },
    /// The holistic jitter iteration did not reach a fixed point within the
    /// configured number of outer iterations.
    HolisticNoConvergence {
        /// The iteration limit that was reached.
        iterations: usize,
    },
    /// A demand or response-time computation overflowed the representable
    /// numeric range (e.g. a request-bound product saturated).  The true
    /// bound is beyond anything expressible, so the flow set is treated as
    /// unschedulable rather than silently under-approximated.
    NumericOverflow {
        /// Which kind of stage was being computed.
        stage: StageKind,
        /// The flow being analysed.
        flow: FlowId,
        /// Human-readable resource description.
        resource: String,
    },
    /// A pre-admitted flow set handed to the admission controller failed
    /// verification: one of its shards is not schedulable as given.
    PreloadUnschedulable {
        /// The smallest member flow id of the failing shard.
        shard: FlowId,
        /// The first per-flow failure message of that shard's analysis.
        failure: String,
    },
    /// [`crate::admission::AdmissionController::rebase`] was asked to swap
    /// in a topology on which a retained flow's cached analysis would be
    /// invalid (a node or link on its route changed parameters).  Release
    /// the flow before rebasing.
    RebaseDirty {
        /// The first retained flow whose route touches changed hardware.
        flow: FlowId,
        /// What changed, human-readable.
        detail: String,
    },
    /// An inconsistency between the flow set and the topology.
    Net(NetError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Overload {
                stage,
                flow,
                utilization,
                resource,
            } => write!(
                f,
                "{stage} analysis of {flow}: {resource} is overloaded (utilization {utilization:.3} >= 1)"
            ),
            AnalysisError::HorizonExceeded {
                stage,
                flow,
                horizon,
                resource,
            } => write!(
                f,
                "{stage} analysis of {flow}: busy period on {resource} exceeded the horizon {horizon}"
            ),
            AnalysisError::NoConvergence {
                stage,
                flow,
                iterations,
            } => write!(
                f,
                "{stage} analysis of {flow}: no convergence after {iterations} iterations"
            ),
            AnalysisError::HolisticNoConvergence { iterations } => write!(
                f,
                "holistic jitter iteration did not converge after {iterations} iterations"
            ),
            AnalysisError::NumericOverflow {
                stage,
                flow,
                resource,
            } => write!(
                f,
                "{stage} analysis of {flow}: bound computation on {resource} overflowed the \
                 representable range (treated as unschedulable)"
            ),
            AnalysisError::PreloadUnschedulable { shard, failure } => write!(
                f,
                "preloaded flow set is not schedulable: shard of flow {shard} fails ({failure})"
            ),
            AnalysisError::RebaseDirty { flow, detail } => write!(
                f,
                "cannot rebase: retained flow {flow} traverses changed hardware ({detail}); \
                 release it first"
            ),
            AnalysisError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<NetError> for AnalysisError {
    fn from(e: NetError) -> Self {
        AnalysisError::Net(e)
    }
}

impl AnalysisError {
    /// `true` if the error means "this flow set is not schedulable" (as
    /// opposed to a configuration/topology mistake).  The admission
    /// controller turns these into rejections instead of propagating them.
    pub fn is_unschedulable(&self) -> bool {
        matches!(
            self,
            AnalysisError::Overload { .. }
                | AnalysisError::HorizonExceeded { .. }
                | AnalysisError::HolisticNoConvergence { .. }
                | AnalysisError::NumericOverflow { .. }
                | AnalysisError::PreloadUnschedulable { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_net::NodeId;

    #[test]
    fn display_and_classification() {
        let e = AnalysisError::Overload {
            stage: StageKind::EgressLink,
            flow: FlowId(2),
            utilization: 1.25,
            resource: "link(4,6)".into(),
        };
        assert!(e.to_string().contains("link(4,6)"));
        assert!(e.to_string().contains("1.25"));
        assert!(e.is_unschedulable());

        let e = AnalysisError::HorizonExceeded {
            stage: StageKind::FirstHop,
            flow: FlowId(0),
            horizon: Time::from_secs(10.0),
            resource: "link(0,4)".into(),
        };
        assert!(e.to_string().contains("horizon"));
        assert!(e.is_unschedulable());

        let e = AnalysisError::NoConvergence {
            stage: StageKind::SwitchIngress,
            flow: FlowId(1),
            iterations: 5,
        };
        assert!(e.to_string().contains("5 iterations"));
        assert!(!e.is_unschedulable());

        let e = AnalysisError::HolisticNoConvergence { iterations: 10 };
        assert!(e.is_unschedulable());

        let e: AnalysisError = NetError::UnknownNode(NodeId(3)).into();
        assert!(!e.is_unschedulable());
        assert!(e.to_string().contains("network error"));

        let e = AnalysisError::RebaseDirty {
            flow: FlowId(4),
            detail: "node2 changed interface count".into(),
        };
        assert!(!e.is_unschedulable());
        assert!(e.to_string().contains("rebase"));
        assert!(e.to_string().contains("node2"));
    }

    #[test]
    fn stage_kind_display() {
        assert_eq!(StageKind::FirstHop.to_string(), "first hop");
        assert_eq!(StageKind::SwitchIngress.to_string(), "switch ingress");
        assert_eq!(StageKind::EgressLink.to_string(), "egress link");
    }
}
