//! # gmf-analysis
//!
//! The **schedulability analysis** of generalized multiframe traffic on
//! multihop networks of software-implemented Ethernet switches — the core
//! contribution of
//!
//! > B. Andersson, *"Schedulability Analysis of Generalized Multiframe
//! > Traffic on Multihop-Networks Comprising Software-Implemented
//! > Ethernet-Switches"*, 2008.
//!
//! The crate computes, for every frame of every flow, an upper bound on the
//! end-to-end response time (from arrival at the source until every
//! Ethernet frame of the packet has been received at the destination) and
//! compares it against the frame's deadline:
//!
//! * [`first_hop::first_hop_response`] — the source's work-conserving
//!   output queue and first link (paper eqs. 14–20);
//! * [`ingress::ingress_response`] — the switch routing task under
//!   round-robin stride scheduling (eqs. 21–27);
//! * [`egress::egress_response`] — the prioritized output queue, the send
//!   task and the link (eqs. 28–35);
//! * [`pipeline::analyze_frame`] — the end-to-end composition of Figure 6;
//! * [`holistic::analyze`] — the holistic jitter fixed-point over the whole
//!   flow set, yielding an [`AnalysisReport`];
//! * [`admission::AdmissionController`] — the admission controller built on
//!   top of it;
//! * [`resilience::SurvivabilityAnalysis`] — the single-failure
//!   survivability sweep built on the warm admission plane;
//! * [`baseline`] — the sporadic-collapse and utilization-only baselines
//!   used for comparison experiments;
//! * [`reference::analyze_reference`] — the deliberately simple keyed
//!   Picard oracle the dense-index production engine is property-tested
//!   against.
//!
//! ```
//! use gmf_analysis::prelude::*;
//! use gmf_model::prelude::*;
//! use gmf_net::prelude::*;
//!
//! // The paper's example: Figure 3 MPEG video over the Figure 2 route.
//! let (topology, net) = paper_figure1();
//! let mut flows = FlowSet::new();
//! let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
//! let route = shortest_path(&topology, net.hosts[0], net.hosts[3]).unwrap();
//! flows.add(video, route, Priority(6));
//!
//! let report = analyze(&topology, &flows, &AnalysisConfig::paper()).unwrap();
//! assert!(report.schedulable);
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod admission;
pub mod baseline;
pub mod busy_period;
pub mod config;
pub mod context;
pub(crate) mod dense;
pub mod deps;
pub mod egress;
pub mod error;
pub mod first_hop;
pub mod fixed_point;
pub mod holistic;
pub(crate) mod index;
pub mod ingress;
pub(crate) mod kernel;
pub mod pipeline;
pub mod reference;
pub mod report;
pub mod resilience;
pub mod stage;

pub use admission::{
    AdmissionController, AdmissionDecision, AdmissionMode, AdmissionRequest, AdmissionVictim,
    DecisionCost, PreloadStats,
};
pub use baseline::{
    analyze_sporadic_baseline, sporadic_collapse, utilization_check, UtilizationCheck,
};
pub use busy_period::{fixed_point, FixedPointOutcome};
pub use config::AnalysisConfig;
pub use context::{AnalysisContext, JitterMap, ResourceId};
pub use deps::{DependencyGraph, ShardId};
pub use egress::egress_response;
pub use error::{AnalysisError, StageKind};
pub use first_hop::first_hop_response;
pub use fixed_point::{
    iterate_from, ConvergenceTrace, FixedPointRun, FixedPointStrategy, RoundTrace,
    StepKind as FixedPointStepKind,
};
pub use holistic::analyze;
pub use ingress::ingress_response;
pub use pipeline::{analyze_flow, analyze_frame, hop_sum_matches, JitterAssignments};
pub use reference::analyze_reference;
pub use report::{AnalysisReport, FlowReport, FrameBound, HopBound};
pub use resilience::{
    divergence, single_failure_scenarios, ColdVerdict, FailureScenario, FailureVerdict,
    SurvivabilityAnalysis, SurvivabilityReport,
};
pub use stage::StageResult;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::admission::{
        AdmissionController, AdmissionDecision, AdmissionMode, AdmissionRequest, AdmissionVictim,
        DecisionCost,
    };
    pub use crate::baseline::{analyze_sporadic_baseline, sporadic_collapse, utilization_check};
    pub use crate::config::AnalysisConfig;
    pub use crate::context::{AnalysisContext, JitterMap, ResourceId};
    pub use crate::deps::{DependencyGraph, ShardId};
    pub use crate::fixed_point::{ConvergenceTrace, FixedPointStrategy};
    pub use crate::holistic::analyze;
    pub use crate::pipeline::{analyze_flow, analyze_frame};
    pub use crate::report::{AnalysisReport, FlowReport, FrameBound, HopBound};
    pub use crate::resilience::{
        single_failure_scenarios, FailureScenario, FailureVerdict, SurvivabilityAnalysis,
        SurvivabilityReport,
    };
}
