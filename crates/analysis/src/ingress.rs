//! Switch-ingress analysis: "From Reception to Enqueueing in Priority
//! Queue" (paper equations (21)–(27)).
//!
//! Inside a software switch, every input interface has a FIFO queue in its
//! network card and a dedicated *routing task* that dequeues one Ethernet
//! frame, looks up its output port and priority, and enqueues it into the
//! output priority queue.  All tasks (one routing task and one send task
//! per interface) share the switch CPU under non-preemptive round-robin
//! stride scheduling, so a routing task is served once every
//! `CIRC(N) = NINTERFACES(N) × (CROUTE + CSEND)`.
//!
//! The delay of frame `k` of flow `τ_i` from the reception of its Ethernet
//! frames at node `N` until they sit in the output priority queue is
//! therefore a multiple of `CIRC(N)`: every Ethernet frame that arrived on
//! the *same input interface* (i.e. from `prec(τ_i, N)`) and is served
//! before ours costs one service round.
//!
//! * busy period (eq. 22): `t = Σ_j NX_j(t + extra_j) · CIRC(N)` over the
//!   flows sharing the incoming link;
//! * queueing time of the `q`-th instance (eq. 24):
//!   `w(q) = q·CIRC(N) + Σ_{j≠i} NX_j(w(q) + extra_j) · CIRC(N)`;
//! * response time (eq. 25): `w(q) − q·TSUM_i + CIRC(N)`, maximised over
//!   `q < Q_i^k = ⌈t / TSUM_i⌉` (eq. 26–27).
//!
//! ### Deviations from the paper (documented in DESIGN.md §4)
//!
//! * Equation (21) seeds the busy period at 0; we seed at `CIRC(N)`.
//! * With [`crate::AnalysisConfig::refine_ingress_own_frames`] enabled, the
//!   analysed flow's own fragments are charged one service round each
//!   (`q·NSUM_i` rounds instead of `q`, and `NSUM_i^k` rounds instead of
//!   one for the instance under analysis), which is required for the bound
//!   to dominate the simulator when UDP packets fragment into several
//!   Ethernet frames.

use crate::busy_period::{fixed_point, FixedPointOutcome};
use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap, ResourceId};
use crate::error::{AnalysisError, StageKind};
use crate::index::qw;
use crate::kernel::KernelScratch;
use crate::stage::StageResult;
use gmf_model::{FlowId, Time};
use gmf_net::NodeId;

/// Compute the switch-ingress response-time bound of frame `frame` of
/// `flow` at switch `node`.
pub fn ingress_response(
    ctx: &AnalysisContext<'_>,
    jitters: &JitterMap,
    config: &AnalysisConfig,
    flow: FlowId,
    frame: usize,
    node: NodeId,
) -> Result<StageResult, AnalysisError> {
    let binding = ctx.flows().get(flow)?;
    let prec = binding.route.predecessor(node)?;
    let circ = ctx.topology().circ(node)?;
    let resource = ResourceId::SwitchIngress { node };
    let resource_name = resource.to_string();

    let d_i = ctx.demand(flow, prec, node);
    let tsum_i = d_i.tsum();

    // Flows sharing the incoming link (and therefore the input FIFO and the
    // same routing task).
    let sharing = ctx.flows().flows_on_link(prec, node);
    debug_assert!(sharing.contains(&flow));

    // Long-run demand on the routing task: NSUM_j service rounds per cycle.
    // Not stated as an equation in the paper, but the busy-period iteration
    // cannot converge if it reaches one.
    // tidy-allow: float utilization is a dimensionless ratio compared against 1.0, not a bound
    let utilization: f64 = sharing
        .iter()
        .map(|&j| {
            let d = ctx.demand(j, prec, node);
            // tidy-allow: float, cast round-count to ratio conversion for the overload check only
            d.nsum() as f64 * circ.as_secs() / d.tsum().as_secs()
        })
        .sum();
    if utilization >= 1.0 {
        return Err(AnalysisError::Overload {
            stage: StageKind::SwitchIngress,
            flow,
            utilization,
            resource: resource_name,
        });
    }

    // extra_j: accumulated jitter of flow j at reception on this node.
    let extras: Vec<(FlowId, Time)> = sharing
        .iter()
        .map(|&j| (j, jitters.max_jitter(j, resource)))
        .collect();

    // Busy period, equation (22).
    let busy_period = match fixed_point(
        circ,
        config.horizon,
        config.max_fixed_point_iterations,
        |t| {
            let mut rounds: u64 = 0;
            for (j, extra) in &extras {
                rounds = rounds.saturating_add(ctx.demand(*j, prec, node).nx(t + *extra));
            }
            circ.saturating_mul(rounds)
        },
    ) {
        FixedPointOutcome::Converged(t) => t,
        FixedPointOutcome::ExceededHorizon { .. } => {
            return Err(AnalysisError::HorizonExceeded {
                stage: StageKind::SwitchIngress,
                flow,
                horizon: config.horizon,
                resource: resource_name,
            })
        }
        FixedPointOutcome::IterationBudgetExhausted { .. } => {
            return Err(AnalysisError::NoConvergence {
                stage: StageKind::SwitchIngress,
                flow,
                iterations: config.max_fixed_point_iterations,
            })
        }
    };

    let instances = busy_period.div_ceil(tsum_i).max(1);

    // Service rounds charged to the analysed flow itself.
    let own_rounds_per_cycle: u64 = if config.refine_ingress_own_frames {
        d_i.nsum()
    } else {
        1
    };
    let own_rounds_final: u64 = if config.refine_ingress_own_frames {
        d_i.n_ethernet_frames(frame)
    } else {
        1
    };

    let mut worst = Time::ZERO;
    for q in 0..instances {
        let own = circ.saturating_mul(q.saturating_mul(own_rounds_per_cycle));
        let w = match fixed_point(
            own,
            config.horizon,
            config.max_fixed_point_iterations,
            |w| {
                let mut rounds: u64 = 0;
                for (j, extra) in &extras {
                    if *j == flow {
                        continue;
                    }
                    rounds = rounds.saturating_add(ctx.demand(*j, prec, node).nx(w + *extra));
                }
                own.saturating_add(circ.saturating_mul(rounds))
            },
        ) {
            FixedPointOutcome::Converged(w) => w,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::SwitchIngress,
                    flow,
                    horizon: config.horizon,
                    resource: resource_name,
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::SwitchIngress,
                    flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };
        // Equation (25).
        let response = w - tsum_i.saturating_mul(q) + circ.saturating_mul(own_rounds_final);
        worst = worst.max(response);
    }

    Ok(StageResult {
        response: worst,
        busy_period,
        instances,
    })
}

/// The dense per-round state of one flow's switch-ingress stage.
///
/// Every fallible or expensive part of equations (21)–(27) is
/// frame-independent: the overload check, the busy period (eq. 22, seeded
/// at `CIRC(N)`) and the queueing times `w(q)` (eq. 24).  They are solved
/// once per round here; [`IngressDense::response`] only maximises eq. (25)
/// over the precomputed `w(q)` with the frame's own service-round count —
/// the keyed path re-solved every recurrence for every frame of the cycle.
pub(crate) struct IngressDense {
    circ: Time,
    tsum_i: Time,
    own_demand: u32,
    refine_own_frames: bool,
    /// Range into the scratch `w` arena holding `w(q)` for `q < Q_i`
    /// (eq. 24), solved at build.
    w: std::ops::Range<usize>,
}

impl IngressDense {
    /// Run the overload check and solve the busy period and every `w(q)`
    /// against the current iterate, as table walks over the scratch
    /// arena's terms.
    pub(crate) fn build(
        ctx: &AnalysisContext<'_>,
        jitters: &crate::dense::DenseJitters,
        config: &AnalysisConfig,
        flow: gmf_model::FlowId,
        stage: &crate::dense::StagePlan,
        scratch: &mut KernelScratch,
    ) -> Result<Self, AnalysisError> {
        let circ = stage.circ;
        if stage.utilization >= 1.0 {
            return Err(AnalysisError::Overload {
                stage: StageKind::SwitchIngress,
                flow,
                utilization: stage.utilization,
                resource: stage.resource.to_string(),
            });
        }
        let d_i = ctx.demand_by_index(stage.own_demand);
        let tsum_i = d_i.tsum();
        let tables = ctx.tables();
        let plan = ctx.plan();

        // extra_j: accumulated jitter of flow j at reception on this node.
        let all_range = scratch.resolve_terms(plan.term_slice(&stage.all_terms), jitters, false);
        let other_range =
            scratch.resolve_terms(plan.term_slice(&stage.other_terms), jitters, false);
        let KernelScratch { terms, w, .. } = scratch;
        let all = &terms[all_range];
        let others = &terms[other_range];

        // Busy period, equation (22).
        let busy_period = match crate::kernel::solve_sum_nx(
            tables,
            all,
            circ,
            Time::ZERO,
            circ,
            config.horizon,
            config.max_fixed_point_iterations,
        ) {
            FixedPointOutcome::Converged(t) => t,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::SwitchIngress,
                    flow,
                    horizon: config.horizon,
                    resource: stage.resource.to_string(),
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::SwitchIngress,
                    flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };

        let instances = busy_period.div_ceil(tsum_i).max(1);
        let own_rounds_per_cycle: u64 = if config.refine_ingress_own_frames {
            d_i.nsum()
        } else {
            1
        };

        // Queueing time per instance, equation (24).
        let w_start = w.len();
        for q in 0..instances {
            let own = circ.saturating_mul(q.saturating_mul(own_rounds_per_cycle));
            let wq = match crate::kernel::solve_sum_nx(
                tables,
                others,
                circ,
                own,
                own,
                config.horizon,
                config.max_fixed_point_iterations,
            ) {
                FixedPointOutcome::Converged(w) => w,
                FixedPointOutcome::ExceededHorizon { .. } => {
                    return Err(AnalysisError::HorizonExceeded {
                        stage: StageKind::SwitchIngress,
                        flow,
                        horizon: config.horizon,
                        resource: stage.resource.to_string(),
                    })
                }
                FixedPointOutcome::IterationBudgetExhausted { .. } => {
                    return Err(AnalysisError::NoConvergence {
                        stage: StageKind::SwitchIngress,
                        flow,
                        iterations: config.max_fixed_point_iterations,
                    })
                }
            };
            w.push(wq);
        }

        Ok(IngressDense {
            circ,
            tsum_i,
            own_demand: stage.own_demand,
            refine_own_frames: config.refine_ingress_own_frames,
            w: w_start..w.len(),
        })
    }

    /// Equation (25)–(26): maximise the response over the precomputed
    /// instances, charging the frame's own service rounds.
    pub(crate) fn response(
        &self,
        ctx: &AnalysisContext<'_>,
        frame: usize,
        scratch: &KernelScratch,
    ) -> Time {
        let own_rounds_final: u64 = if self.refine_own_frames {
            ctx.demand_by_index(self.own_demand)
                .n_ethernet_frames(frame)
        } else {
            1
        };
        let mut worst = Time::ZERO;
        for (q, &wq) in scratch.w[self.w.clone()].iter().enumerate() {
            let response =
                wq - self.tsum_i.saturating_mul(qw(q)) + self.circ.saturating_mul(own_rounds_final);
            worst = worst.max(response);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, paper_figure3_flow, voip_flow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, FlowSet, Priority, Topology};

    /// The Figure 3 video flow from host 0 plus `n_voice` voice flows from
    /// host 1; both enter switch 4 but on *different* input interfaces, plus
    /// `n_same_link` voice flows that share host 0's access link with the
    /// video flow.
    fn setup(n_other_interface: usize, n_same_link: usize) -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
        fs.add(video, video_route.clone(), Priority(6));
        let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        for i in 0..n_other_interface {
            let voice = voip_flow(
                &format!("voiceB{i}"),
                VoiceCodec::G711,
                Time::from_millis(20.0),
                Time::from_millis(0.5),
            );
            fs.add(voice, voice_route.clone(), Priority(7));
        }
        for i in 0..n_same_link {
            let voice = voip_flow(
                &format!("voiceA{i}"),
                VoiceCodec::G711,
                Time::from_millis(20.0),
                Time::from_millis(0.5),
            );
            fs.add(voice, video_route.clone(), Priority(7));
        }
        (t, fs)
    }

    const SW4: NodeId = NodeId(4);

    #[test]
    fn isolated_flow_pays_one_service_round_per_paper() {
        let (t, fs) = setup(0, 0);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let circ = t.circ(SW4).unwrap();
        let r =
            ingress_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0, SW4).unwrap();
        // Paper semantics: the packet under analysis is charged exactly one
        // CIRC(N) once its own queueing (w = 0 in isolation) is done.
        assert!(r.response.approx_eq(circ));
        assert!(r.instances >= 1);
    }

    #[test]
    fn refined_ingress_charges_every_own_fragment() {
        let (t, fs) = setup(0, 0);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let circ = t.circ(SW4).unwrap();
        let cfg = AnalysisConfig::conservative();
        // Frame 0 of the paper flow fragments into 30 Ethernet frames.
        let r = ingress_response(&ctx, &jitters, &cfg, FlowId(0), 0, SW4).unwrap();
        assert!(r.response.approx_eq(circ * 30u64));
        // Frame 1 (a B frame) fragments into 6.
        let r = ingress_response(&ctx, &jitters, &cfg, FlowId(0), 1, SW4).unwrap();
        assert!(r.response.approx_eq(circ * 6u64));
    }

    #[test]
    fn flows_on_other_interfaces_do_not_interfere() {
        // The paper's eq. (22) only counts flows sharing the incoming link:
        // the routing task of *our* interface is delayed a fixed CIRC per
        // round regardless of what the other interfaces carry.
        let (t, fs_alone) = setup(0, 0);
        let (_, fs_other) = setup(4, 0);
        let ctx_a = AnalysisContext::new(&t, &fs_alone).unwrap();
        let ctx_b = AnalysisContext::new(&t, &fs_other).unwrap();
        let cfg = AnalysisConfig::paper();
        let ra = ingress_response(
            &ctx_a,
            &JitterMap::initial(&fs_alone),
            &cfg,
            FlowId(0),
            0,
            SW4,
        )
        .unwrap();
        let rb = ingress_response(
            &ctx_b,
            &JitterMap::initial(&fs_other),
            &cfg,
            FlowId(0),
            0,
            SW4,
        )
        .unwrap();
        assert!(ra.response.approx_eq(rb.response));
    }

    #[test]
    fn flows_on_same_link_do_interfere_once_they_carry_jitter() {
        let (t, fs_alone) = setup(0, 0);
        let (_, fs_shared) = setup(0, 3);
        let ctx_a = AnalysisContext::new(&t, &fs_alone).unwrap();
        let ctx_b = AnalysisContext::new(&t, &fs_shared).unwrap();
        let cfg = AnalysisConfig::paper();
        let ra = ingress_response(
            &ctx_a,
            &JitterMap::initial(&fs_alone),
            &cfg,
            FlowId(0),
            0,
            SW4,
        )
        .unwrap();
        // In the very first holistic round the interfering flows have no
        // accumulated jitter at the ingress resource yet, so the bound is
        // identical to the isolated one (NX over a zero window is zero).
        let rb0 = ingress_response(
            &ctx_b,
            &JitterMap::initial(&fs_shared),
            &cfg,
            FlowId(0),
            0,
            SW4,
        )
        .unwrap();
        assert!(rb0.response.approx_eq(ra.response));
        // Once the holistic iteration has propagated jitter to the ingress
        // resource (here injected by hand: 1 ms for every voice flow), each
        // voice packet that can arrive in the window costs one CIRC round.
        let mut jitters = JitterMap::initial(&fs_shared);
        for voice in 1..=3 {
            jitters.set(
                FlowId(voice),
                ResourceId::SwitchIngress { node: SW4 },
                0,
                Time::from_millis(1.0),
                1,
            );
        }
        let rb = ingress_response(&ctx_b, &jitters, &cfg, FlowId(0), 0, SW4).unwrap();
        let circ = t.circ(SW4).unwrap();
        assert!(rb.response > ra.response);
        assert!(rb.response >= ra.response + circ * 3u64);
    }

    #[test]
    fn ingress_errors_for_nodes_off_the_route() {
        let (t, fs) = setup(0, 0);
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        // Switch 5 is not on the video flow's route.
        assert!(ingress_response(
            &ctx,
            &jitters,
            &AnalysisConfig::paper(),
            FlowId(0),
            0,
            NodeId(5)
        )
        .is_err());
        // The source host is on the route but has no predecessor.
        assert!(ingress_response(
            &ctx,
            &jitters,
            &AnalysisConfig::paper(),
            FlowId(0),
            0,
            NodeId(0)
        )
        .is_err());
    }

    #[test]
    fn overload_detected_when_circ_cannot_keep_up() {
        // A flow of tiny packets every 10 µs on a gigabit link: each packet
        // needs a 14.8 µs service round, so the routing task cannot keep up.
        let (t, net) = paper_figure1();
        // Rebuild with gigabit access links so the wire itself is not the
        // bottleneck.
        let cfgnet = gmf_net::PaperNetworkConfig {
            access: gmf_net::LinkProfile::ethernet_1g(),
            backbone: gmf_net::LinkProfile::ethernet_1g(),
            ..Default::default()
        };
        let (t2, net2) = gmf_net::paper_figure1_with(cfgnet);
        drop((t, net));
        let mut fs = FlowSet::new();
        let route = shortest_path(&t2, net2.hosts[0], net2.hosts[3]).unwrap();
        let dense = cbr_flow(
            "dense",
            60,
            Time::from_micros(10.0),
            Time::from_millis(1.0),
            Time::ZERO,
        );
        fs.add(dense, route, Priority(7));
        let ctx = AnalysisContext::new(&t2, &fs).unwrap();
        let err = ingress_response(
            &ctx,
            &JitterMap::initial(&fs),
            &AnalysisConfig::paper(),
            FlowId(0),
            0,
            NodeId(4),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::Overload { .. }));
    }
}
