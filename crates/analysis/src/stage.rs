//! Common result type of the three per-resource response-time analyses.

use gmf_model::Time;
use serde::{Deserialize, Serialize};

/// The outcome of analysing one frame of one flow on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageResult {
    /// The response-time upper bound on this resource, including the frame's
    /// own transmission/processing and (for link stages) the propagation
    /// delay.
    pub response: Time,
    /// The length of the busy period explored (`t_i^k` of the paper).
    pub busy_period: Time,
    /// The number of instances `Q_i^k` of the frame examined inside the
    /// busy period.
    pub instances: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_result_is_plain_data() {
        let r = StageResult {
            response: Time::from_millis(2.0),
            busy_period: Time::from_millis(5.0),
            instances: 3,
        };
        let r2 = r;
        assert_eq!(r, r2);
        assert_eq!(r.instances, 3);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("busy_period"));
    }
}
