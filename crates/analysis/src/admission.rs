//! Admission control built on top of the holistic analysis.
//!
//! The paper's closing argument is that the holistic analysis "forms an
//! admission controller": a network operator keeps the set of already
//! accepted flows, and a new flow is accepted only if the holistic analysis
//! of *accepted ∪ {candidate}* shows every frame of every flow (old and
//! new) still meeting its deadline.  [`AdmissionController`] implements
//! exactly that protocol — plus flow departures ([`AdmissionController::release`])
//! and a **sharded, warm-started incremental engine** that makes the
//! per-request cost depend on the candidate's dependency closure rather
//! than on how many flows are admitted network-wide.
//!
//! # The sharded admission plane
//!
//! The jitter fixed point couples two flows only through shared directed
//! links, so the accepted set partitions into [`crate::deps`] *shards*
//! (weakly-connected components of the jitter-dependency graph) whose
//! analyses are completely independent.  The controller maintains that
//! partition incrementally and the batched entry point
//! ([`AdmissionController::request_batch`]) exploits it:
//!
//! 1. requests are grouped into **lanes** — two requests share a lane iff
//!    their routes touch a common shard or directed link — and lanes run
//!    **concurrently** via `gmf-par` (deterministically: the lane
//!    assignment and every result are pure functions of the inputs, never
//!    of scheduling);
//! 2. each trial analyses only the candidate's shard (the union of the
//!    shards its route touches), **warm-started** from the per-shard
//!    slice of the cached converged [`JitterMap`] with re-verification
//!    scoped by `affected_flows` — flows outside the closure keep their
//!    cached [`FlowReport`] verbatim;
//! 3. a lane seeds its warm state **once** from the shared cache and
//!    rolls it forward across its requests, amortising cache extraction
//!    over every candidate targeting the same shard;
//! 4. the engine **falls back to a cold per-shard restart** whenever the
//!    shard's dependency graph is cyclic (warm seeds could latch onto a
//!    non-least fixed point) or the warm run fails to converge — so every
//!    decision, bound, failure string and victim attribution is
//!    byte-identical to a global cold analysis of the same trial set,
//!    restricted to the candidate's shard (disjoint shards cannot
//!    influence each other's bounds).
//!
//! In [`AdmissionMode::Warm`] a decision's report therefore covers the
//! **candidate's shard**, not the whole accepted set; in
//! [`AdmissionMode::Cold`] every trial re-runs the global fixed point
//! from scratch and reports on every flow (the reference behaviour).
//!
//! Departures keep the cache warm too: [`AdmissionController::release`]
//! drops the departed flow's jitters and invalidates only the cached
//! reports of flows within the departed flow's shard that its departure
//! can influence; everything else stays frozen.

use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap};
use crate::deps::{DependencyGraph, ShardId};
use crate::error::AnalysisError;
use crate::fixed_point::{
    acyclic_affected_flows, affected_flows, iterate, iterate_scoped, ConvergenceTrace,
    FixedPointRun, Scope,
};
use crate::report::{AnalysisReport, FlowReport};
use gmf_model::{EncapsulationConfig, FlowId, GmfFlow};
use gmf_net::{FlowBinding, FlowSet, NodeId, Priority, Route, Topology};
use gmf_par::{par_map_weighted, Threads};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the controller analyses each trial set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionMode {
    /// Re-run the holistic fixed point cold over the *whole* trial set on
    /// every request (the reference behaviour; O(accepted) per-flow
    /// analyses per round, every round).  Decision reports cover every
    /// flow of the trial set.
    Cold,
    /// Analyse only the candidate's shard, warm-started from the cached
    /// converged jitter map; decisions, bounds and failure attribution
    /// are byte-identical to [`AdmissionMode::Cold`], but reports cover
    /// the candidate's shard only.
    #[default]
    Warm,
}

impl std::fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionMode::Cold => write!(f, "cold"),
            AdmissionMode::Warm => write!(f, "warm"),
        }
    }
}

/// What (or rather whom) a rejection protects, derived from the trial
/// report's deadline misses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionVictim {
    /// Only the candidate itself misses its deadline; the accepted flows
    /// are unharmed by it.
    Candidate,
    /// The candidate meets its own deadlines but would make these
    /// already-accepted flows miss theirs.
    Existing {
        /// The accepted flows that would miss deadlines, in id order.
        flows: Vec<FlowId>,
    },
    /// Both the candidate and these already-accepted flows would miss
    /// deadlines.
    Both {
        /// The accepted flows that would miss deadlines, in id order.
        flows: Vec<FlowId>,
    },
}

/// What one admission decision cost, summed over every analysis run behind
/// it (the warm trial plus a cold fallback rerun, when one happened).
///
/// One accounting gap, accepted for simplicity: a warm attempt that dies
/// with a *hard error* (possible only from a stale post-departure seed)
/// surfaces no counters, so its partial work is not included — the rare
/// error path under-reports, never the common ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCost {
    /// Total holistic rounds.
    pub rounds: usize,
    /// Total per-flow pipeline analyses (≈ rounds × flows re-verified per
    /// round) — the metric that shrinks when warm starts and dependency
    /// scoping kick in.
    pub flow_analyses: usize,
    /// `true` if the final report came from the warm-started,
    /// dependency-scoped path (false: cold mode, cyclic dependency graph,
    /// empty cache, or a cold fallback rerun).
    pub warm: bool,
    /// The shard the trial analysed: the smallest flow id of the trial
    /// set (in [`AdmissionMode::Cold`], the whole trial set counts as one
    /// shard).
    pub shard: ShardId,
    /// How many flows that shard held, candidate included — the size of
    /// the set the trial had to re-verify at most.
    pub shard_flows: usize,
}

/// One admission candidate for [`AdmissionController::request_batch`]:
/// the flow, its pre-specified route and 802.1p priority, plus an
/// optional packetization override (builder style).
///
/// ```
/// use gmf_analysis::AdmissionRequest;
/// use gmf_model::{voip_flow, Time, VoiceCodec};
/// use gmf_net::{paper_figure1, shortest_path, Priority};
///
/// let (topology, net) = paper_figure1();
/// let route = shortest_path(&topology, net.hosts[1], net.hosts[3]).unwrap();
/// let flow = voip_flow("call", VoiceCodec::G711, Time::from_millis(20.0), Time::ZERO);
/// let request = AdmissionRequest::new(flow, route, Priority(7));
/// assert_eq!(request.priority(), Priority(7));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionRequest {
    flow: GmfFlow,
    route: Route,
    priority: Priority,
    encapsulation: EncapsulationConfig,
}

impl AdmissionRequest {
    /// A request with the default (plain UDP) packetization.
    pub fn new(flow: GmfFlow, route: Route, priority: Priority) -> Self {
        AdmissionRequest {
            flow,
            route,
            priority,
            encapsulation: EncapsulationConfig::paper(),
        }
    }

    /// Override the packetization configuration.
    pub fn with_encapsulation(mut self, encapsulation: EncapsulationConfig) -> Self {
        self.encapsulation = encapsulation;
        self
    }

    /// The traffic specification.
    pub fn flow(&self) -> &GmfFlow {
        &self.flow
    }

    /// The pre-specified route.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The 802.1p priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The packetization configuration.
    pub fn encapsulation(&self) -> EncapsulationConfig {
        self.encapsulation
    }

    /// Bind the request to a concrete flow id.
    fn into_binding(self, id: FlowId) -> FlowBinding {
        FlowBinding {
            id,
            flow: self.flow,
            route: self.route,
            priority: self.priority,
            encapsulation: self.encapsulation,
        }
    }
}

/// The verdict of an admission request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// The flow was admitted; it now has the given id in the accepted set.
    Accepted {
        /// Identifier of the admitted flow within the controller's flow set.
        id: FlowId,
        /// The analysis report of the trial: the candidate's shard in
        /// [`AdmissionMode::Warm`], the whole accepted set (including the
        /// new flow) in [`AdmissionMode::Cold`].
        report: AnalysisReport,
        /// What the decision cost.
        cost: DecisionCost,
    },
    /// The flow was rejected; the accepted set is unchanged.
    Rejected {
        /// The id the candidate carried in the trial set — the key of its
        /// [`FlowReport`] inside `report`.  The id is *not* registered in
        /// the accepted set and is never handed out again: every request
        /// consumes one id, accepted or not, so a batch's ids are known
        /// up front.
        id: FlowId,
        /// Why the flow was rejected.
        reason: String,
        /// Who misses deadlines in the trial, when the analysis got far
        /// enough to attribute the failure (`None` for aborts such as
        /// overload or divergence, where `reason` carries the detail).
        victim: Option<AdmissionVictim>,
        /// The analysis report of the trial (shard-scoped in
        /// [`AdmissionMode::Warm`], global in [`AdmissionMode::Cold`]).
        report: AnalysisReport,
        /// What the decision cost.
        cost: DecisionCost,
    },
}

impl AdmissionDecision {
    /// `true` if the flow was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AdmissionDecision::Accepted { .. })
    }

    /// The candidate's flow id in the analysed trial set (registered in
    /// the accepted set only if the decision is an acceptance).
    pub fn id(&self) -> FlowId {
        match self {
            AdmissionDecision::Accepted { id, .. } => *id,
            AdmissionDecision::Rejected { id, .. } => *id,
        }
    }

    /// The report of the analysed (trial) flow set.
    pub fn report(&self) -> &AnalysisReport {
        match self {
            AdmissionDecision::Accepted { report, .. } => report,
            AdmissionDecision::Rejected { report, .. } => report,
        }
    }

    /// The candidate's per-frame bounds inside the trial report, when the
    /// analysis got far enough to produce them.
    pub fn candidate_report(&self) -> Option<&FlowReport> {
        self.report().flow(self.id())
    }

    /// What the decision cost across every analysis run behind it.
    pub fn cost(&self) -> DecisionCost {
        match self {
            AdmissionDecision::Accepted { cost, .. } => *cost,
            AdmissionDecision::Rejected { cost, .. } => *cost,
        }
    }

    /// How many holistic rounds the analyses behind this decision took —
    /// the per-request cost an operator dashboard would track.
    pub fn iterations(&self) -> usize {
        self.cost().rounds
    }

    /// The per-round convergence trace of the trial analysis that produced
    /// the final report.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.report().trace
    }
}

/// Derive the structured victim of a rejection from the trial report.
fn victim_of(report: &AnalysisReport, candidate: FlowId) -> Option<AdmissionVictim> {
    let missed = report.missed_flows();
    let candidate_misses = missed.contains(&candidate);
    let existing: Vec<FlowId> = missed.into_iter().filter(|&f| f != candidate).collect();
    match (candidate_misses, existing.is_empty()) {
        (true, true) => Some(AdmissionVictim::Candidate),
        (true, false) => Some(AdmissionVictim::Both { flows: existing }),
        (false, false) => Some(AdmissionVictim::Existing { flows: existing }),
        (false, true) => None,
    }
}

/// What verifying a pre-admitted flow set cost
/// ([`AdmissionController::with_accepted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreloadStats {
    /// Number of shards the preloaded set partitions into.
    pub shards: usize,
    /// Flow count of the largest shard.
    pub largest_shard: usize,
    /// Total holistic rounds across all per-shard verifications.
    pub rounds: usize,
    /// Total per-flow pipeline analyses across all shards.
    pub flow_analyses: usize,
}

/// The converged state of the accepted set, kept between requests by the
/// warm engine.
///
/// Per-flow invariant: a flow with a cached report always also has its
/// converged jitter entries (`reports ⊆ jitter-bearing flows`) — a frozen
/// report is only sound when the interference inputs it was computed from
/// are in the seed.  The reverse direction may break after departures:
/// jitters can outlive their report (stale-from-above seeds are still
/// valid on acyclic shards; the cold fallback covers spurious aborts).
#[derive(Debug, Clone, Default)]
struct WarmCache {
    /// The converged jitter iterate of the last verified analysis of each
    /// shard.
    jitters: JitterMap,
    /// Converged per-flow reports that are known fresh, shared with the
    /// scoped engine rounds (which carry them by `Arc` instead of cloning
    /// them once per round).  Flows missing here (their reports were
    /// invalidated by a departure) are always re-verified on the next
    /// trial.
    reports: BTreeMap<FlowId, Arc<FlowReport>>,
}

/// The conflict-footprint tokens of one batched request: two requests
/// sharing any token must run in the same lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LaneToken {
    /// The request's route touches this existing shard.
    Shard(ShardId),
    /// The request's route transmits on this directed link (couples two
    /// candidates even when no accepted flow uses the link yet).
    Link(NodeId, NodeId),
}

/// One lane of a batched request: the request indices it processes (in
/// submission order) and the accepted flows its shards span.
#[derive(Debug)]
struct LaneInput {
    indices: Vec<usize>,
    members: BTreeSet<FlowId>,
}

/// What one lane produced: per-request decisions, the bindings it
/// accepted, its rolled-forward warm state and the first hard error (the
/// lane stops there).
struct LaneOutput {
    decisions: Vec<(usize, AdmissionDecision)>,
    commits: Vec<(usize, FlowBinding)>,
    jitters: JitterMap,
    reports: BTreeMap<FlowId, Arc<FlowReport>>,
    /// Every flow the merged-back cache slice covers: the lane's starting
    /// members plus its accepted candidates.
    touched: BTreeSet<FlowId>,
    error: Option<(usize, AnalysisError)>,
}

/// An admission controller for one operator-managed network.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    topology: Topology,
    accepted: FlowSet,
    config: AnalysisConfig,
    mode: AdmissionMode,
    cache: Option<WarmCache>,
    /// The shard partition of `accepted`, maintained incrementally under
    /// every accept and release (in both modes — releases scope their
    /// invalidation with it).
    partition: DependencyGraph,
}

impl AdmissionController {
    /// Create a controller with no accepted flows, using the incremental
    /// warm engine ([`AdmissionMode::Warm`]).
    pub fn new(topology: Topology, config: AnalysisConfig) -> Self {
        AdmissionController {
            topology,
            accepted: FlowSet::new(),
            config,
            mode: AdmissionMode::default(),
            cache: None,
            partition: DependencyGraph::default(),
        }
    }

    /// Create a controller over an already-admitted flow set (an operator
    /// restoring state), verifying it shard by shard — concurrently, with
    /// `config.threads` workers — and seeding the warm cache from the
    /// per-shard converged analyses.
    ///
    /// Fails with [`AnalysisError::PreloadUnschedulable`] (naming the
    /// first failing shard in shard order) if any shard is not
    /// schedulable as given, and with the underlying error for
    /// structural problems (invalid routes, unknown nodes).
    pub fn with_accepted(
        topology: Topology,
        accepted: FlowSet,
        config: AnalysisConfig,
    ) -> Result<(Self, PreloadStats), AnalysisError> {
        accepted
            .validate_against(&topology)
            .map_err(AnalysisError::Net)?;
        let partition = DependencyGraph::new(&accepted);
        let shard_sets: Vec<(ShardId, FlowSet)> = partition
            .shards()
            .into_iter()
            .map(|shard| {
                let members = partition
                    .shard_flows(shard)
                    // tidy-allow: unwrap invariant: ids come from partition.shards()
                    .expect("shard id comes from the partition");
                (shard, accepted.subset(members.iter().copied()))
            })
            .collect();
        // Shards verify concurrently; the per-shard engine then runs
        // single-threaded (reports are thread-count invariant, so this
        // only shapes performance, never results).
        let inner = if config.threads > 1 && shard_sets.len() > 1 {
            config.with_threads(1)
        } else {
            config
        };
        let runs = par_map_weighted(
            Threads::new(config.threads),
            &shard_sets,
            |(_, set)| u64::try_from(set.len()).unwrap_or(u64::MAX),
            |_, (shard, set)| -> Result<FixedPointRun, AnalysisError> {
                let ctx = AnalysisContext::new(&topology, set)?;
                let run = iterate(&ctx, &inner)?;
                if run.report.schedulable {
                    Ok(run)
                } else {
                    Err(AnalysisError::PreloadUnschedulable {
                        shard: shard.0,
                        failure: run
                            .report
                            .failure
                            .clone()
                            .unwrap_or_else(|| "deadline miss".to_string()),
                    })
                }
            },
        );
        let mut stats = PreloadStats {
            shards: shard_sets.len(),
            largest_shard: shard_sets.iter().map(|(_, s)| s.len()).max().unwrap_or(0),
            rounds: 0,
            flow_analyses: 0,
        };
        let mut cache = WarmCache::default();
        for run in runs {
            let run = run?;
            stats.rounds += run.report.iterations;
            stats.flow_analyses += run.flow_analyses;
            if let Some(jitters) = run.jitters {
                for (&(flow, resource), values) in jitters.iter() {
                    cache.jitters.insert_raw(flow, resource, values.clone());
                }
            }
            for flow in run.report.flows {
                cache.reports.insert(flow.flow, Arc::new(flow));
            }
        }
        Ok((
            AdmissionController {
                topology,
                accepted,
                config,
                mode: AdmissionMode::Warm,
                cache: Some(cache),
                partition,
            },
            stats,
        ))
    }

    /// Override the trial-analysis mode (cold global restarts vs
    /// incremental shard-scoped warm starts); decisions are
    /// byte-identical either way, but warm reports cover the candidate's
    /// shard only.
    pub fn with_mode(mut self, mode: AdmissionMode) -> Self {
        self.mode = mode;
        if mode == AdmissionMode::Cold {
            self.cache = None;
        }
        self
    }

    /// The trial-analysis mode in use.
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// The analysis configuration the controller runs trials with.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The currently accepted flow set.
    pub fn accepted(&self) -> &FlowSet {
        &self.accepted
    }

    /// The shard partition of the accepted set (one entry per
    /// weakly-connected component of the jitter-dependency graph).
    pub fn partition(&self) -> &DependencyGraph {
        &self.partition
    }

    /// The network the controller manages.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of accepted flows.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Ask to admit `flow` on `route` at `priority` with the default (plain
    /// UDP) packetization.
    #[deprecated(note = "use `request_batch` with an `AdmissionRequest`")]
    pub fn request(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
    ) -> Result<AdmissionDecision, AnalysisError> {
        self.one_request(AdmissionRequest::new(flow, route, priority))
    }

    /// Ask to admit every flow of `requests` in order, stopping at the
    /// first structural error.  Rejections do not stop the batch (each
    /// later trial simply runs against the set accepted so far).
    #[deprecated(note = "use `request_batch` with `AdmissionRequest`s")]
    pub fn request_all(
        &mut self,
        requests: impl IntoIterator<Item = (GmfFlow, Route, Priority)>,
    ) -> Result<Vec<AdmissionDecision>, AnalysisError> {
        requests
            .into_iter()
            .map(|(flow, route, priority)| {
                self.one_request(AdmissionRequest::new(flow, route, priority))
            })
            .collect()
    }

    /// Ask to admit `flow` with an explicit packetization configuration.
    #[deprecated(note = "use `request_batch` with \
                         `AdmissionRequest::with_encapsulation`")]
    pub fn request_with_encapsulation(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
        encapsulation: EncapsulationConfig,
    ) -> Result<AdmissionDecision, AnalysisError> {
        self.one_request(
            AdmissionRequest::new(flow, route, priority).with_encapsulation(encapsulation),
        )
    }

    /// A one-element batch: the body behind the deprecated single-request
    /// shims.
    fn one_request(
        &mut self,
        request: AdmissionRequest,
    ) -> Result<AdmissionDecision, AnalysisError> {
        let mut decisions = self.request_batch([request])?;
        // tidy-allow: unwrap invariant: a one-element batch yields one decision
        Ok(decisions.pop().expect("one decision per request"))
    }

    /// Ask to admit a batch of candidates, returning one decision per
    /// request in submission order.
    ///
    /// The batch is equivalent to submitting the requests one at a time
    /// in order: each trial runs against the accepted set plus every
    /// *earlier accepted* request of the same batch.  Requests whose
    /// routes touch disjoint shards (and share no directed link) cannot
    /// influence each other, so the controller runs them concurrently —
    /// grouped into lanes with `config.threads` workers in
    /// [`AdmissionMode::Warm`] — with byte-identical decisions at any
    /// thread count.
    ///
    /// Every request consumes exactly one flow id, accepted or rejected:
    /// request `i` of a batch is analysed (and, on acceptance,
    /// registered) under id `base + i`, so callers can correlate
    /// decisions before the batch returns.
    ///
    /// # Errors
    ///
    /// All routes are validated up front; an invalid route fails the
    /// whole batch before any id is consumed or any trial runs.  A hard
    /// analysis error (not a rejection — those are decisions) at request
    /// `i` commits the acceptances of requests `0..i`, drops the warm
    /// cache and returns the error; decisions of the earlier requests
    /// are discarded with it.
    pub fn request_batch(
        &mut self,
        requests: impl IntoIterator<Item = AdmissionRequest>,
    ) -> Result<Vec<AdmissionDecision>, AnalysisError> {
        let requests: Vec<AdmissionRequest> = requests.into_iter().collect();
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // Validate every route against the topology up front so
        // structural errors surface as errors, not rejections — and
        // before any flow id is consumed.
        for request in &requests {
            Route::new(&self.topology, request.route.nodes().to_vec())
                .map_err(AnalysisError::Net)?;
        }
        let base = self.accepted.reserve_ids(requests.len());
        let bindings: Vec<FlowBinding> = requests
            .into_iter()
            .enumerate()
            .map(|(i, request)| request.into_binding(FlowId(base.0 + i)))
            .collect();
        match self.mode {
            AdmissionMode::Cold => self.batch_cold(bindings),
            AdmissionMode::Warm => self.batch_warm(bindings),
        }
    }

    /// The cold batch path: sequential global trials, exactly the seed
    /// behaviour.
    fn batch_cold(
        &mut self,
        bindings: Vec<FlowBinding>,
    ) -> Result<Vec<AdmissionDecision>, AnalysisError> {
        let mut decisions = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let mut trial = self.accepted.clone();
            trial.insert(binding.clone()).map_err(AnalysisError::Net)?;
            let ctx = AnalysisContext::new(&self.topology, &trial)?;
            let run = iterate(&ctx, &self.config)?;
            drop(ctx);
            let cost = DecisionCost {
                rounds: run.report.iterations,
                flow_analyses: run.flow_analyses,
                warm: false,
                shard: ShardId(trial.bindings()[0].id),
                shard_flows: trial.len(),
            };
            let decision = build_decision(binding.id, run.report, cost);
            if decision.is_accepted() {
                self.partition.insert(&binding);
                self.accepted = trial;
            }
            decisions.push(decision);
        }
        Ok(decisions)
    }

    /// The warm batch path: shard-scoped lanes running concurrently.
    fn batch_warm(
        &mut self,
        bindings: Vec<FlowBinding>,
    ) -> Result<Vec<AdmissionDecision>, AnalysisError> {
        let n = bindings.len();
        // Group the requests into lanes with a union-find over request
        // indices: two requests conflict iff they touch a common accepted
        // shard or share a directed link.
        let touched_shards: Vec<Vec<ShardId>> = bindings
            .iter()
            .map(|b| self.partition.shards_touching_route(&b.route))
            .collect();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        let mut token_owner: BTreeMap<LaneToken, usize> = BTreeMap::new();
        for (i, binding) in bindings.iter().enumerate() {
            let tokens = binding
                .route
                .hops()
                .map(|hop| LaneToken::Link(hop.from, hop.to))
                .chain(touched_shards[i].iter().map(|&s| LaneToken::Shard(s)));
            for token in tokens {
                match token_owner.entry(token) {
                    std::collections::btree_map::Entry::Occupied(owner) => {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, *owner.get()));
                        // Either root works; pick the smaller index so the
                        // result is independent of token order.
                        parent[a.max(b)] = a.min(b);
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(i);
        }
        let lanes: Vec<LaneInput> = groups
            .into_values()
            .map(|indices| {
                let mut members = BTreeSet::new();
                for &i in &indices {
                    for &shard in &touched_shards[i] {
                        members.extend(
                            self.partition
                                .shard_flows(shard)
                                // tidy-allow: unwrap invariant: shard ids come from shards_touching_route
                                .expect("touched shard exists")
                                .iter()
                                .copied(),
                        );
                    }
                }
                LaneInput { indices, members }
            })
            .collect();
        // `groups` is keyed by the union-find root, which is each lane's
        // smallest index — so `lanes` is already ordered by first request.

        // Lanes run concurrently; inside a lane the engine then runs
        // single-threaded (its reports are thread-count invariant, so
        // this only shapes performance, never results).
        let inner = if self.config.threads > 1 && lanes.len() > 1 {
            self.config.with_threads(1)
        } else {
            self.config
        };
        let outputs: Vec<LaneOutput> = {
            let ctl: &AdmissionController = &*self;
            par_map_weighted(
                Threads::new(ctl.config.threads),
                &lanes,
                |lane| u64::try_from(lane.members.len() + lane.indices.len()).unwrap_or(u64::MAX),
                |_, lane| ctl.run_lane(lane, &bindings, &inner),
            )
        };

        // Merge, in request order.  On a hard error at request `e`, keep
        // the acceptances before `e` (the sequential-equivalent state)
        // and drop the cache.
        let cutoff = outputs
            .iter()
            .filter_map(|o| o.error.as_ref().map(|&(i, _)| i))
            .min()
            .unwrap_or(n);
        let mut commits: Vec<&(usize, FlowBinding)> =
            outputs.iter().flat_map(|o| &o.commits).collect();
        commits.sort_by_key(|&&(i, _)| i);
        for &(i, ref binding) in commits {
            if i >= cutoff {
                continue;
            }
            self.accepted
                .insert(binding.clone())
                // tidy-allow: unwrap invariant: batch ids are reserved and unique
                .expect("batch ids are reserved and unique");
            self.partition.insert(binding);
        }
        if let Some((_, error)) = outputs
            .iter()
            .filter_map(|o| o.error.clone())
            .min_by_key(|e| e.0)
        {
            self.cache = None;
            return Err(error);
        }

        // No errors: fold every lane's rolled-forward warm state back
        // into the shared cache (lanes are disjoint, so slices never
        // overlap) and assemble the decisions in submission order.
        let mut cache = self.cache.take().unwrap_or_default();
        let mut decisions: Vec<Option<AdmissionDecision>> = (0..n).map(|_| None).collect();
        for output in outputs {
            for flow in &output.touched {
                cache.jitters.remove_flow(*flow);
                cache.reports.remove(flow);
            }
            for (&(flow, resource), values) in output.jitters.iter() {
                cache.jitters.insert_raw(flow, resource, values.clone());
            }
            cache.reports.extend(output.reports);
            for (index, decision) in output.decisions {
                decisions[index] = Some(decision);
            }
        }
        self.cache = Some(cache);
        Ok(decisions
            .into_iter()
            // tidy-allow: unwrap invariant: error-free lanes decide every request
            .map(|d| d.expect("error-free lanes decide every request"))
            .collect())
    }

    /// Process one lane: its requests in submission order, against a
    /// lane-local accepted subset, partition and warm-cache slice that
    /// roll forward across the lane's acceptances.
    fn run_lane(
        &self,
        lane: &LaneInput,
        bindings: &[FlowBinding],
        config: &AnalysisConfig,
    ) -> LaneOutput {
        let mut lane_set = self.accepted.subset(lane.members.iter().copied());
        let mut lane_partition = DependencyGraph::new(&lane_set);
        // Seed the lane's warm state once from the shared cache; every
        // request of the lane then reuses (and, on acceptance, advances)
        // this slice — the amortised warm-cache seeding.
        let mut lane_jitters = JitterMap::default();
        let mut lane_reports: BTreeMap<FlowId, Arc<FlowReport>> = BTreeMap::new();
        if let Some(cache) = &self.cache {
            for &flow in &lane.members {
                cache.jitters.copy_flow_into(flow, &mut lane_jitters);
                if let Some(report) = cache.reports.get(&flow) {
                    lane_reports.insert(flow, Arc::clone(report));
                }
            }
        }
        let mut out = LaneOutput {
            decisions: Vec::with_capacity(lane.indices.len()),
            commits: Vec::new(),
            jitters: JitterMap::default(),
            reports: BTreeMap::new(),
            touched: lane.members.clone(),
            error: None,
        };
        for &index in &lane.indices {
            let binding = bindings[index].clone();
            // The candidate's trial set: the union of the shards its
            // route touches (within the lane's rolled-forward state),
            // plus the candidate itself.
            let touched = lane_partition.shards_touching_route(&binding.route);
            let mut trial = lane_set.subset(touched.iter().flat_map(|&shard| {
                lane_partition
                    .shard_flows(shard)
                    // tidy-allow: unwrap invariant: shard ids come from shards_touching_route
                    .expect("touched shard exists")
                    .iter()
                    .copied()
            }));
            if let Err(e) = trial.insert(binding.clone()) {
                out.error = Some((index, AnalysisError::Net(e)));
                break;
            }
            let ctx = match AnalysisContext::new(&self.topology, &trial) {
                Ok(ctx) => ctx,
                Err(e) => {
                    out.error = Some((index, e));
                    break;
                }
            };

            // Warm attempt: seed from the lane's jitter slice, restricted
            // to the trial's members.  An empty seed means the shard has
            // no cached state at all — go straight to the cold path.
            let mut seed = JitterMap::default();
            for flow in trial.ids().filter(|&f| f != binding.id) {
                lane_jitters.copy_flow_into(flow, &mut seed);
            }
            let mut cost = DecisionCost {
                rounds: 0,
                flow_analyses: 0,
                warm: false,
                shard: ShardId(trial.bindings()[0].id),
                shard_flows: trial.len(),
            };
            let mut run: Option<FixedPointRun> = None;
            if seed.iter().next().is_some() {
                match warm_shard_trial(&ctx, config, &trial, binding.id, seed, &lane_reports) {
                    Ok(Some(warm)) => {
                        cost.rounds += warm.report.iterations;
                        cost.flow_analyses += warm.flow_analyses;
                        if warm.report.converged {
                            cost.warm = true;
                            run = Some(warm);
                        }
                    }
                    Ok(None) => {}
                    // A seed above the fixed point (stale after
                    // departures) can turn jitter-dependent inner
                    // iterations into hard errors a cold run never hits.
                    // The verdict must not depend on the seed, so restart
                    // cold — structural errors reproduce identically
                    // there.
                    Err(_) => {}
                }
            }
            let run = match run {
                Some(run) => run,
                None => match iterate(&ctx, config) {
                    Ok(cold) => {
                        cost.rounds += cold.report.iterations;
                        cost.flow_analyses += cold.flow_analyses;
                        cold
                    }
                    Err(e) => {
                        out.error = Some((index, e));
                        break;
                    }
                },
            };
            drop(ctx);

            let FixedPointRun {
                report, jitters, ..
            } = run;
            if report.schedulable {
                // Roll the lane state forward: register the candidate and
                // refresh the warm slice of every trial flow from the
                // converged run.
                for flow in trial.ids() {
                    lane_jitters.remove_flow(flow);
                }
                match jitters {
                    Some(jitters) => {
                        for (&(flow, resource), values) in jitters.iter() {
                            lane_jitters.insert_raw(flow, resource, values.clone());
                        }
                        for flow in &report.flows {
                            lane_reports.insert(flow.flow, Arc::new(flow.clone()));
                        }
                    }
                    // No converged map handed back (cannot happen for a
                    // schedulable report, but stay safe): drop the lane's
                    // warm state rather than risk a stale slice.
                    None => {
                        lane_jitters = JitterMap::default();
                        lane_reports.clear();
                    }
                }
                lane_partition.insert(&binding);
                lane_set
                    .insert(binding.clone())
                    // tidy-allow: unwrap invariant: batch ids are reserved and unique
                    .expect("batch ids are reserved and unique");
                out.touched.insert(binding.id);
                out.commits.push((index, binding.clone()));
            }
            out.decisions
                .push((index, build_decision(binding.id, report, cost)));
        }
        out.jitters = lane_jitters;
        out.reports = lane_reports;
        out
    }

    /// Release (tear down) an accepted flow — the departure half of the
    /// admission protocol.  Returns the removed binding.
    ///
    /// The warm cache survives the departure: only the cached reports of
    /// flows the departed flow could influence are invalidated (they are
    /// re-verified on the next request); everything else stays frozen.
    /// The invalidation set is computed within the departing flow's shard
    /// — flows outside it cannot be influenced — so a release costs
    /// O(shard), not O(accepted).
    pub fn release(&mut self, id: FlowId) -> Result<FlowBinding, AnalysisError> {
        // Compute the invalidation set on the *pre-removal* shard: the
        // departed flow's interference edges still exist there.
        let affected = if self.cache.is_some() && self.accepted.contains(id) {
            self.partition
                .shard_of(id)
                .and_then(|shard| self.partition.shard_flows(shard))
                .map(|members| self.accepted.subset(members.iter().copied()))
                .and_then(|shard_set| affected_flows(&shard_set, id))
        } else {
            None
        };
        let binding = self.accepted.remove(id).map_err(AnalysisError::Net)?;
        self.partition.remove(&binding, &self.accepted);
        if let Some(cache) = self.cache.as_mut() {
            match affected {
                Some(affected) => {
                    cache.jitters.remove_flow(id);
                    for flow in affected {
                        cache.reports.remove(&flow);
                    }
                }
                // No dependency information: drop the whole cache and let
                // the next request restart cold.
                None => self.cache = None,
            }
        }
        Ok(binding)
    }

    /// Release several accepted flows at once — the multi-flow stranding
    /// path of the survivability sweep, where one failed cable tears down
    /// every flow routed over it.
    ///
    /// Equivalent to calling [`AdmissionController::release`] on the ids
    /// one at a time in order, except the warm cache is invalidated
    /// *once*, with the union of the per-flow invalidation sets.  The
    /// union is computed on the pre-removal partition — a superset of
    /// what the sequential releases would invalidate step by step, and
    /// invalidating more only costs re-verification, never soundness.
    ///
    /// The batch is atomic: every id must name a distinct accepted flow,
    /// or the whole call fails with [`gmf_net::NetError::UnknownFlow`]
    /// before anything is removed.  Returns the removed bindings in the
    /// order given.
    pub fn release_batch(&mut self, ids: &[FlowId]) -> Result<Vec<FlowBinding>, AnalysisError> {
        let mut seen = BTreeSet::new();
        for &id in ids {
            if !self.accepted.contains(id) || !seen.insert(id) {
                return Err(AnalysisError::Net(gmf_net::NetError::UnknownFlow(id.0)));
            }
        }
        // Compute the invalidation union on the *pre-removal* shards: the
        // departing flows' interference edges still exist there.
        let affected: Option<BTreeSet<FlowId>> = if self.cache.is_some() {
            let mut union = BTreeSet::new();
            let mut complete = true;
            for &id in ids {
                let closure = self
                    .partition
                    .shard_of(id)
                    .and_then(|shard| self.partition.shard_flows(shard))
                    .map(|members| self.accepted.subset(members.iter().copied()))
                    .and_then(|shard_set| affected_flows(&shard_set, id));
                match closure {
                    Some(closure) => union.extend(closure),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            complete.then_some(union)
        } else {
            None
        };
        let mut bindings = Vec::with_capacity(ids.len());
        for &id in ids {
            let binding = self.accepted.remove(id).map_err(AnalysisError::Net)?;
            self.partition.remove(&binding, &self.accepted);
            bindings.push(binding);
        }
        if self.cache.is_some() {
            match affected {
                Some(affected) => {
                    // tidy-allow: unwrap invariant: checked is_some above
                    let cache = self.cache.as_mut().expect("cache checked above");
                    for &id in ids {
                        cache.jitters.remove_flow(id);
                    }
                    for flow in affected {
                        cache.reports.remove(&flow);
                    }
                }
                // No dependency information for some departing flow: drop
                // the whole cache and let the next request restart cold.
                None => self.cache = None,
            }
        }
        Ok(bindings)
    }

    /// Swap the managed topology for a new one *without* invalidating the
    /// warm cache — the survivability sweep's bridge from the pristine
    /// network to a survivor network.
    ///
    /// Sound only when every **retained** flow's analysis inputs are
    /// unchanged between the two topologies, which this method verifies
    /// flow by flow: the route must re-validate on the new topology, and
    /// every node (kind, switch configuration, interface count) and every
    /// traversed link (speed, propagation) must carry identical
    /// parameters.  Any violation fails with
    /// [`AnalysisError::RebaseDirty`] and leaves the controller untouched
    /// — release the affected flows first, then rebase, then re-admit
    /// them over the new topology.
    pub fn rebase(&mut self, topology: Topology) -> Result<(), AnalysisError> {
        for binding in self.accepted.bindings() {
            Route::new(&topology, binding.route.nodes().to_vec()).map_err(|e| {
                AnalysisError::RebaseDirty {
                    flow: binding.id,
                    detail: format!("route no longer valid: {e}"),
                }
            })?;
            for &node in binding.route.nodes() {
                let old = self.topology.node(node).map_err(AnalysisError::Net)?;
                let new = topology.node(node).map_err(AnalysisError::Net)?;
                if old.kind != new.kind {
                    return Err(AnalysisError::RebaseDirty {
                        flow: binding.id,
                        detail: format!("{node} changed kind or switch configuration"),
                    });
                }
                if old.is_switch()
                    && self.topology.n_interfaces(node) != topology.n_interfaces(node)
                {
                    return Err(AnalysisError::RebaseDirty {
                        flow: binding.id,
                        detail: format!("{node} changed interface count"),
                    });
                }
            }
            for hop in binding.route.hops() {
                let old = self
                    .topology
                    .link_between(hop.from, hop.to)
                    .map_err(AnalysisError::Net)?;
                let new = topology
                    .link_between(hop.from, hop.to)
                    .map_err(AnalysisError::Net)?;
                if old.speed != new.speed || old.propagation != new.propagation {
                    return Err(AnalysisError::RebaseDirty {
                        flow: binding.id,
                        detail: format!("link {}->{} changed parameters", hop.from, hop.to),
                    });
                }
            }
        }
        self.topology = topology;
        Ok(())
    }

    /// The warm cache's converged per-flow reports, in flow-id order —
    /// empty in [`AdmissionMode::Cold`] or after the cache was dropped.
    ///
    /// A cached report is exact for the current accepted set: reports
    /// that a departure or a trial could have changed are invalidated
    /// eagerly and only re-inserted by a converged analysis.
    pub fn cached_reports(&self) -> impl Iterator<Item = (FlowId, &FlowReport)> + '_ {
        self.cache.iter().flat_map(|cache| {
            cache
                .reports
                .iter()
                .map(|(id, report)| (*id, report.as_ref()))
        })
    }

    /// Re-run the analysis of the currently accepted set (e.g. after the
    /// operator changed the analysis configuration).
    pub fn reanalyze(&self) -> Result<AnalysisReport, AnalysisError> {
        crate::holistic::analyze(&self.topology, &self.accepted, &self.config)
    }
}

/// Turn a trial's report into the decision for `candidate`.
fn build_decision(
    candidate: FlowId,
    report: AnalysisReport,
    cost: DecisionCost,
) -> AdmissionDecision {
    if report.schedulable {
        AdmissionDecision::Accepted {
            id: candidate,
            report,
            cost,
        }
    } else {
        let reason = report
            .failure
            .clone()
            .unwrap_or_else(|| "deadline miss".to_string());
        // Attribute the failure only when the analysis converged: an
        // aborted or non-converged trial carries partial / non-final
        // bounds, and a deadline "miss" read off them could name the
        // wrong flow.
        let victim = if report.converged {
            victim_of(&report, candidate)
        } else {
            None
        };
        AdmissionDecision::Rejected {
            id: candidate,
            reason,
            victim,
            report,
            cost,
        }
    }
}

/// Run the warm-started, dependency-scoped trial analysis of one shard,
/// or return `None` when warm-starting is unsound or unavailable for this
/// trial (cyclic dependency graph, unwalkable route).  `seed` holds the
/// cached jitters of the trial's members (never the candidate's).
fn warm_shard_trial(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    trial: &FlowSet,
    candidate_id: FlowId,
    mut seed: JitterMap,
    cached_reports: &BTreeMap<FlowId, Arc<FlowReport>>,
) -> Result<Option<FixedPointRun>, AnalysisError> {
    // One dependency-graph construction answers both questions: is the
    // trial acyclic (warm starts are unsound otherwise) and what the
    // candidate can influence.
    let Some(affected) = acyclic_affected_flows(trial, candidate_id) else {
        return Ok(None);
    };

    // Re-verify the affected flows plus everything whose cached report a
    // departure invalidated; freeze the rest (shared, not cloned — the
    // engine carries frozen reports by `Arc`).
    let mut active: BTreeSet<FlowId> = affected;
    let mut frozen: BTreeMap<FlowId, Arc<FlowReport>> = BTreeMap::new();
    for binding in trial.bindings() {
        if active.contains(&binding.id) {
            continue;
        }
        match cached_reports.get(&binding.id) {
            Some(report) => {
                frozen.insert(binding.id, Arc::clone(report));
            }
            None => {
                active.insert(binding.id);
            }
        }
    }

    // Seed: cached converged jitters for the members, the paper's initial
    // (source-jitter) entries for the candidate.
    debug_assert!(seed.iter().all(|(&(flow, _), _)| flow != candidate_id));
    seed.set_initial(trial.get(candidate_id).map_err(AnalysisError::Net)?);

    let scope = Scope {
        active: &active,
        frozen: &frozen,
    };
    iterate_scoped(ctx, config, seed, &scope).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path};

    fn controller() -> (AdmissionController, gmf_net::PaperNetwork) {
        let (t, net) = paper_figure1();
        (AdmissionController::new(t, AnalysisConfig::paper()), net)
    }

    fn voice(deadline_ms: f64) -> GmfFlow {
        voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(deadline_ms),
            Time::from_millis(0.5),
        )
    }

    /// One-candidate batch: the test-side spelling of the old `request`.
    fn one(
        ctl: &mut AdmissionController,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
    ) -> AdmissionDecision {
        ctl.request_batch([AdmissionRequest::new(flow, route, priority)])
            .unwrap()
            .pop()
            .unwrap()
    }

    #[test]
    fn admits_feasible_flows_and_accumulates_them() {
        let (mut ctl, net) = controller();
        assert_eq!(ctl.n_accepted(), 0);
        assert_eq!(ctl.mode(), AdmissionMode::Warm);

        let route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        let d = one(&mut ctl, voice(20.0), route, Priority(7));
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
        assert!(d.report().schedulable);
        // The decision exposes the cost of the trial analyses: how many
        // holistic rounds they took, with one trace entry per round of the
        // final run.
        assert!(d.iterations() >= 1);
        assert_eq!(d.trace().len(), d.report().iterations);
        assert!(d.cost().flow_analyses >= 1);
        // The candidate's own report is addressable by its id.
        assert_eq!(d.candidate_report().unwrap().flow, d.id());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let d = one(&mut ctl, video, route, Priority(5));
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 2);
        // The second trial ran warm off the cached converged map, scoped
        // to the (single, merged) shard both flows share.
        assert!(d.cost().warm);
        assert_eq!(d.cost().shard, ShardId(FlowId(0)));
        assert_eq!(d.cost().shard_flows, 2);
        assert_eq!(ctl.partition().n_shards(), 1);

        // Re-analysing the accepted set is still schedulable.
        assert!(ctl.reanalyze().unwrap().schedulable);
    }

    #[test]
    fn rejects_infeasible_flow_and_keeps_state() {
        let (mut ctl, net) = controller();
        // The voice call enters through host 1 so it does not share the
        // (priority-blind) access link of the video source.
        let voice_route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        assert!(one(&mut ctl, voice(20.0), voice_route, Priority(7)).is_accepted());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        // A video flow with an impossible 2 ms deadline over two 10 Mbit/s
        // access links is rejected...
        let video = paper_figure3_flow("video", Time::from_millis(2.0), Time::from_millis(1.0));
        let d = one(&mut ctl, video, route.clone(), Priority(6));
        assert!(!d.is_accepted());
        match &d {
            AdmissionDecision::Rejected {
                id,
                reason,
                victim,
                report,
                ..
            } => {
                assert!(reason.contains("video") || reason.contains("overload"));
                assert!(!report.schedulable);
                // The rejection names the candidate's trial id, and when
                // the analysis converged, attributes the miss to it.
                assert_eq!(*id, d.id());
                if report.converged {
                    assert_eq!(*victim, Some(AdmissionVictim::Candidate));
                    assert_eq!(report.flow(*id).unwrap().flow, *id);
                }
            }
            _ => unreachable!(),
        }
        // ...and the accepted set is unchanged.
        assert_eq!(ctl.n_accepted(), 1);
        assert!(ctl.reanalyze().unwrap().schedulable);

        // The same video flow with a realistic deadline is admitted under
        // a fresh id: every request consumes one id, accepted or not.
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let d2 = one(&mut ctl, video, route, Priority(6));
        assert!(d2.is_accepted());
        assert_ne!(d2.id(), d.id());
        assert_eq!(d2.id(), FlowId(2));
        assert_eq!(ctl.n_accepted(), 2);
    }

    #[test]
    fn rejection_protects_already_admitted_flows_and_names_them() {
        let (mut ctl, net) = controller();
        // Admit a voice flow with a tight deadline on the shared 10 Mbit/s
        // access link of host 0.
        let route03 = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let tight = one(&mut ctl, voice(4.0), route03.clone(), Priority(7));
        assert!(tight.is_accepted());

        // A big low-priority video flow sharing the same source link pushes
        // the voice flow's first-hop (priority-blind) bound past 4 ms, so it
        // must be rejected even though the *new* flow itself has a lax
        // deadline.
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = one(&mut ctl, video, route03, Priority(1));
        assert!(!d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
        match &d {
            AdmissionDecision::Rejected { victim, report, .. } => {
                if report.converged {
                    assert_eq!(
                        *victim,
                        Some(AdmissionVictim::Existing {
                            flows: vec![tight.id()],
                        }),
                    );
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn warm_decisions_match_cold_decisions_bytewise() {
        let requests = |net: &gmf_net::PaperNetwork, t: &Topology| {
            vec![
                AdmissionRequest::new(
                    voice(20.0),
                    shortest_path(t, net.hosts[1], net.hosts[3]).unwrap(),
                    Priority(7),
                ),
                AdmissionRequest::new(
                    paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[0], net.hosts[3]).unwrap(),
                    Priority(5),
                ),
                AdmissionRequest::new(
                    // An impossible deadline: rejected by both engines.
                    paper_figure3_flow("video2", Time::from_millis(2.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[2], net.hosts[3]).unwrap(),
                    Priority(6),
                ),
                AdmissionRequest::new(
                    voice(25.0),
                    shortest_path(t, net.hosts[2], net.hosts[0]).unwrap(),
                    Priority(7),
                ),
            ]
        };
        let (t, net) = paper_figure1();
        let mut warm = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let mut cold = AdmissionController::new(t.clone(), AnalysisConfig::paper())
            .with_mode(AdmissionMode::Cold);
        let submit = |ctl: &mut AdmissionController| -> Vec<AdmissionDecision> {
            requests(&net, &t)
                .into_iter()
                .map(|r| ctl.request_batch([r]).unwrap().pop().unwrap())
                .collect()
        };
        let warm_decisions = submit(&mut warm);
        let cold_decisions = submit(&mut cold);
        assert_eq!(warm_decisions.len(), 4);
        let mut saw_scoped_saving = false;
        for (w, c) in warm_decisions.iter().zip(&cold_decisions) {
            assert_eq!(w.is_accepted(), c.is_accepted());
            assert_eq!(w.id(), c.id());
            // Warm reports cover the candidate's shard; every bound they
            // carry is byte-identical to the cold/global report's entry
            // for the same flow.
            assert!(!w.report().flows.is_empty());
            for flow in &w.report().flows {
                assert_eq!(Some(flow), c.report().flow(flow.flow));
            }
            assert_eq!(w.report().schedulable, c.report().schedulable);
            assert_eq!(w.report().failure, c.report().failure);
            saw_scoped_saving |= w.cost().flow_analyses < c.cost().flow_analyses;
        }
        assert_eq!(warm.accepted(), cold.accepted());
        // The last candidate's route is link-disjoint from everything
        // admitted, so its warm trial analysed a fresh singleton shard
        // while the cold trial re-ran the world.
        assert!(warm_decisions[3].report().flows.len() < cold_decisions[3].report().flows.len());
        assert_eq!(warm_decisions[3].cost().shard_flows, 1);
        // The warm engine did strictly less per-flow work on at least one
        // decision of this scenario.
        assert!(saw_scoped_saving);
    }

    #[test]
    fn batched_requests_consume_ids_in_order_and_match_sequential() {
        let (t, net) = paper_figure1();
        let requests = |t: &Topology| {
            vec![
                AdmissionRequest::new(
                    voice(20.0),
                    shortest_path(t, net.hosts[1], net.hosts[3]).unwrap(),
                    Priority(7),
                ),
                AdmissionRequest::new(
                    // Impossible deadline: rejected, but still consumes id 1.
                    paper_figure3_flow("video2", Time::from_millis(2.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[2], net.hosts[3]).unwrap(),
                    Priority(6),
                ),
                AdmissionRequest::new(
                    voice(25.0),
                    shortest_path(t, net.hosts[2], net.hosts[0]).unwrap(),
                    Priority(7),
                ),
                AdmissionRequest::new(
                    // Link-disjoint from every other request: its own lane.
                    voice(25.0),
                    shortest_path(t, net.hosts[3], net.hosts[2]).unwrap(),
                    Priority(7),
                ),
            ]
        };
        // The batched controller runs its lanes on four workers; lanes
        // are deterministic, so the decisions must match a sequential
        // single-threaded submission byte for byte.
        let mut batched =
            AdmissionController::new(t.clone(), AnalysisConfig::paper().with_threads(4));
        let batch = batched.request_batch(requests(&t)).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(
            batch.iter().map(|d| d.id()).collect::<Vec<_>>(),
            vec![FlowId(0), FlowId(1), FlowId(2), FlowId(3)]
        );
        assert!(batch[0].is_accepted());
        assert!(!batch[1].is_accepted());
        assert!(batch[2].is_accepted() && batch[3].is_accepted());
        assert_eq!(batched.n_accepted(), 3);
        assert_eq!(batched.partition().n_shards(), 3);

        let mut seq = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let sequential: Vec<AdmissionDecision> = requests(&t)
            .into_iter()
            .map(|r| seq.request_batch([r]).unwrap().pop().unwrap())
            .collect();
        assert_eq!(batch, sequential);
        assert_eq!(batched.accepted(), seq.accepted());

        // An empty batch is a no-op.
        assert_eq!(batched.request_batch([]).unwrap(), vec![]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_route_through_the_batch_path() {
        let (mut ctl, net) = controller();
        let r13 = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        let r20 = shortest_path(ctl.topology(), net.hosts[2], net.hosts[0]).unwrap();
        let r32 = shortest_path(ctl.topology(), net.hosts[3], net.hosts[2]).unwrap();
        let d = ctl.request(voice(20.0), r13, Priority(7)).unwrap();
        assert!(d.is_accepted());
        assert_eq!(d.id(), FlowId(0));
        let d = ctl
            .request_with_encapsulation(voice(25.0), r20, Priority(7), EncapsulationConfig::paper())
            .unwrap();
        assert!(d.is_accepted());
        assert_eq!(d.id(), FlowId(1));
        let all = ctl
            .request_all(vec![(voice(25.0), r32, Priority(7))])
            .unwrap();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_accepted());
        assert_eq!(all[0].id(), FlowId(2));
        assert_eq!(ctl.n_accepted(), 3);
    }

    #[test]
    fn with_accepted_verifies_preload_and_seeds_the_cache() {
        let (t, net) = paper_figure1();
        let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let mut preloaded = FlowSet::new();
        preloaded.add(voice(20.0), voice_route.clone(), Priority(7));
        preloaded.add(video.clone(), video_route.clone(), Priority(5));
        let (mut ctl, stats) =
            AdmissionController::with_accepted(t.clone(), preloaded, AnalysisConfig::paper())
                .unwrap();
        assert_eq!(ctl.n_accepted(), 2);
        assert_eq!(ctl.mode(), AdmissionMode::Warm);
        assert_eq!(stats.shards, ctl.partition().n_shards());
        assert!(stats.largest_shard >= 2);
        assert!(stats.rounds >= 1 && stats.flow_analyses >= 2);

        // The preloaded controller decides the next candidate exactly like
        // a controller that admitted the same flows one by one — warm bit,
        // bounds and trace included.
        let mut seq = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        assert!(one(&mut seq, voice(20.0), voice_route, Priority(7)).is_accepted());
        assert!(one(&mut seq, video, video_route.clone(), Priority(5)).is_accepted());
        let d_pre = one(&mut ctl, voice(25.0), video_route.clone(), Priority(7));
        let d_seq = one(&mut seq, voice(25.0), video_route.clone(), Priority(7));
        assert_eq!(d_pre, d_seq);
        assert!(d_pre.cost().warm);

        // A preloaded set that is not schedulable is refused up front,
        // naming the failing shard.
        let mut bad = FlowSet::new();
        bad.add(voice(4.0), video_route.clone(), Priority(7));
        bad.add(
            paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0)),
            video_route,
            Priority(1),
        );
        let err = AdmissionController::with_accepted(t, bad, AnalysisConfig::paper()).unwrap_err();
        assert!(matches!(err, AnalysisError::PreloadUnschedulable { .. }));
        assert!(err.is_unschedulable());
        assert!(err.to_string().contains("not schedulable"));
    }

    #[test]
    fn release_departs_a_flow_and_reopens_capacity() {
        let (mut ctl, net) = controller();
        let route03 = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let first = one(&mut ctl, voice(4.0), route03.clone(), Priority(7));
        assert!(first.is_accepted());

        // The big video flow does not fit next to the tight voice call...
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = one(&mut ctl, video.clone(), route03.clone(), Priority(1));
        assert!(!d.is_accepted());

        // ...but after the voice call departs, it does.
        let departed = ctl.release(first.id()).unwrap();
        assert_eq!(departed.id, first.id());
        assert_eq!(ctl.n_accepted(), 0);
        assert_eq!(ctl.partition().n_shards(), 0);
        let d = one(&mut ctl, video, route03, Priority(1));
        assert!(d.is_accepted(), "{:?}", d.report().failure);
        assert_eq!(ctl.n_accepted(), 1);
        // Departed ids are never reused.
        assert_ne!(d.id(), first.id());

        // Releasing an unknown id is an error and changes nothing.
        assert!(ctl.release(first.id()).is_err());
        assert_eq!(ctl.n_accepted(), 1);
    }

    #[test]
    fn release_batch_matches_sequential_releases_and_is_atomic() {
        let (t, net) = paper_figure1();
        let requests = |t: &Topology| {
            vec![
                AdmissionRequest::new(
                    voice(20.0),
                    shortest_path(t, net.hosts[1], net.hosts[3]).unwrap(),
                    Priority(7),
                ),
                AdmissionRequest::new(
                    paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[0], net.hosts[3]).unwrap(),
                    Priority(5),
                ),
                AdmissionRequest::new(
                    voice(25.0),
                    shortest_path(t, net.hosts[2], net.hosts[0]).unwrap(),
                    Priority(7),
                ),
            ]
        };
        let mut batched = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let mut sequential = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let a = batched.request_batch(requests(&t)).unwrap();
        let b = sequential.request_batch(requests(&t)).unwrap();
        assert!(a.iter().all(AdmissionDecision::is_accepted));
        assert_eq!(a, b);

        // Tear down the two flows sharing the video's shard in one batch
        // vs one at a time: same survivors, same partition, and the next
        // decision is byte-identical.
        let removed = batched.release_batch(&[a[0].id(), a[1].id()]).unwrap();
        assert_eq!(
            removed.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![a[0].id(), a[1].id()]
        );
        sequential.release(b[0].id()).unwrap();
        sequential.release(b[1].id()).unwrap();
        assert_eq!(batched.accepted(), sequential.accepted());
        assert_eq!(
            batched.partition().n_shards(),
            sequential.partition().n_shards()
        );
        let candidate = |t: &Topology| {
            AdmissionRequest::new(
                voice(18.0),
                shortest_path(t, net.hosts[1], net.hosts[3]).unwrap(),
                Priority(6),
            )
        };
        let da = batched.request_batch([candidate(&t)]).unwrap();
        let db = sequential.request_batch([candidate(&t)]).unwrap();
        assert_eq!(da, db);

        // Atomicity: an unknown or duplicated id fails the whole batch
        // without removing anything.
        let before = batched.accepted().clone();
        assert!(batched.release_batch(&[FlowId(999)]).is_err());
        let live = a[2].id();
        assert!(batched.release_batch(&[live, live]).is_err());
        assert_eq!(*batched.accepted(), before);

        // An empty batch is a no-op.
        assert_eq!(batched.release_batch(&[]).unwrap(), vec![]);
    }

    #[test]
    fn rebase_swaps_topology_only_when_retained_flows_are_untouched() {
        // h0 - s1 - h3 carries the retained flow; s2 - h4 hang off s1 via
        // s2, far from the flow's route.
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(gmf_net::SwitchConfig::paper(), "s1");
        let h3 = t.add_end_host("h3");
        let s2 = t.add_switch(gmf_net::SwitchConfig::paper(), "s2");
        let h4 = t.add_end_host("h4");
        for (a, b) in [(h0, s1), (s1, h3), (s1, s2), (s2, h4)] {
            t.add_duplex_link(a, b, gmf_net::LinkProfile::ethernet_100m())
                .unwrap();
        }
        let route = shortest_path(&t, h0, h3).unwrap();
        let mut ctl = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let d = one(&mut ctl, voice(20.0), route.clone(), Priority(7));
        assert!(d.is_accepted());

        // Failing the s2-h4 cable touches neither the flow's route nodes
        // nor their interface counts: rebase succeeds and keeps the cache.
        let mut faulty = t.clone();
        faulty.fail_link(s2, h4).unwrap();
        ctl.rebase(faulty.survivor().into_topology()).unwrap();
        assert_eq!(ctl.topology().n_links(), t.n_links() - 2);
        let d2 = one(&mut ctl, voice(25.0), route.clone(), Priority(6));
        assert!(d2.is_accepted());
        assert!(d2.cost().warm, "cache must survive a clean rebase");

        // Failing s1-s2 changes s1's interface count; s1 is on the
        // retained route, so the rebase is refused and nothing changes.
        let mut faulty = t.clone();
        faulty.fail_link(s1, s2).unwrap();
        let err = ctl.rebase(faulty.survivor().into_topology()).unwrap_err();
        assert!(matches!(err, AnalysisError::RebaseDirty { .. }));
        assert!(err.to_string().contains("interface count"));

        // Failing the access link severs the retained route outright.
        let mut faulty = t.clone();
        faulty.fail_link(h0, s1).unwrap();
        let err = ctl.rebase(faulty.survivor().into_topology()).unwrap_err();
        assert!(matches!(err, AnalysisError::RebaseDirty { .. }));
    }

    #[test]
    fn release_and_readmission_restore_identical_bounds() {
        let (t, net) = paper_figure1();
        for mode in [AdmissionMode::Cold, AdmissionMode::Warm] {
            let mut ctl =
                AdmissionController::new(t.clone(), AnalysisConfig::paper()).with_mode(mode);
            let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
            let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
            let video =
                paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
            let v = one(&mut ctl, voice(20.0), voice_route, Priority(7));
            let before = one(&mut ctl, video.clone(), video_route.clone(), Priority(5));
            assert!(v.is_accepted() && before.is_accepted());

            // Tear the video down and bring it back: every surviving flow's
            // report and the re-admitted flow's bounds are unchanged (only
            // its id is fresh).
            ctl.release(before.id()).unwrap();
            let after = one(&mut ctl, video, video_route, Priority(5));
            assert!(after.is_accepted());
            assert_ne!(after.id(), before.id());
            let b = before.candidate_report().unwrap();
            let a = after.candidate_report().unwrap();
            assert_eq!(a.name, b.name);
            assert_eq!(a.frames.len(), b.frames.len());
            for (fa, fb) in a.frames.iter().zip(&b.frames) {
                assert_eq!(fa.bound, fb.bound, "mode {mode}");
                assert_eq!(fa.hops, fb.hops);
            }
            assert_eq!(
                after.report().flow(v.id()).unwrap(),
                before.report().flow(v.id()).unwrap(),
            );
        }
    }

    #[test]
    fn invalid_route_fails_the_whole_batch_without_consuming_ids() {
        let (mut ctl, net) = controller();
        // Build a route on a topology with a different shape; the node ids
        // exist in the paper network but the links do not.
        let (line_topology, a, b, _) = gmf_net::line(
            2,
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::SwitchConfig::paper(),
        );
        let bogus = gmf_net::shortest_path(&line_topology, a, b).unwrap();
        let good = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        // One bad route poisons the batch atomically: no trial runs, no
        // id is consumed, nothing is admitted.
        let result = ctl.request_batch([
            AdmissionRequest::new(voice(20.0), good.clone(), Priority(7)),
            AdmissionRequest::new(voice(20.0), bogus, Priority(7)),
        ]);
        assert!(result.is_err());
        assert_eq!(ctl.n_accepted(), 0);
        let d = one(&mut ctl, voice(20.0), good, Priority(7));
        assert!(d.is_accepted());
        assert_eq!(d.id(), FlowId(0));
    }

    #[test]
    fn decision_serde_roundtrip_includes_victim_and_cost() {
        let (mut ctl, net) = controller();
        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        one(&mut ctl, voice(4.0), route.clone(), Priority(7));
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = one(&mut ctl, video, route, Priority(1));
        assert!(!d.is_accepted());
        let json = serde_json::to_string(&d).unwrap();
        let back: AdmissionDecision = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(AdmissionMode::default(), AdmissionMode::Warm);
        assert_eq!(AdmissionMode::Cold.to_string(), "cold");
        assert_eq!(AdmissionMode::Warm.to_string(), "warm");
    }
}
