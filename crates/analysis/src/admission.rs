//! Admission control built on top of the holistic analysis.
//!
//! The paper's closing argument is that the holistic analysis "forms an
//! admission controller": a network operator keeps the set of already
//! accepted flows, and a new flow is accepted only if the holistic analysis
//! of *accepted ∪ {candidate}* shows every frame of every flow (old and
//! new) still meeting its deadline.  [`AdmissionController`] implements
//! exactly that protocol — plus flow departures ([`AdmissionController::release`])
//! and an **incremental warm-started engine** that makes the per-request
//! cost nearly independent of how many flows are already admitted.
//!
//! # The incremental engine
//!
//! A naive controller re-runs the whole fixed point cold on every request:
//! admitting N flows costs O(N²) per-flow analyses.  In
//! [`AdmissionMode::Warm`] (the default) the controller instead keeps the
//! converged [`JitterMap`] and per-flow reports of the accepted set and,
//! for each trial:
//!
//! 1. **warm-starts** the fixed point from the cached map (candidate
//!    seeded with its initial source jitter) via
//!    [`crate::fixed_point::iterate_from`] — on acyclic instances the
//!    fixed point is unique, so the trial lands on byte-identical bounds
//!    in far fewer rounds;
//! 2. **scopes re-verification** with
//!    [`crate::fixed_point::affected_flows`]: flows unreachable from the
//!    candidate in the jitter dependency graph keep their cached
//!    [`FlowReport`] verbatim and are never re-analysed;
//! 3. **falls back to a cold restart** whenever the dependency graph is
//!    cyclic (warm seeds could latch onto a non-least fixed point) or the
//!    warm run fails to converge (a stale from-above seed after a
//!    departure can abort spuriously) — so every decision, and every frame
//!    bound behind an accepted or converged-rejected decision, is
//!    byte-identical to today's cold analysis.
//!
//! Departures keep the cache warm too: [`AdmissionController::release`]
//! drops the departed flow's jitters and invalidates only the cached
//! reports of flows its departure can influence; everything else stays
//! frozen for the next trial.

use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap};
use crate::error::AnalysisError;
use crate::fixed_point::{
    acyclic_affected_flows, affected_flows, iterate, iterate_scoped, ConvergenceTrace,
    FixedPointRun, Scope,
};
use crate::report::{AnalysisReport, FlowReport};
use gmf_model::{EncapsulationConfig, FlowId, GmfFlow};
use gmf_net::{FlowSet, Priority, Route, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How the controller analyses each trial set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionMode {
    /// Re-run the holistic fixed point cold on every request (the seed
    /// behaviour; O(accepted) per-flow analyses per round, every round).
    Cold,
    /// Warm-start each trial from the cached converged jitter map and only
    /// re-verify flows the candidate can influence; decisions and bounds
    /// are byte-identical to [`AdmissionMode::Cold`].
    #[default]
    Warm,
}

impl std::fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionMode::Cold => write!(f, "cold"),
            AdmissionMode::Warm => write!(f, "warm"),
        }
    }
}

/// What (or rather whom) a rejection protects, derived from the trial
/// report's deadline misses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionVictim {
    /// Only the candidate itself misses its deadline; the accepted flows
    /// are unharmed by it.
    Candidate,
    /// The candidate meets its own deadlines but would make these
    /// already-accepted flows miss theirs.
    Existing {
        /// The accepted flows that would miss deadlines, in id order.
        flows: Vec<FlowId>,
    },
    /// Both the candidate and these already-accepted flows would miss
    /// deadlines.
    Both {
        /// The accepted flows that would miss deadlines, in id order.
        flows: Vec<FlowId>,
    },
}

/// What one admission decision cost, summed over every analysis run behind
/// it (the warm trial plus a cold fallback rerun, when one happened).
///
/// One accounting gap, accepted for simplicity: a warm attempt that dies
/// with a *hard error* (possible only from a stale post-departure seed)
/// surfaces no counters, so its partial work is not included — the rare
/// error path under-reports, never the common ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionCost {
    /// Total holistic rounds.
    pub rounds: usize,
    /// Total per-flow pipeline analyses (≈ rounds × flows re-verified per
    /// round) — the metric that shrinks when warm starts and dependency
    /// scoping kick in.
    pub flow_analyses: usize,
    /// `true` if the final report came from the warm-started,
    /// dependency-scoped path (false: cold mode, cyclic dependency graph,
    /// empty cache, or a cold fallback rerun).
    pub warm: bool,
}

/// The verdict of an admission request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// The flow was admitted; it now has the given id in the accepted set.
    Accepted {
        /// Identifier of the admitted flow within the controller's flow set.
        id: FlowId,
        /// The analysis report of the accepted set including the new flow.
        report: AnalysisReport,
        /// What the decision cost.
        cost: DecisionCost,
    },
    /// The flow was rejected; the accepted set is unchanged.
    Rejected {
        /// The id the candidate carried in the trial set — the key of its
        /// [`FlowReport`] inside `report` (the id is *not* registered in
        /// the accepted set and will be reused by the next request).
        id: FlowId,
        /// Why the flow was rejected.
        reason: String,
        /// Who misses deadlines in the trial, when the analysis got far
        /// enough to attribute the failure (`None` for aborts such as
        /// overload or divergence, where `reason` carries the detail).
        victim: Option<AdmissionVictim>,
        /// The analysis report of the trial set (accepted ∪ candidate).
        report: AnalysisReport,
        /// What the decision cost.
        cost: DecisionCost,
    },
}

impl AdmissionDecision {
    /// `true` if the flow was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AdmissionDecision::Accepted { .. })
    }

    /// The candidate's flow id in the analysed trial set (registered in
    /// the accepted set only if the decision is an acceptance).
    pub fn id(&self) -> FlowId {
        match self {
            AdmissionDecision::Accepted { id, .. } => *id,
            AdmissionDecision::Rejected { id, .. } => *id,
        }
    }

    /// The report of the analysed (trial) flow set.
    pub fn report(&self) -> &AnalysisReport {
        match self {
            AdmissionDecision::Accepted { report, .. } => report,
            AdmissionDecision::Rejected { report, .. } => report,
        }
    }

    /// The candidate's per-frame bounds inside the trial report, when the
    /// analysis got far enough to produce them.
    pub fn candidate_report(&self) -> Option<&FlowReport> {
        self.report().flow(self.id())
    }

    /// What the decision cost across every analysis run behind it.
    pub fn cost(&self) -> DecisionCost {
        match self {
            AdmissionDecision::Accepted { cost, .. } => *cost,
            AdmissionDecision::Rejected { cost, .. } => *cost,
        }
    }

    /// How many holistic rounds the analyses behind this decision took —
    /// the per-request cost an operator dashboard would track.
    pub fn iterations(&self) -> usize {
        self.cost().rounds
    }

    /// The per-round convergence trace of the trial analysis that produced
    /// the final report.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.report().trace
    }
}

/// Derive the structured victim of a rejection from the trial report.
fn victim_of(report: &AnalysisReport, candidate: FlowId) -> Option<AdmissionVictim> {
    let missed = report.missed_flows();
    let candidate_misses = missed.contains(&candidate);
    let existing: Vec<FlowId> = missed.into_iter().filter(|&f| f != candidate).collect();
    match (candidate_misses, existing.is_empty()) {
        (true, true) => Some(AdmissionVictim::Candidate),
        (true, false) => Some(AdmissionVictim::Both { flows: existing }),
        (false, false) => Some(AdmissionVictim::Existing { flows: existing }),
        (false, true) => None,
    }
}

/// The converged state of the accepted set, kept between requests by the
/// warm engine.
#[derive(Debug, Clone)]
struct WarmCache {
    /// The converged jitter iterate of the last verified analysis.  After
    /// a departure this may sit *above* the accepted set's fixed point for
    /// the affected flows — still a valid seed on acyclic instances (the
    /// fixed point is unique), with the cold fallback covering spurious
    /// aborts.
    jitters: JitterMap,
    /// Converged per-flow reports that are known fresh, shared with the
    /// scoped engine rounds (which carry them by `Arc` instead of cloning
    /// them once per round).  Flows missing here (their reports were
    /// invalidated by a departure) are always re-verified on the next
    /// trial.
    reports: BTreeMap<FlowId, std::sync::Arc<FlowReport>>,
}

/// An admission controller for one operator-managed network.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    topology: Topology,
    accepted: FlowSet,
    config: AnalysisConfig,
    mode: AdmissionMode,
    cache: Option<WarmCache>,
}

impl AdmissionController {
    /// Create a controller with no accepted flows, using the incremental
    /// warm engine ([`AdmissionMode::Warm`]).
    pub fn new(topology: Topology, config: AnalysisConfig) -> Self {
        AdmissionController {
            topology,
            accepted: FlowSet::new(),
            config,
            mode: AdmissionMode::default(),
            cache: None,
        }
    }

    /// Override the trial-analysis mode (cold restarts vs incremental warm
    /// starts); decisions are byte-identical either way.
    pub fn with_mode(mut self, mode: AdmissionMode) -> Self {
        self.mode = mode;
        if mode == AdmissionMode::Cold {
            self.cache = None;
        }
        self
    }

    /// The trial-analysis mode in use.
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// The currently accepted flow set.
    pub fn accepted(&self) -> &FlowSet {
        &self.accepted
    }

    /// The network the controller manages.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of accepted flows.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Ask to admit `flow` on `route` at `priority` with the default (plain
    /// UDP) packetization.
    pub fn request(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
    ) -> Result<AdmissionDecision, AnalysisError> {
        self.request_with_encapsulation(flow, route, priority, EncapsulationConfig::paper())
    }

    /// Ask to admit every flow of `requests` in order, stopping at the
    /// first structural error.  Rejections do not stop the batch (each
    /// later trial simply runs against the set accepted so far).
    pub fn request_all(
        &mut self,
        requests: impl IntoIterator<Item = (GmfFlow, Route, Priority)>,
    ) -> Result<Vec<AdmissionDecision>, AnalysisError> {
        requests
            .into_iter()
            .map(|(flow, route, priority)| self.request(flow, route, priority))
            .collect()
    }

    /// Ask to admit `flow` with an explicit packetization configuration.
    pub fn request_with_encapsulation(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
        encapsulation: EncapsulationConfig,
    ) -> Result<AdmissionDecision, AnalysisError> {
        // Validate the route against the topology up front so structural
        // errors surface as errors, not rejections.
        Route::new(&self.topology, route.nodes().to_vec())?;

        let mut trial = self.accepted.clone();
        let candidate_id = trial.add_with_encapsulation(flow, route, priority, encapsulation);
        let ctx = AnalysisContext::new(&self.topology, &trial)?;

        // The warm path: seed from the cached converged map, re-verify only
        // the flows the candidate can influence.  A warm run that fails to
        // converge proves nothing (its seed may sit above the fixed point
        // after departures), so the engine then restarts cold; either way
        // the decision and its bounds match a cold analysis byte for byte.
        let mut cost = DecisionCost {
            rounds: 0,
            flow_analyses: 0,
            warm: false,
        };
        let mut run: Option<FixedPointRun> = None;
        if self.mode == AdmissionMode::Warm && self.cache.is_some() {
            match self.try_warm_trial(&ctx, &trial, candidate_id) {
                Ok(Some(warm)) => {
                    cost.rounds += warm.report.iterations;
                    cost.flow_analyses += warm.flow_analyses;
                    if warm.report.converged {
                        cost.warm = true;
                        run = Some(warm);
                    }
                }
                Ok(None) => {}
                // A seed above the fixed point (stale after departures)
                // can turn jitter-dependent inner iterations into hard
                // errors a cold run never hits.  The verdict must not
                // depend on the seed, so restart cold — structural errors
                // reproduce identically there.
                Err(_) => {}
            }
        }
        let run = match run {
            Some(run) => run,
            None => {
                let cold = iterate(&ctx, &self.config)?;
                cost.rounds += cold.report.iterations;
                cost.flow_analyses += cold.flow_analyses;
                cold
            }
        };
        drop(ctx);

        let FixedPointRun {
            report, jitters, ..
        } = run;
        if report.schedulable {
            self.accepted = trial;
            if self.mode == AdmissionMode::Warm {
                // A schedulable report is always converged, so the engine
                // handed back the map it evaluated the bounds at.
                self.cache = jitters.map(|jitters| WarmCache {
                    jitters,
                    reports: report
                        .flows
                        .iter()
                        .map(|f| (f.flow, std::sync::Arc::new(f.clone())))
                        .collect(),
                });
            }
            Ok(AdmissionDecision::Accepted {
                id: candidate_id,
                report,
                cost,
            })
        } else {
            let reason = report
                .failure
                .clone()
                .unwrap_or_else(|| "deadline miss".to_string());
            // Attribute the failure only when the analysis converged: an
            // aborted or non-converged trial carries partial / non-final
            // bounds, and a deadline "miss" read off them could name the
            // wrong flow.
            let victim = if report.converged {
                victim_of(&report, candidate_id)
            } else {
                None
            };
            Ok(AdmissionDecision::Rejected {
                id: candidate_id,
                reason,
                victim,
                report,
                cost,
            })
        }
    }

    /// Run the warm-started, dependency-scoped trial analysis, or return
    /// `None` when warm-starting is unsound or unavailable for this trial
    /// (cyclic dependency graph, unwalkable route).
    fn try_warm_trial(
        &self,
        ctx: &AnalysisContext<'_>,
        trial: &FlowSet,
        candidate_id: FlowId,
    ) -> Result<Option<FixedPointRun>, AnalysisError> {
        // tidy-allow: unwrap invariant: warm path requires a cache
        let cache = self.cache.as_ref().expect("warm path requires a cache");
        // One dependency-graph construction answers both questions: is the
        // trial acyclic (warm starts are unsound otherwise) and what the
        // candidate can influence.
        let Some(affected) = acyclic_affected_flows(trial, candidate_id) else {
            return Ok(None);
        };

        // Re-verify the affected flows plus everything whose cached report
        // a departure invalidated; freeze the rest (shared, not cloned —
        // the engine carries frozen reports by `Arc`).
        let mut active: BTreeSet<FlowId> = affected;
        let mut frozen: BTreeMap<FlowId, std::sync::Arc<FlowReport>> = BTreeMap::new();
        for binding in trial.bindings() {
            if active.contains(&binding.id) {
                continue;
            }
            match cache.reports.get(&binding.id) {
                Some(report) => {
                    frozen.insert(binding.id, std::sync::Arc::clone(report));
                }
                None => {
                    active.insert(binding.id);
                }
            }
        }

        // Seed: cached converged jitters for the accepted flows, the
        // paper's initial (source-jitter) entries for the candidate.  The
        // cache never holds entries under the candidate's id — rejected
        // trial ids are reused, but rejections leave the cache untouched.
        let mut seed = cache.jitters.clone();
        debug_assert!(seed.iter().all(|(&(flow, _), _)| flow != candidate_id));
        seed.set_initial(trial.get(candidate_id).map_err(AnalysisError::Net)?);

        let scope = Scope {
            active: &active,
            frozen: &frozen,
        };
        iterate_scoped(ctx, &self.config, seed, &scope).map(Some)
    }

    /// Release (tear down) an accepted flow — the departure half of the
    /// admission protocol.  Returns the removed binding.
    ///
    /// The warm cache survives the departure: only the cached reports of
    /// flows the departed flow could influence are invalidated (they are
    /// re-verified on the next request); everything else stays frozen.
    pub fn release(&mut self, id: FlowId) -> Result<gmf_net::FlowBinding, AnalysisError> {
        // Compute the invalidation set on the *pre-removal* set: the
        // departed flow's interference edges still exist there.
        let affected = if self.cache.is_some() && self.accepted.contains(id) {
            affected_flows(&self.accepted, id)
        } else {
            None
        };
        let binding = self.accepted.remove(id).map_err(AnalysisError::Net)?;
        if let Some(cache) = self.cache.as_mut() {
            match affected {
                Some(affected) => {
                    cache.jitters.remove_flow(id);
                    for flow in affected {
                        cache.reports.remove(&flow);
                    }
                }
                // No dependency information: drop the whole cache and let
                // the next request restart cold.
                None => self.cache = None,
            }
        }
        Ok(binding)
    }

    /// Re-run the analysis of the currently accepted set (e.g. after the
    /// operator changed the analysis configuration).
    pub fn reanalyze(&self) -> Result<AnalysisReport, AnalysisError> {
        crate::holistic::analyze(&self.topology, &self.accepted, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path};

    fn controller() -> (AdmissionController, gmf_net::PaperNetwork) {
        let (t, net) = paper_figure1();
        (AdmissionController::new(t, AnalysisConfig::paper()), net)
    }

    fn voice(deadline_ms: f64) -> GmfFlow {
        voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(deadline_ms),
            Time::from_millis(0.5),
        )
    }

    #[test]
    fn admits_feasible_flows_and_accumulates_them() {
        let (mut ctl, net) = controller();
        assert_eq!(ctl.n_accepted(), 0);
        assert_eq!(ctl.mode(), AdmissionMode::Warm);

        let route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        let d = ctl.request(voice(20.0), route, Priority(7)).unwrap();
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
        assert!(d.report().schedulable);
        // The decision exposes the cost of the trial analyses: how many
        // holistic rounds they took, with one trace entry per round of the
        // final run.
        assert!(d.iterations() >= 1);
        assert_eq!(d.trace().len(), d.report().iterations);
        assert!(d.cost().flow_analyses >= 1);
        // The candidate's own report is addressable by its id.
        assert_eq!(d.candidate_report().unwrap().flow, d.id());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let d = ctl.request(video, route, Priority(5)).unwrap();
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 2);
        // The second trial ran warm off the cached converged map.
        assert!(d.cost().warm);

        // Re-analysing the accepted set is still schedulable.
        assert!(ctl.reanalyze().unwrap().schedulable);
    }

    #[test]
    fn rejects_infeasible_flow_and_keeps_state() {
        let (mut ctl, net) = controller();
        // The voice call enters through host 1 so it does not share the
        // (priority-blind) access link of the video source.
        let voice_route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        assert!(ctl
            .request(voice(20.0), voice_route, Priority(7))
            .unwrap()
            .is_accepted());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        // A video flow with an impossible 2 ms deadline over two 10 Mbit/s
        // access links is rejected...
        let video = paper_figure3_flow("video", Time::from_millis(2.0), Time::from_millis(1.0));
        let d = ctl.request(video, route.clone(), Priority(6)).unwrap();
        assert!(!d.is_accepted());
        match &d {
            AdmissionDecision::Rejected {
                id,
                reason,
                victim,
                report,
                ..
            } => {
                assert!(reason.contains("video") || reason.contains("overload"));
                assert!(!report.schedulable);
                // The rejection names the candidate's trial id, and when
                // the analysis converged, attributes the miss to it.
                assert_eq!(*id, d.id());
                if report.converged {
                    assert_eq!(*victim, Some(AdmissionVictim::Candidate));
                    assert_eq!(report.flow(*id).unwrap().flow, *id);
                }
            }
            _ => unreachable!(),
        }
        // ...and the accepted set is unchanged.
        assert_eq!(ctl.n_accepted(), 1);
        assert!(ctl.reanalyze().unwrap().schedulable);

        // The same video flow with a realistic deadline is admitted, and
        // the rejected trial id is reused (it never entered the set).
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let d2 = ctl.request(video, route, Priority(6)).unwrap();
        assert!(d2.is_accepted());
        assert_eq!(d2.id(), d.id());
        assert_eq!(ctl.n_accepted(), 2);
    }

    #[test]
    fn rejection_protects_already_admitted_flows_and_names_them() {
        let (mut ctl, net) = controller();
        // Admit a voice flow with a tight deadline on the shared 10 Mbit/s
        // access link of host 0.
        let route03 = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let tight = ctl
            .request(voice(4.0), route03.clone(), Priority(7))
            .unwrap();
        assert!(tight.is_accepted());

        // A big low-priority video flow sharing the same source link pushes
        // the voice flow's first-hop (priority-blind) bound past 4 ms, so it
        // must be rejected even though the *new* flow itself has a lax
        // deadline.
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = ctl.request(video, route03, Priority(1)).unwrap();
        assert!(!d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
        match &d {
            AdmissionDecision::Rejected { victim, report, .. } => {
                if report.converged {
                    assert_eq!(
                        *victim,
                        Some(AdmissionVictim::Existing {
                            flows: vec![tight.id()],
                        }),
                    );
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn warm_decisions_match_cold_decisions_bytewise() {
        let requests = |net: &gmf_net::PaperNetwork, t: &Topology| {
            vec![
                (
                    voice(20.0),
                    shortest_path(t, net.hosts[1], net.hosts[3]).unwrap(),
                    Priority(7),
                ),
                (
                    paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[0], net.hosts[3]).unwrap(),
                    Priority(5),
                ),
                (
                    // An impossible deadline: rejected by both engines.
                    paper_figure3_flow("video2", Time::from_millis(2.0), Time::from_millis(1.0)),
                    shortest_path(t, net.hosts[2], net.hosts[3]).unwrap(),
                    Priority(6),
                ),
                (
                    voice(25.0),
                    shortest_path(t, net.hosts[2], net.hosts[0]).unwrap(),
                    Priority(7),
                ),
            ]
        };
        let (t, net) = paper_figure1();
        let mut warm = AdmissionController::new(t.clone(), AnalysisConfig::paper());
        let mut cold = AdmissionController::new(t.clone(), AnalysisConfig::paper())
            .with_mode(AdmissionMode::Cold);
        let warm_decisions = warm.request_all(requests(&net, &t)).unwrap();
        let cold_decisions = cold.request_all(requests(&net, &t)).unwrap();
        assert_eq!(warm_decisions.len(), 4);
        let mut saw_scoped_saving = false;
        for (w, c) in warm_decisions.iter().zip(&cold_decisions) {
            assert_eq!(w.is_accepted(), c.is_accepted());
            assert_eq!(w.id(), c.id());
            // Bounds, verdicts and failure attribution are byte-identical;
            // only the iteration traces may differ.
            assert_eq!(w.report().flows, c.report().flows);
            assert_eq!(w.report().schedulable, c.report().schedulable);
            assert_eq!(w.report().failure, c.report().failure);
            saw_scoped_saving |= w.cost().flow_analyses < c.cost().flow_analyses;
        }
        assert_eq!(warm.accepted(), cold.accepted());
        // The warm engine did strictly less per-flow work on at least one
        // decision of this scenario.
        assert!(saw_scoped_saving);
    }

    #[test]
    fn release_departs_a_flow_and_reopens_capacity() {
        let (mut ctl, net) = controller();
        let route03 = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let first = ctl
            .request(voice(4.0), route03.clone(), Priority(7))
            .unwrap();
        assert!(first.is_accepted());

        // The big video flow does not fit next to the tight voice call...
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = ctl
            .request(video.clone(), route03.clone(), Priority(1))
            .unwrap();
        assert!(!d.is_accepted());

        // ...but after the voice call departs, it does.
        let departed = ctl.release(first.id()).unwrap();
        assert_eq!(departed.id, first.id());
        assert_eq!(ctl.n_accepted(), 0);
        let d = ctl.request(video, route03, Priority(1)).unwrap();
        assert!(d.is_accepted(), "{:?}", d.report().failure);
        assert_eq!(ctl.n_accepted(), 1);
        // Departed ids are never reused.
        assert_ne!(d.id(), first.id());

        // Releasing an unknown id is an error and changes nothing.
        assert!(ctl.release(first.id()).is_err());
        assert_eq!(ctl.n_accepted(), 1);
    }

    #[test]
    fn release_and_readmission_restore_identical_bounds() {
        let (t, net) = paper_figure1();
        for mode in [AdmissionMode::Cold, AdmissionMode::Warm] {
            let mut ctl =
                AdmissionController::new(t.clone(), AnalysisConfig::paper()).with_mode(mode);
            let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
            let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
            let video =
                paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
            let v = ctl
                .request(voice(20.0), voice_route.clone(), Priority(7))
                .unwrap();
            let before = ctl
                .request(video.clone(), video_route.clone(), Priority(5))
                .unwrap();
            assert!(v.is_accepted() && before.is_accepted());

            // Tear the video down and bring it back: every surviving flow's
            // report and the re-admitted flow's bounds are unchanged (only
            // its id is fresh).
            ctl.release(before.id()).unwrap();
            let after = ctl.request(video, video_route, Priority(5)).unwrap();
            assert!(after.is_accepted());
            assert_ne!(after.id(), before.id());
            let b = before.candidate_report().unwrap();
            let a = after.candidate_report().unwrap();
            assert_eq!(a.name, b.name);
            assert_eq!(a.frames.len(), b.frames.len());
            for (fa, fb) in a.frames.iter().zip(&b.frames) {
                assert_eq!(fa.bound, fb.bound, "mode {mode}");
                assert_eq!(fa.hops, fb.hops);
            }
            assert_eq!(
                after.report().flow(v.id()).unwrap(),
                before.report().flow(v.id()).unwrap(),
            );
        }
    }

    #[test]
    fn invalid_route_is_an_error_not_a_rejection() {
        let (mut ctl, _net) = controller();
        // Build a route on a topology with a different shape; the node ids
        // exist in the paper network but the links do not.
        let (line_topology, a, b, _) = gmf_net::line(
            2,
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::SwitchConfig::paper(),
        );
        let bogus = gmf_net::shortest_path(&line_topology, a, b).unwrap();
        let result = ctl.request(voice(20.0), bogus, Priority(7));
        assert!(result.is_err());
        assert_eq!(ctl.n_accepted(), 0);
    }

    #[test]
    fn decision_serde_roundtrip_includes_victim_and_cost() {
        let (mut ctl, net) = controller();
        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        ctl.request(voice(4.0), route.clone(), Priority(7)).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = ctl.request(video, route, Priority(1)).unwrap();
        assert!(!d.is_accepted());
        let json = serde_json::to_string(&d).unwrap();
        let back: AdmissionDecision = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
        assert_eq!(AdmissionMode::default(), AdmissionMode::Warm);
        assert_eq!(AdmissionMode::Cold.to_string(), "cold");
        assert_eq!(AdmissionMode::Warm.to_string(), "warm");
    }
}
