//! Admission control built on top of the holistic analysis.
//!
//! The paper's closing argument is that the holistic analysis "forms an
//! admission controller": a network operator keeps the set of already
//! accepted flows, and a new flow is accepted only if the holistic analysis
//! of *accepted ∪ {candidate}* shows every frame of every flow (old and
//! new) still meeting its deadline.  [`AdmissionController`] implements
//! exactly that protocol.

use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::fixed_point::ConvergenceTrace;
use crate::holistic::analyze;
use crate::report::AnalysisReport;
use gmf_model::{EncapsulationConfig, FlowId, GmfFlow};
use gmf_net::{FlowSet, Priority, Route, Topology};
use serde::{Deserialize, Serialize};

/// The verdict of an admission request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionDecision {
    /// The flow was admitted; it now has the given id in the accepted set.
    Accepted {
        /// Identifier of the admitted flow within the controller's flow set.
        id: FlowId,
        /// The analysis report of the accepted set including the new flow.
        report: AnalysisReport,
    },
    /// The flow was rejected; the accepted set is unchanged.
    Rejected {
        /// Why the flow was rejected.
        reason: String,
        /// The analysis report of the trial set (accepted ∪ candidate).
        report: AnalysisReport,
    },
}

impl AdmissionDecision {
    /// `true` if the flow was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, AdmissionDecision::Accepted { .. })
    }

    /// The report of the analysed (trial) flow set.
    pub fn report(&self) -> &AnalysisReport {
        match self {
            AdmissionDecision::Accepted { report, .. } => report,
            AdmissionDecision::Rejected { report, .. } => report,
        }
    }

    /// How many holistic rounds the trial analysis behind this decision
    /// took — the per-request cost an operator dashboard would track.
    pub fn iterations(&self) -> usize {
        self.report().iterations
    }

    /// The per-round convergence trace of the trial analysis.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.report().trace
    }
}

/// An admission controller for one operator-managed network.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    topology: Topology,
    accepted: FlowSet,
    config: AnalysisConfig,
}

impl AdmissionController {
    /// Create a controller with no accepted flows.
    pub fn new(topology: Topology, config: AnalysisConfig) -> Self {
        AdmissionController {
            topology,
            accepted: FlowSet::new(),
            config,
        }
    }

    /// The currently accepted flow set.
    pub fn accepted(&self) -> &FlowSet {
        &self.accepted
    }

    /// The network the controller manages.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of accepted flows.
    pub fn n_accepted(&self) -> usize {
        self.accepted.len()
    }

    /// Ask to admit `flow` on `route` at `priority` with the default (plain
    /// UDP) packetization.
    pub fn request(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
    ) -> Result<AdmissionDecision, AnalysisError> {
        self.request_with_encapsulation(flow, route, priority, EncapsulationConfig::paper())
    }

    /// Ask to admit `flow` with an explicit packetization configuration.
    pub fn request_with_encapsulation(
        &mut self,
        flow: GmfFlow,
        route: Route,
        priority: Priority,
        encapsulation: EncapsulationConfig,
    ) -> Result<AdmissionDecision, AnalysisError> {
        // Validate the route against the topology up front so structural
        // errors surface as errors, not rejections.
        Route::new(&self.topology, route.nodes().to_vec())?;

        let mut trial = self.accepted.clone();
        let candidate_id = trial.add_with_encapsulation(flow, route, priority, encapsulation);
        let report = analyze(&self.topology, &trial, &self.config)?;

        if report.schedulable {
            self.accepted = trial;
            Ok(AdmissionDecision::Accepted {
                id: candidate_id,
                report,
            })
        } else {
            let reason = report
                .failure
                .clone()
                .unwrap_or_else(|| "deadline miss".to_string());
            Ok(AdmissionDecision::Rejected { reason, report })
        }
    }

    /// Re-run the analysis of the currently accepted set (e.g. after the
    /// operator changed the analysis configuration).
    pub fn reanalyze(&self) -> Result<AnalysisReport, AnalysisError> {
        analyze(&self.topology, &self.accepted, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path};

    fn controller() -> (AdmissionController, gmf_net::PaperNetwork) {
        let (t, net) = paper_figure1();
        (AdmissionController::new(t, AnalysisConfig::paper()), net)
    }

    #[test]
    fn admits_feasible_flows_and_accumulates_them() {
        let (mut ctl, net) = controller();
        assert_eq!(ctl.n_accepted(), 0);

        let route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        let d = ctl.request(voice, route, Priority(7)).unwrap();
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
        assert!(d.report().schedulable);
        // The decision exposes the cost of the trial analysis: how many
        // holistic rounds it took, with one trace entry per round.
        assert!(d.iterations() >= 1);
        assert_eq!(d.trace().len(), d.iterations());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        let d = ctl.request(video, route, Priority(5)).unwrap();
        assert!(d.is_accepted());
        assert_eq!(ctl.n_accepted(), 2);

        // Re-analysing the accepted set is still schedulable.
        assert!(ctl.reanalyze().unwrap().schedulable);
    }

    #[test]
    fn rejects_infeasible_flow_and_keeps_state() {
        let (mut ctl, net) = controller();
        // The voice call enters through host 1 so it does not share the
        // (priority-blind) access link of the video source.
        let voice_route = shortest_path(ctl.topology(), net.hosts[1], net.hosts[3]).unwrap();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        assert!(ctl
            .request(voice, voice_route, Priority(7))
            .unwrap()
            .is_accepted());

        let route = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        // A video flow with an impossible 2 ms deadline over two 10 Mbit/s
        // access links is rejected...
        let video = paper_figure3_flow("video", Time::from_millis(2.0), Time::from_millis(1.0));
        let d = ctl.request(video, route.clone(), Priority(6)).unwrap();
        assert!(!d.is_accepted());
        match &d {
            AdmissionDecision::Rejected { reason, report } => {
                assert!(reason.contains("video") || reason.contains("overload"));
                assert!(!report.schedulable);
            }
            _ => unreachable!(),
        }
        // ...and the accepted set is unchanged.
        assert_eq!(ctl.n_accepted(), 1);
        assert!(ctl.reanalyze().unwrap().schedulable);

        // The same video flow with a realistic deadline is admitted.
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        assert!(ctl
            .request(video, route, Priority(6))
            .unwrap()
            .is_accepted());
        assert_eq!(ctl.n_accepted(), 2);
    }

    #[test]
    fn rejection_protects_already_admitted_flows() {
        let (mut ctl, net) = controller();
        // Admit a voice flow with a tight deadline on the shared 10 Mbit/s
        // access link of host 0.
        let route03 = shortest_path(ctl.topology(), net.hosts[0], net.hosts[3]).unwrap();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(4.0),
            Time::from_millis(0.5),
        );
        assert!(ctl
            .request(voice, route03.clone(), Priority(7))
            .unwrap()
            .is_accepted());

        // A big low-priority video flow sharing the same source link pushes
        // the voice flow's first-hop (priority-blind) bound past 4 ms, so it
        // must be rejected even though the *new* flow itself has a lax
        // deadline.
        let video = paper_figure3_flow("video", Time::from_millis(500.0), Time::from_millis(1.0));
        let d = ctl.request(video, route03, Priority(1)).unwrap();
        assert!(!d.is_accepted());
        assert_eq!(ctl.n_accepted(), 1);
    }

    #[test]
    fn invalid_route_is_an_error_not_a_rejection() {
        let (mut ctl, _net) = controller();
        // Build a route on a topology with a different shape; the node ids
        // exist in the paper network but the links do not.
        let (line_topology, a, b, _) = gmf_net::line(
            2,
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::LinkProfile::ethernet_100m(),
            gmf_net::SwitchConfig::paper(),
        );
        let bogus = gmf_net::shortest_path(&line_topology, a, b).unwrap();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::ZERO,
        );
        let result = ctl.request(voice, bogus, Priority(7));
        assert!(result.is_err());
        assert_eq!(ctl.n_accepted(), 0);
    }
}
