//! End-to-end pipeline analysis of a single frame — the algorithm of the
//! paper's Figure 6.
//!
//! Given the generalized jitter of every flow at every resource (from the
//! previous holistic round), the algorithm walks the route of the flow
//! under analysis, summing per-resource response-time bounds and
//! accumulating jitter:
//!
//! ```text
//! RSUM := GJ_i^k;  JSUM := GJ_i^k
//! analyse the first hop (source output queue + first link)     — eq. (19)
//! for every switch N on the route:
//!     GJ_i^{k,in(N)}        := JSUM;  R := ingress bound at N   — eq. (26)
//!     RSUM += R; JSUM += R
//!     GJ_i^{k,link(N,succ)} := JSUM;  R := egress bound at N    — eq. (33)
//!     RSUM += R; JSUM += R
//! R_i^k := RSUM
//! ```
//!
//! The jitter assignments made on the way are returned so the holistic
//! iteration ([`crate::holistic`]) can feed them into the next round.
//!
//! One extension over Figure 6: a route with no intermediate switch (source
//! directly cabled to the destination) still gets its first hop analysed;
//! the paper's loop would skip it.

use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap, ResourceId};
use crate::egress::egress_response;
use crate::error::{AnalysisError, StageKind};
use crate::first_hop::first_hop_response;
use crate::ingress::ingress_response;
use crate::report::{FrameBound, HopBound};
use gmf_model::{FlowId, Time};

/// The jitter values a frame accumulated at each resource of its route,
/// produced as a by-product of the pipeline walk.
pub type JitterAssignments = Vec<(ResourceId, Time)>;

/// Analyse frame `frame` of `flow` end to end, using `jitters` for the
/// generalized jitter of interfering flows.
///
/// Returns the end-to-end bound (with per-hop breakdown) and the jitter
/// this frame accumulates at every resource of its route.
pub fn analyze_frame(
    ctx: &AnalysisContext<'_>,
    jitters: &JitterMap,
    config: &AnalysisConfig,
    flow: FlowId,
    frame: usize,
) -> Result<(FrameBound, JitterAssignments), AnalysisError> {
    let binding = ctx.flows().get(flow)?;
    let spec = binding
        .flow
        .frame(frame)
        .map_err(|e| AnalysisError::Net(gmf_net::NetError::Model(e.to_string())))?;
    let source = binding.route.source();
    let source_jitter = spec.jitter;

    // Figure 6, line 3.
    let mut rsum = source_jitter;
    let mut jsum = source_jitter;
    let mut hops = Vec::new();
    let mut assignments = Vec::new();

    // First hop: source output queue and first link.
    let first_succ = binding.route.successor(source)?;
    assignments.push((
        ResourceId::Link {
            from: source,
            to: first_succ,
        },
        jsum,
    ));
    let first = first_hop_response(ctx, jitters, config, flow, frame)?;
    hops.push(HopBound {
        resource: ResourceId::Link {
            from: source,
            to: first_succ,
        },
        stage: StageKind::FirstHop,
        response: first.response,
    });
    rsum += first.response;
    jsum += first.response;

    // Every intermediate switch: ingress processing, then egress link.
    for &switch in binding.route.switches() {
        let succ = binding.route.successor(switch)?;

        // Figure 6, lines 13–15.
        assignments.push((ResourceId::SwitchIngress { node: switch }, jsum));
        let ingress = ingress_response(ctx, jitters, config, flow, frame, switch)?;
        hops.push(HopBound {
            resource: ResourceId::SwitchIngress { node: switch },
            stage: StageKind::SwitchIngress,
            response: ingress.response,
        });
        rsum += ingress.response;
        jsum += ingress.response;

        // Figure 6, lines 17–19.
        assignments.push((
            ResourceId::Link {
                from: switch,
                to: succ,
            },
            jsum,
        ));
        let egress = egress_response(ctx, jitters, config, flow, frame, switch)?;
        hops.push(HopBound {
            resource: ResourceId::Link {
                from: switch,
                to: succ,
            },
            stage: StageKind::EgressLink,
            response: egress.response,
        });
        rsum += egress.response;
        jsum += egress.response;
    }

    Ok((
        FrameBound {
            flow,
            frame,
            source_jitter,
            bound: rsum,
            deadline: spec.deadline,
            hops,
        },
        assignments,
    ))
}

/// Analyse every frame of `flow`, returning the bounds and the combined
/// jitter assignments (per frame).
pub fn analyze_flow(
    ctx: &AnalysisContext<'_>,
    jitters: &JitterMap,
    config: &AnalysisConfig,
    flow: FlowId,
) -> Result<(Vec<FrameBound>, Vec<JitterAssignments>), AnalysisError> {
    let n_frames = ctx.flow(flow)?.n_frames();
    let mut bounds = Vec::with_capacity(n_frames);
    let mut assignments = Vec::with_capacity(n_frames);
    for k in 0..n_frames {
        let (bound, assignment) = analyze_frame(ctx, jitters, config, flow, k)?;
        bounds.push(bound);
        assignments.push(assignment);
    }
    Ok((bounds, assignments))
}

/// A per-stage dense analysis state (see the stage modules): built lazily
/// during frame 0's walk, reused by every later frame of the cycle.
enum StageState {
    First(crate::first_hop::FirstHopDense),
    Ingress(crate::ingress::IngressDense),
    Egress(crate::egress::EgressDense),
}

/// Analyse every frame of the flow at `flow_index` (dense plan order)
/// against the dense iterate — the engine-internal form of
/// [`analyze_flow`].
///
/// The returned assignments are frame-major and stage-minor: the jitter
/// the frame has accumulated *entering* each stage of the plan's walk, for
/// the fixed-point engine to fold into the next round's arena.
///
/// Byte-identity with the keyed walk: stage states are constructed
/// *lazily, in frame 0's walk order*, so any error a stage's
/// frame-independent computations raise surfaces at exactly the point the
/// keyed walk would raise it; later frames can only fail in the
/// frame-dependent parts (the first-hop busy period and its lazily
/// extended `w(q)` memo), which run in the keyed order too.
pub(crate) fn analyze_flow_dense(
    ctx: &AnalysisContext<'_>,
    jitters: &crate::dense::DenseJitters,
    config: &AnalysisConfig,
    flow_index: usize,
    scratch: &mut crate::kernel::KernelScratch,
) -> Result<(Vec<FrameBound>, Vec<Vec<Time>>), AnalysisError> {
    let plan = ctx.plan();
    let flow_plan = &plan.flows[flow_index];
    let binding = &ctx.flows().bindings()[flow_index];
    let flow = flow_plan.id;
    scratch.reset();

    let mut states: Vec<StageState> = Vec::with_capacity(flow_plan.stages.len());
    let mut bounds = Vec::with_capacity(flow_plan.n_frames);
    let mut assignments = Vec::with_capacity(flow_plan.n_frames);
    for frame in 0..flow_plan.n_frames {
        let spec = binding
            .flow
            .frame(frame)
            .map_err(|e| AnalysisError::Net(gmf_net::NetError::Model(e.to_string())))?;
        let source_jitter = spec.jitter;

        // Figure 6, line 3.
        let mut rsum = source_jitter;
        let mut jsum = source_jitter;
        let mut hops = Vec::with_capacity(flow_plan.stages.len());
        let mut frame_assignments = Vec::with_capacity(flow_plan.stages.len());

        for (index, stage) in flow_plan.stages.iter().enumerate() {
            frame_assignments.push(jsum);
            if states.len() == index {
                states.push(match stage.stage {
                    crate::error::StageKind::FirstHop => {
                        StageState::First(crate::first_hop::FirstHopDense::build(
                            plan, jitters, config, flow, stage, scratch,
                        )?)
                    }
                    crate::error::StageKind::SwitchIngress => {
                        StageState::Ingress(crate::ingress::IngressDense::build(
                            ctx, jitters, config, flow, stage, scratch,
                        )?)
                    }
                    crate::error::StageKind::EgressLink => {
                        StageState::Egress(crate::egress::EgressDense::build(
                            ctx, jitters, config, flow, stage, scratch,
                        )?)
                    }
                });
            }
            let response = match &mut states[index] {
                StageState::First(state) => state.response(ctx, config, frame, scratch)?,
                StageState::Ingress(state) => state.response(ctx, frame, scratch),
                StageState::Egress(state) => state.response(ctx, config, frame, scratch)?,
            };
            hops.push(HopBound {
                resource: stage.resource,
                stage: stage.stage,
                response,
            });
            rsum += response;
            jsum += response;
        }

        bounds.push(FrameBound {
            flow,
            frame,
            source_jitter,
            bound: rsum,
            deadline: spec.deadline,
            hops,
        });
        assignments.push(frame_assignments);
    }
    Ok((bounds, assignments))
}

/// Sanity helper used in tests and experiments: the sum of a frame's
/// per-hop responses plus its source jitter must equal its end-to-end
/// bound.
pub fn hop_sum_matches(bound: &FrameBound) -> bool {
    let total: Time = bound.hops.iter().map(|h| h.response).sum();
    (total + bound.source_jitter).approx_eq(bound.bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, FlowSet, NodeId, Priority, Route, Topology};

    fn paper_scenario() -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(200.0), Time::from_millis(1.0));
        fs.add(video, video_route, Priority(6));
        let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(voice, voice_route, Priority(7));
        (t, fs)
    }

    #[test]
    fn pipeline_covers_every_resource_of_the_figure2_route() {
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let (bound, assignments) =
            analyze_frame(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0).unwrap();

        // Route 0 -> 4 -> 6 -> 3: first hop, in(4), link(4,6), in(6), link(6,3).
        assert_eq!(bound.hops.len(), 5);
        assert_eq!(bound.hops[0].stage, StageKind::FirstHop);
        assert_eq!(
            bound.hops[1].resource,
            ResourceId::SwitchIngress { node: NodeId(4) }
        );
        assert_eq!(
            bound.hops[2].resource,
            ResourceId::Link {
                from: NodeId(4),
                to: NodeId(6)
            }
        );
        assert_eq!(
            bound.hops[3].resource,
            ResourceId::SwitchIngress { node: NodeId(6) }
        );
        assert_eq!(
            bound.hops[4].resource,
            ResourceId::Link {
                from: NodeId(6),
                to: NodeId(3)
            }
        );
        // Five resources produce five jitter assignments.
        assert_eq!(assignments.len(), 5);
        // The first assignment is the source jitter itself; later ones are
        // strictly larger because every stage adds a positive response.
        assert_eq!(assignments[0].1, Time::from_millis(1.0));
        for pair in assignments.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
        // The end-to-end bound is the sum of the hops plus the source jitter.
        assert!(hop_sum_matches(&bound));
        assert_eq!(bound.deadline, Time::from_millis(200.0));
        assert_eq!(bound.source_jitter, Time::from_millis(1.0));
    }

    #[test]
    fn bound_is_dominated_by_the_slow_access_links() {
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let (bound, _) =
            analyze_frame(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0).unwrap();
        // The 10 Mbit/s first hop and last hop dominate the 100 Mbit/s
        // backbone for the 30-fragment I+P frame.
        let first = bound.hops[0].response;
        let backbone = bound.hops[2].response;
        let last = bound.hops[4].response;
        assert!(first > backbone);
        assert!(last > backbone);
        // And the total is sensible: tens of milliseconds, not seconds.
        assert!(bound.bound > Time::from_millis(50.0));
        assert!(bound.bound < Time::from_millis(200.0));
    }

    #[test]
    fn analyze_flow_covers_every_frame() {
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let (bounds, assignments) =
            analyze_flow(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0)).unwrap();
        assert_eq!(bounds.len(), 9);
        assert_eq!(assignments.len(), 9);
        // The I+P frame (index 0) has the largest bound of the cycle.
        let worst = bounds.iter().map(|b| b.bound).max().unwrap();
        assert_eq!(bounds[0].bound, worst);
        // Smaller B frames have strictly smaller bounds.
        assert!(bounds[1].bound < bounds[0].bound);
        for b in &bounds {
            assert!(hop_sum_matches(b));
        }
    }

    #[test]
    fn single_hop_route_still_gets_a_first_hop_bound() {
        // host0 -> switch4 only (the "destination" is the switch's neighbour
        // host1 via a 2-node route host0 -> ... is not possible; instead use
        // a direct host-to-host cable).
        let mut t = Topology::new();
        let a = t.add_end_host("a");
        let b = t.add_end_host("b");
        t.add_duplex_link(a, b, gmf_net::LinkProfile::ethernet_100m())
            .unwrap();
        let mut fs = FlowSet::new();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(5.0),
            Time::ZERO,
        );
        fs.add(voice, Route::new(&t, vec![a, b]).unwrap(), Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let (bound, assignments) =
            analyze_frame(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0).unwrap();
        assert_eq!(bound.hops.len(), 1);
        assert_eq!(assignments.len(), 1);
        assert!(bound.bound > Time::ZERO);
        assert!(bound.meets_deadline());
    }

    #[test]
    fn voice_flow_meets_its_deadline_in_the_paper_scenario() {
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let (bounds, _) =
            analyze_flow(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(1)).unwrap();
        assert_eq!(bounds.len(), 1);
        assert!(
            bounds[0].meets_deadline(),
            "voice bound {}",
            bounds[0].bound
        );
    }

    #[test]
    fn unknown_frame_is_an_error() {
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        assert!(analyze_frame(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 99).is_err());
    }
}
