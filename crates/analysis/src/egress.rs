//! Switch-egress analysis: "From Dequeueing of Priority Queue to
//! Transmission" (paper equations (28)–(35)).
//!
//! Once the routing task has placed the Ethernet frames of a packet in the
//! prioritized output queue of node `N` towards `succ(τ_i, N)`, two effects
//! delay them:
//!
//! 1. **static-priority transmission**: frames of higher-or-equal priority
//!    flows (`hep(τ_i, N, succ)`, eq. 2) are transmitted first, and one
//!    maximum-size frame that already started transmitting cannot be
//!    preempted (the `MFT` blocking term);
//! 2. **stride scheduling of the send task**: even when the link is idle, a
//!    frame only leaves the priority queue when the output interface's send
//!    task gets its turn, which happens once every `CIRC(N)`; each
//!    higher-or-equal-priority Ethernet frame that is dequeued ahead of ours
//!    therefore also costs a `CIRC(N)` round.
//!
//! For frame `k` of flow `τ_i`:
//!
//! * busy period (eq. 29): `t = MFT + Σ_{hep} MX_j(t + extra_j) +
//!   Σ_{hep} NX_j(t + extra_j) · CIRC(N)`, seeded at `MFT` (eq. 28);
//! * queueing time of the `q`-th instance (eq. 31): the same expression
//!   plus `q·CSUM_i`;
//! * response time (eq. 32): `w(q) − q·TSUM_i + C_i^k`, maximised over
//!   `q < Q_i^k` and increased by the propagation delay (eq. 33).
//!
//! The analysis cannot converge when the higher-or-equal-priority demand
//! alone saturates the link (eq. 34); we additionally fold the per-frame
//! `CIRC(N)` service cost into the overload check because it contributes to
//! the long-run demand of the same busy period.

use crate::busy_period::{fixed_point, FixedPointOutcome};
use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap, ResourceId};
use crate::error::{AnalysisError, StageKind};
use crate::index::qw;
use crate::kernel::KernelScratch;
use crate::stage::StageResult;
use gmf_model::{FlowId, Time};
use gmf_net::NodeId;

/// Compute the egress (priority queue → transmission → reception at the
/// next node) response-time bound of frame `frame` of `flow` at switch
/// `node`.
pub fn egress_response(
    ctx: &AnalysisContext<'_>,
    jitters: &JitterMap,
    config: &AnalysisConfig,
    flow: FlowId,
    frame: usize,
    node: NodeId,
) -> Result<StageResult, AnalysisError> {
    let binding = ctx.flows().get(flow)?;
    let succ = binding.route.successor(node)?;
    let link = ctx.topology().link_between(node, succ)?;
    let circ = ctx.topology().circ(node)?;
    let resource = ResourceId::Link {
        from: node,
        to: succ,
    };
    let resource_name = resource.to_string();

    let d_i = ctx.demand(flow, node, succ);
    let c_k = d_i.c(frame);
    let n_k = d_i.n_ethernet_frames(frame);
    let tsum_i = d_i.tsum();
    let mft = d_i.mft();
    let refine = config.refine_egress_own_frames;
    // Per-own-Ethernet-frame charges under the refinement.  The printed
    // equations charge one MFT of non-preemptive blocking and no send-task
    // service wait for the packet's own frames; in the Click switch every
    // own Ethernet frame (a) can be blocked by a lower-priority frame that
    // started in its inter-fragment gap (one MFT each) and (b) waits up to
    // one stride round `CIRC(N)` for its send task's turn once the NIC is
    // idle.  Both repeat for every whole-cycle instance ahead of us in the
    // busy period.
    let own_frame_cost = mft + circ;
    let blocking_k = if refine {
        own_frame_cost.saturating_mul(n_k)
    } else {
        mft
    };
    let cycle_extra = if refine {
        d_i.csum()
            .saturating_add(own_frame_cost.saturating_mul(d_i.nsum()))
    } else {
        d_i.csum()
    };
    let busy_seed = if refine {
        own_frame_cost.saturating_mul(d_i.max_n_ethernet_frames())
    } else {
        mft
    };

    // Higher-or-equal priority flows on the same output link (eq. 2).
    let hep = ctx.flows().hep(flow, node, succ)?;

    // Schedulability condition (34), extended with the CIRC cost of serving
    // each higher-priority Ethernet frame through the send task.
    // tidy-allow: float utilization is a dimensionless ratio compared against 1.0, not a bound
    let utilization: f64 = hep
        .iter()
        .map(|&j| {
            let d = ctx.demand(j, node, succ);
            // tidy-allow: float, cast round-count to ratio conversion for the overload check only
            (d.csum().as_secs() + d.nsum() as f64 * circ.as_secs()) / d.tsum().as_secs()
        })
        .sum();
    if utilization >= 1.0 {
        return Err(AnalysisError::Overload {
            stage: StageKind::EgressLink,
            flow,
            utilization,
            resource: resource_name,
        });
    }

    // extra_j: accumulated jitter of flow j on this output link.
    let extras: Vec<(FlowId, Time)> = hep
        .iter()
        .map(|&j| (j, jitters.max_jitter(j, resource)))
        .collect();

    // Busy period, equations (28)–(29).
    let interference = |window_base: Time, extras: &[(FlowId, Time)]| -> Time {
        let mut total = Time::ZERO;
        for (j, extra) in extras {
            let d = ctx.demand(*j, node, succ);
            let window = window_base + *extra;
            total = total.saturating_add(
                d.mx(window)
                    .saturating_add(circ.saturating_mul(d.nx(window))),
            );
        }
        total
    };

    let busy_period = match fixed_point(
        busy_seed,
        config.horizon,
        config.max_fixed_point_iterations,
        |t| busy_seed + interference(t, &extras),
    ) {
        FixedPointOutcome::Converged(t) => t,
        FixedPointOutcome::ExceededHorizon { .. } => {
            return Err(AnalysisError::HorizonExceeded {
                stage: StageKind::EgressLink,
                flow,
                horizon: config.horizon,
                resource: resource_name,
            })
        }
        FixedPointOutcome::IterationBudgetExhausted { .. } => {
            return Err(AnalysisError::NoConvergence {
                stage: StageKind::EgressLink,
                flow,
                iterations: config.max_fixed_point_iterations,
            })
        }
    };

    let instances = busy_period.div_ceil(tsum_i).max(1);

    // Queueing time and response per instance, equations (30)–(32).  Under
    // the own-frames refinement a *fragmented* frame keeps its own
    // transmission inside the interference window (higher-or-equal-priority
    // frames arriving during the multi-fragment transmission are dequeued
    // between fragments); the printed form adds `C_i^k` after the fixed
    // point, which is exact only for single-frame packets.
    let mut worst = Time::ZERO;
    for q in 0..instances {
        let own = blocking_k.saturating_add(cycle_extra.saturating_mul(q));
        let fragmented = refine && n_k > 1;
        let seed = if fragmented { own + c_k } else { own };
        let w = match fixed_point(
            seed,
            config.horizon,
            config.max_fixed_point_iterations,
            |w| seed + interference(w, &extras),
        ) {
            FixedPointOutcome::Converged(w) => w,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::EgressLink,
                    flow,
                    horizon: config.horizon,
                    resource: resource_name,
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::EgressLink,
                    flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };
        let response = if fragmented {
            w - tsum_i.saturating_mul(q)
        } else {
            w - tsum_i.saturating_mul(q) + c_k
        };
        worst = worst.max(response);
    }

    // Equation (33): add the propagation delay of the output link.
    Ok(StageResult {
        response: worst + link.propagation,
        busy_period,
        instances,
    })
}

/// The dense per-round state of one flow's egress stage.
///
/// As at the ingress, everything frame-independent in equations (28)–(35)
/// — the overload check, the busy period and the queueing times `w(q)` of
/// *single-frame* packets — is solved once per round at build;
/// [`EgressDense::response`] maximises eq. (32) over the precomputed
/// instances and adds the frame's own transmission time and the link's
/// propagation delay (eq. 33).  Under
/// [`AnalysisConfig::refine_egress_own_frames`], a *fragmented* frame
/// keeps its own transmission inside the interference window, which makes
/// its fixed points frame-dependent — those solve on demand, in the keyed
/// walk's frame order, exactly like the keyed engine.
pub(crate) struct EgressDense {
    flow: gmf_model::FlowId,
    resource: crate::context::ResourceId,
    circ: Time,
    tsum_i: Time,
    mft: Time,
    /// `CSUM_i` plus, under the refinement, `MFT · NSUM_i` per-fragment
    /// blocking for every whole-cycle instance ahead of us.
    cycle_extra: Time,
    instances: u64,
    own_demand: u32,
    propagation: Time,
    /// Range into the scratch term arena with the resolved hep
    /// interferers, in id order.
    terms: std::ops::Range<usize>,
    /// Range into the scratch `w` arena holding `w(q)` for `q < Q_i`
    /// (eq. 31) of single-frame packets, solved at build.
    w: std::ops::Range<usize>,
}

impl EgressDense {
    /// Run the overload check (eq. 34, extended with the CIRC service
    /// cost) and solve the busy period and every single-frame `w(q)`
    /// against the current iterate.
    pub(crate) fn build(
        ctx: &AnalysisContext<'_>,
        jitters: &crate::dense::DenseJitters,
        config: &AnalysisConfig,
        flow: gmf_model::FlowId,
        stage: &crate::dense::StagePlan,
        scratch: &mut KernelScratch,
    ) -> Result<Self, AnalysisError> {
        let circ = stage.circ;
        if stage.utilization >= 1.0 {
            return Err(AnalysisError::Overload {
                stage: StageKind::EgressLink,
                flow,
                utilization: stage.utilization,
                resource: stage.resource.to_string(),
            });
        }
        let d_i = ctx.demand_by_index(stage.own_demand);
        let tsum_i = d_i.tsum();
        let mft = d_i.mft();
        let refine = config.refine_egress_own_frames;
        let own_frame_cost = mft + circ;
        let cycle_extra = if refine {
            d_i.csum()
                .saturating_add(own_frame_cost.saturating_mul(d_i.nsum()))
        } else {
            d_i.csum()
        };
        let busy_seed = if refine {
            own_frame_cost.saturating_mul(d_i.max_n_ethernet_frames())
        } else {
            mft
        };

        // extra_j: accumulated jitter of flow j on this output link (the
        // egress interferer table holds `hep` only — no self entry, so
        // `all_terms` is the one slice both walks use).
        let tables = ctx.tables();
        let terms_range =
            scratch.resolve_terms(ctx.plan().term_slice(&stage.all_terms), jitters, false);
        let KernelScratch { terms, w, .. } = scratch;
        let resolved = &terms[terms_range.clone()];

        // Busy period, equations (28)–(29).
        let busy_period = match crate::kernel::solve_mx_nx(
            tables,
            resolved,
            circ,
            busy_seed,
            busy_seed,
            config.horizon,
            config.max_fixed_point_iterations,
        ) {
            FixedPointOutcome::Converged(t) => t,
            FixedPointOutcome::ExceededHorizon { .. } => {
                return Err(AnalysisError::HorizonExceeded {
                    stage: StageKind::EgressLink,
                    flow,
                    horizon: config.horizon,
                    resource: stage.resource.to_string(),
                })
            }
            FixedPointOutcome::IterationBudgetExhausted { .. } => {
                return Err(AnalysisError::NoConvergence {
                    stage: StageKind::EgressLink,
                    flow,
                    iterations: config.max_fixed_point_iterations,
                })
            }
        };

        let instances = busy_period.div_ceil(tsum_i).max(1);

        // Queueing time per instance, equations (30)–(31), for
        // single-frame packets (`blocking_k` = one MFT, plus one CIRC
        // own-send-wait under the refinement).
        let single_blocking = if refine { own_frame_cost } else { mft };
        let w_start = w.len();
        for q in 0..instances {
            let own = single_blocking.saturating_add(cycle_extra.saturating_mul(q));
            let wq = match crate::kernel::solve_mx_nx(
                tables,
                resolved,
                circ,
                own,
                own,
                config.horizon,
                config.max_fixed_point_iterations,
            ) {
                FixedPointOutcome::Converged(w) => w,
                FixedPointOutcome::ExceededHorizon { .. } => {
                    return Err(AnalysisError::HorizonExceeded {
                        stage: StageKind::EgressLink,
                        flow,
                        horizon: config.horizon,
                        resource: stage.resource.to_string(),
                    })
                }
                FixedPointOutcome::IterationBudgetExhausted { .. } => {
                    return Err(AnalysisError::NoConvergence {
                        stage: StageKind::EgressLink,
                        flow,
                        iterations: config.max_fixed_point_iterations,
                    })
                }
            };
            w.push(wq);
        }

        Ok(EgressDense {
            flow,
            resource: stage.resource,
            circ,
            tsum_i,
            mft,
            cycle_extra,
            instances,
            own_demand: stage.own_demand,
            propagation: stage.propagation,
            terms: terms_range,
            w: w_start..w.len(),
        })
    }

    /// Equations (32)–(33): maximise the response over the instances and
    /// add the frame's own transmission and the propagation delay.
    /// Fragmented frames under the own-frames refinement solve their
    /// frame-dependent fixed points here, in the keyed engine's order.
    pub(crate) fn response(
        &self,
        ctx: &AnalysisContext<'_>,
        config: &AnalysisConfig,
        frame: usize,
        scratch: &KernelScratch,
    ) -> Result<Time, AnalysisError> {
        let d_i = ctx.demand_by_index(self.own_demand);
        let c_k = d_i.c(frame);
        let n_k = d_i.n_ethernet_frames(frame);
        if !(config.refine_egress_own_frames && n_k > 1) {
            let mut worst = Time::ZERO;
            for (q, &wq) in scratch.w[self.w.clone()].iter().enumerate() {
                let response = wq - self.tsum_i.saturating_mul(qw(q)) + c_k;
                worst = worst.max(response);
            }
            return Ok(worst + self.propagation);
        }

        let tables = ctx.tables();
        let resolved = &scratch.terms[self.terms.clone()];
        let mut worst = Time::ZERO;
        for q in 0..self.instances {
            let base = (self.mft + self.circ)
                .saturating_mul(n_k)
                .saturating_add(self.cycle_extra.saturating_mul(q))
                + c_k;
            let r = match crate::kernel::solve_mx_nx(
                tables,
                resolved,
                self.circ,
                base,
                base,
                config.horizon,
                config.max_fixed_point_iterations,
            ) {
                FixedPointOutcome::Converged(r) => r,
                FixedPointOutcome::ExceededHorizon { .. } => {
                    return Err(AnalysisError::HorizonExceeded {
                        stage: StageKind::EgressLink,
                        flow: self.flow,
                        horizon: config.horizon,
                        resource: self.resource.to_string(),
                    })
                }
                FixedPointOutcome::IterationBudgetExhausted { .. } => {
                    return Err(AnalysisError::NoConvergence {
                        stage: StageKind::EgressLink,
                        flow: self.flow,
                        iterations: config.max_fixed_point_iterations,
                    })
                }
            };
            worst = worst.max(r - self.tsum_i.saturating_mul(q));
        }
        Ok(worst + self.propagation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, paper_figure3_flow, voip_flow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, FlowSet, Priority, Topology};

    const SW4: NodeId = NodeId(4);
    const SW6: NodeId = NodeId(6);

    /// Video (priority 6) from host 0 and `n_voice` voice flows
    /// (priority 7) from host 1, all towards host 3 — they share the
    /// switch4 → switch6 and switch6 → host3 links.
    fn setup(n_voice: usize, voice_priority: Priority) -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let video = paper_figure3_flow("video", Time::from_millis(200.0), Time::from_millis(1.0));
        fs.add(video, video_route, Priority(6));
        let voice_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        for i in 0..n_voice {
            let voice = voip_flow(
                &format!("voice{i}"),
                VoiceCodec::G711,
                Time::from_millis(20.0),
                Time::from_millis(0.5),
            );
            fs.add(voice, voice_route.clone(), voice_priority);
        }
        (t, fs)
    }

    #[test]
    fn isolated_flow_pays_blocking_and_transmission() {
        let (t, fs) = setup(0, Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let r =
            egress_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0, SW4).unwrap();
        let d = ctx.demand(FlowId(0), SW4, SW6);
        let link = t.link_between(SW4, SW6).unwrap();
        // Bound = MFT (blocking) + own transmission + propagation.
        assert!(r.response.approx_eq(d.mft() + d.c(0) + link.propagation));
    }

    #[test]
    fn higher_priority_voice_interferes_with_video() {
        let (t, fs) = setup(3, Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        // Give the voice flows some accumulated jitter on the shared link so
        // the interference windows are non-degenerate (as the holistic
        // iteration would).
        let mut jitters = JitterMap::initial(&fs);
        for v in 1..=3 {
            jitters.set(
                FlowId(v),
                ResourceId::Link { from: SW4, to: SW6 },
                0,
                Time::from_millis(2.0),
                1,
            );
        }
        let cfg = AnalysisConfig::paper();
        let r = egress_response(&ctx, &jitters, &cfg, FlowId(0), 0, SW4).unwrap();
        let d_video = ctx.demand(FlowId(0), SW4, SW6);
        let d_voice = ctx.demand(FlowId(1), SW4, SW6);
        let circ = t.circ(SW4).unwrap();
        let link = t.link_between(SW4, SW6).unwrap();
        // At least: blocking + 3 voice packets (transmission + CIRC each) +
        // own transmission + propagation.
        let floor = d_video.mft() + (d_voice.c(0) + circ) * 3u64 + d_video.c(0) + link.propagation;
        assert!(
            r.response + Time::from_nanos(1.0) >= floor,
            "bound {} must cover the floor {}",
            r.response,
            floor
        );
    }

    #[test]
    fn lower_priority_flows_do_not_interfere() {
        // Same set-up but the voice flows are *lower* priority than video:
        // only the MFT blocking term remains.
        let (t, fs) = setup(3, Priority(2));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let mut jitters = JitterMap::initial(&fs);
        for v in 1..=3 {
            jitters.set(
                FlowId(v),
                ResourceId::Link { from: SW4, to: SW6 },
                0,
                Time::from_millis(2.0),
                1,
            );
        }
        let r =
            egress_response(&ctx, &jitters, &AnalysisConfig::paper(), FlowId(0), 0, SW4).unwrap();
        let d = ctx.demand(FlowId(0), SW4, SW6);
        let link = t.link_between(SW4, SW6).unwrap();
        assert!(r.response.approx_eq(d.mft() + d.c(0) + link.propagation));
    }

    #[test]
    fn equal_priority_flows_do_interfere() {
        // hep() includes equal-priority flows, so video at the same priority
        // as the voice flows still pays for them.
        let (t, fs_low) = setup(3, Priority(2));
        let (_, fs_eq) = setup(3, Priority(6));
        let ctx_low = AnalysisContext::new(&t, &fs_low).unwrap();
        let ctx_eq = AnalysisContext::new(&t, &fs_eq).unwrap();
        let mk_jitters = |fs: &FlowSet| {
            let mut j = JitterMap::initial(fs);
            for v in 1..=3 {
                j.set(
                    FlowId(v),
                    ResourceId::Link { from: SW4, to: SW6 },
                    0,
                    Time::from_millis(2.0),
                    1,
                );
            }
            j
        };
        let cfg = AnalysisConfig::paper();
        let r_low =
            egress_response(&ctx_low, &mk_jitters(&fs_low), &cfg, FlowId(0), 0, SW4).unwrap();
        let r_eq = egress_response(&ctx_eq, &mk_jitters(&fs_eq), &cfg, FlowId(0), 0, SW4).unwrap();
        assert!(r_eq.response > r_low.response);
    }

    #[test]
    fn own_frames_refinement_charges_fragmented_transmission_windows() {
        // The paper-scenario video's I+P frame fragments into dozens of
        // Ethernet frames: under the own-frames refinement its interference
        // window covers its own multi-fragment transmission (during which
        // higher-priority voice packets keep arriving and preempting
        // between fragments) and every fragment pays a fresh blocking
        // opportunity plus one stride round for its own send-task service —
        // the bound grows strictly.  The printed equations treat the packet
        // as an atom after `w(q)` and never charge its own CIRC waits.
        let (t, fs) = setup(3, Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let mut jitters = JitterMap::initial(&fs);
        for v in 1..=3 {
            jitters.set(
                FlowId(v),
                ResourceId::Link { from: SW4, to: SW6 },
                0,
                Time::from_millis(2.0),
                1,
            );
        }
        let printed = AnalysisConfig::paper();
        let refined = AnalysisConfig {
            refine_egress_own_frames: true,
            ..AnalysisConfig::paper()
        };
        let r_printed = egress_response(&ctx, &jitters, &printed, FlowId(0), 0, SW4).unwrap();
        let r_refined = egress_response(&ctx, &jitters, &refined, FlowId(0), 0, SW4).unwrap();
        assert!(
            r_refined.response > r_printed.response,
            "refined {} must exceed printed {}",
            r_refined.response,
            r_printed.response
        );
        // The growth covers at least the extra per-fragment blocking plus
        // one CIRC send-wait per own Ethernet frame.
        let d = ctx.demand(FlowId(0), SW4, SW6);
        let circ = t.circ(SW4).unwrap();
        let n0 = d.n_ethernet_frames(0);
        let floor = d.mft() * (n0 - 1) + circ * n0;
        assert!(r_refined.response + Time::from_nanos(1.0) >= r_printed.response + floor);

        // A single-frame packet in a one-instance busy period gains exactly
        // its own send-task stride-round wait (one CIRC): the printed form
        // is otherwise already sound for unfragmented frames.
        let r_voice_printed = egress_response(&ctx, &jitters, &printed, FlowId(1), 0, SW4).unwrap();
        let r_voice_refined = egress_response(&ctx, &jitters, &refined, FlowId(1), 0, SW4).unwrap();
        if r_voice_printed.instances == 1 && r_voice_refined.instances == 1 {
            assert!(
                r_voice_refined.response + Time::from_nanos(1.0) >= r_voice_printed.response + circ
            );
        } else {
            assert!(r_voice_refined.response >= r_voice_printed.response);
        }
    }

    #[test]
    fn second_switch_uses_its_own_link_speed() {
        let (t, fs) = setup(0, Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        let cfg = AnalysisConfig::paper();
        // switch6 -> host3 is a 10 Mbit/s access link, so the bound there is
        // larger than on the 100 Mbit/s backbone.
        let r_backbone = egress_response(&ctx, &jitters, &cfg, FlowId(0), 0, SW4).unwrap();
        let r_access = egress_response(&ctx, &jitters, &cfg, FlowId(0), 0, SW6).unwrap();
        assert!(r_access.response > r_backbone.response);
    }

    #[test]
    fn overload_by_higher_priority_traffic_detected() {
        // Enough high-priority HD video through the shared 100 Mbit/s
        // backbone link to saturate it.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video_route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        let victim = cbr_flow(
            "victim",
            1000,
            Time::from_millis(10.0),
            Time::from_millis(50.0),
            Time::ZERO,
        );
        fs.add(victim, video_route, Priority(1));
        let cross_route = shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap();
        for i in 0..12 {
            // ~11.8 Mbit/s of wire traffic each.
            let hp = cbr_flow(
                &format!("hp{i}"),
                146_000,
                Time::from_millis(100.0),
                Time::from_millis(200.0),
                Time::ZERO,
            );
            fs.add(hp, cross_route.clone(), Priority(7));
        }
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let err = egress_response(
            &ctx,
            &JitterMap::initial(&fs),
            &AnalysisConfig::paper(),
            FlowId(0),
            0,
            SW4,
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::Overload { .. }));
    }

    #[test]
    fn errors_for_destination_node() {
        let (t, fs) = setup(0, Priority(7));
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let jitters = JitterMap::initial(&fs);
        // host3 has no successor on the route.
        assert!(egress_response(
            &ctx,
            &jitters,
            &AnalysisConfig::paper(),
            FlowId(0),
            0,
            NodeId(3)
        )
        .is_err());
    }
}
