//! Baseline admission tests the GMF analysis is compared against.
//!
//! The paper motivates the generalized multiframe model by pointing out
//! that MPEG video is badly described by the sporadic model: collapsing a
//! GOP to a single "worst frame at the densest rate" over-approximates the
//! demand enormously.  Two baselines make that argument quantitative in
//! experiment E8:
//!
//! * [`sporadic_collapse`] — replace every flow by its sporadic
//!   over-approximation (largest payload, densest inter-arrival, tightest
//!   deadline, largest jitter) and run *the same* holistic analysis.  This
//!   is what classic holistic schedulability analysis (Tindell & Clark)
//!   would do with this traffic.
//! * [`utilization_check`] — a necessary-but-not-sufficient test that only
//!   checks the long-run utilization conditions (paper eqs. (20)/(34)) on
//!   every link and every switch CPU.  Any flow set the response-time
//!   analysis accepts passes this check, so the gap between the two
//!   measures the value of doing real response-time analysis.

use crate::config::AnalysisConfig;
use crate::context::AnalysisContext;
use crate::error::AnalysisError;
use crate::holistic::analyze;
use crate::report::AnalysisReport;
use gmf_net::{FlowSet, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// Replace every flow of `flows` by its sporadic over-approximation,
/// keeping routes, priorities and packetization.
pub fn sporadic_collapse(flows: &FlowSet) -> FlowSet {
    let mut collapsed = FlowSet::new();
    for binding in flows.bindings() {
        collapsed.add_with_encapsulation(
            binding.flow.to_sporadic_overapproximation(),
            binding.route.clone(),
            binding.priority,
            binding.encapsulation,
        );
    }
    collapsed
}

/// Run the holistic analysis on the sporadic collapse of `flows`.
pub fn analyze_sporadic_baseline(
    topology: &Topology,
    flows: &FlowSet,
    config: &AnalysisConfig,
) -> Result<AnalysisReport, AnalysisError> {
    analyze(topology, &sporadic_collapse(flows), config)
}

/// The outcome of the pure utilization check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationCheck {
    /// Per-link utilization `Σ CSUM/TSUM` over the flows using the link.
    pub link_utilization: Vec<(NodeId, NodeId, f64)>, // tidy-allow: float utilization ratio, not a bound
    /// Per-switch routing-CPU utilization
    /// `Σ NSUM·CIRC/TSUM` over the flows entering the switch.
    pub switch_utilization: Vec<(NodeId, f64)>, // tidy-allow: float utilization ratio, not a bound
    /// `true` if every utilization is strictly below 1.
    pub feasible: bool,
}

impl UtilizationCheck {
    /// The largest utilization of any link.
    // tidy-allow: float utilization ratio, not a bound
    pub fn max_link_utilization(&self) -> f64 {
        self.link_utilization
            .iter()
            .map(|&(_, _, u)| u)
            .fold(0.0, f64::max) // tidy-allow: float utilization ratio, not a bound
    }

    /// The largest utilization of any switch CPU.
    // tidy-allow: float utilization ratio, not a bound
    pub fn max_switch_utilization(&self) -> f64 {
        self.switch_utilization
            .iter()
            .map(|&(_, u)| u)
            .fold(0.0, f64::max) // tidy-allow: float utilization ratio, not a bound
    }
}

/// Check the long-run utilization of every used link and every traversed
/// switch CPU.  This is a *necessary* condition for schedulability only.
pub fn utilization_check(
    topology: &Topology,
    flows: &FlowSet,
) -> Result<UtilizationCheck, AnalysisError> {
    let ctx = AnalysisContext::new(topology, flows)?;

    let mut link_utilization = Vec::new();
    for (from, to) in flows.used_links() {
        let on_link = flows.flows_on_link(from, to);
        let u = ctx.link_utilization(&on_link, from, to);
        link_utilization.push((from, to, u));
    }

    // Per switch: the CPU serves one routing task per input interface; the
    // long-run demand of a flow entering through interface (prec -> switch)
    // is NSUM service rounds of CIRC every TSUM.
    let mut switch_utilization = Vec::new();
    for switch in topology.switches() {
        let through = flows.flows_through_node(switch);
        if through.is_empty() {
            continue;
        }
        let circ = topology.circ(switch)?;
        let mut u = 0.0;
        for id in through {
            let binding = flows.get(id)?;
            let prec = binding.route.predecessor(switch)?;
            let d = ctx.demand(id, prec, switch);
            // tidy-allow: float, cast round-count to ratio conversion for the overload check only
            u += d.nsum() as f64 * circ.as_secs() / d.tsum().as_secs();
        }
        switch_utilization.push((switch, u));
    }

    let feasible = link_utilization.iter().all(|&(_, _, u)| u < 1.0)
        && switch_utilization.iter().all(|&(_, u)| u < 1.0);

    Ok(UtilizationCheck {
        link_utilization,
        switch_utilization,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{cbr_flow, paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, Priority};

    fn scenario() -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(5),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        (t, fs)
    }

    #[test]
    fn sporadic_collapse_preserves_structure_and_inflates_demand() {
        let (_, fs) = scenario();
        let collapsed = sporadic_collapse(&fs);
        assert_eq!(collapsed.len(), fs.len());
        for (a, b) in fs.bindings().iter().zip(collapsed.bindings()) {
            assert_eq!(a.route, b.route);
            assert_eq!(a.priority, b.priority);
            assert_eq!(b.flow.n_frames(), 1);
            assert!(b.flow.mean_payload_rate_bps() >= a.flow.mean_payload_rate_bps());
        }
        // The video flow collapses to "43 kB every 30 ms", roughly a 3×
        // inflation of its long-run rate (131 kB / 270 ms -> 43 kB / 30 ms).
        let video = &collapsed.bindings()[0].flow;
        assert!(
            video.mean_payload_rate_bps() > 2.5 * fs.bindings()[0].flow.mean_payload_rate_bps()
        );
    }

    #[test]
    fn sporadic_baseline_is_more_pessimistic_than_gmf() {
        let (t, fs) = scenario();
        let cfg = AnalysisConfig::paper();
        let gmf = analyze(&t, &fs, &cfg).unwrap();
        let sporadic = analyze_sporadic_baseline(&t, &fs, &cfg).unwrap();
        // The GMF analysis accepts the paper scenario.
        assert!(gmf.schedulable);
        // The sporadic collapse of the video flow (43 kB every 30 ms over a
        // 10 Mbit/s access link) is overloaded: the baseline cannot even
        // bound it.
        assert!(!sporadic.schedulable);
    }

    #[test]
    fn utilization_check_on_feasible_scenario() {
        let (t, fs) = scenario();
        let check = utilization_check(&t, &fs).unwrap();
        assert!(check.feasible);
        assert!(check.max_link_utilization() < 1.0);
        assert!(check.max_link_utilization() > 0.1); // the 10 Mbit/s access link carries ~3.9 Mbit/s
        assert!(check.max_switch_utilization() < 0.2);
        // Every used link got an entry; both switches on the routes too.
        assert_eq!(check.link_utilization.len(), fs.used_links().len());
        assert_eq!(check.switch_utilization.len(), 2);
    }

    #[test]
    fn utilization_check_detects_overload() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        for i in 0..3 {
            let f = cbr_flow(
                &format!("bulk{i}"),
                55_000,
                Time::from_millis(100.0),
                Time::from_millis(400.0),
                Time::ZERO,
            );
            fs.add(f, route.clone(), Priority(4));
        }
        let check = utilization_check(&t, &fs).unwrap();
        assert!(!check.feasible);
        assert!(check.max_link_utilization() >= 1.0);
    }

    #[test]
    fn utilization_is_necessary_for_schedulability() {
        // Whatever the response-time analysis accepts must pass the
        // utilization check (the converse does not hold).
        let (t, fs) = scenario();
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        let check = utilization_check(&t, &fs).unwrap();
        assert!(report.schedulable);
        assert!(check.feasible);
    }

    #[test]
    fn empty_flow_set_is_feasible() {
        let (t, _) = scenario();
        let check = utilization_check(&t, &FlowSet::new()).unwrap();
        assert!(check.feasible);
        assert!(check.link_utilization.is_empty());
        assert!(check.switch_utilization.is_empty());
        assert_eq!(check.max_link_utilization(), 0.0);
        assert_eq!(check.max_switch_utilization(), 0.0);
    }
}
