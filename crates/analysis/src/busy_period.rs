//! Monotone fixed-point iteration, the numerical workhorse of the analysis.
//!
//! Every response-time equation of the paper ((15), (17), (22), (24), (29),
//! (31)) has the form `x = f(x)` where `f` is monotone non-decreasing in
//! `x` (interference can only grow when the window grows).  Starting from a
//! seed below the least fixed point and iterating therefore converges to
//! the least fixed point, diverges beyond any bound (overload), or — purely
//! numerically — oscillates within floating-point noise.  [`fixed_point`]
//! handles all three cases: it converges when two successive iterates agree
//! within [`gmf_model::units::TIME_RELATIVE_EPSILON`], reports
//! [`FixedPointOutcome::ExceededHorizon`] when the iterate passes the
//! configured horizon, and gives up after a configured iteration budget.

use gmf_model::Time;

/// Result of a fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FixedPointOutcome {
    /// The iteration converged to the returned value.
    Converged(Time),
    /// The iterate exceeded the divergence horizon.
    ExceededHorizon {
        /// The last iterate (already beyond the horizon).
        last: Time,
    },
    /// The iteration budget was exhausted without convergence.
    IterationBudgetExhausted {
        /// The last iterate.
        last: Time,
    },
}

impl FixedPointOutcome {
    /// The converged value, if any.
    pub fn converged(self) -> Option<Time> {
        match self {
            FixedPointOutcome::Converged(t) => Some(t),
            _ => None,
        }
    }
}

/// Iterate `x_{v+1} = f(x_v)` from `seed` until convergence, the `horizon`
/// is exceeded, or `max_iterations` have been performed.
pub fn fixed_point(
    seed: Time,
    horizon: Time,
    max_iterations: usize,
    mut f: impl FnMut(Time) -> Time,
) -> FixedPointOutcome {
    let mut current = seed;
    for _ in 0..max_iterations {
        if current > horizon {
            return FixedPointOutcome::ExceededHorizon { last: current };
        }
        let next = f(current);
        // A non-finite iterate means a request-bound term overflowed the
        // representable range; the true fixed point (if any) is beyond every
        // horizon, so report a loud divergence instead of iterating on inf
        // or NaN.  This keeps overflow deterministic in every build profile.
        if !next.is_finite() {
            return FixedPointOutcome::ExceededHorizon { last: Time::MAX };
        }
        if next.approx_eq(current) {
            return FixedPointOutcome::Converged(next);
        }
        // Monotonicity sanity check: the recurrences of the paper never
        // shrink once started from a valid seed.  A decrease indicates a
        // bug in a request-bound function, so fail loudly in debug builds.
        debug_assert!(
            next >= current || next.approx_eq(current),
            "fixed-point iterate decreased from {current} to {next}"
        );
        current = next;
    }
    FixedPointOutcome::IterationBudgetExhausted { last: current }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_simple_recurrence() {
        // x = 1 + 0.5 x  =>  x* = 2.
        let outcome = fixed_point(Time::ZERO, Time::from_secs(100.0), 1000, |x| {
            Time::from_secs(1.0) + x * 0.5
        });
        let value = outcome.converged().expect("must converge");
        assert!(value.approx_eq(Time::from_secs(2.0)));
    }

    #[test]
    fn converges_immediately_at_a_fixed_point_seed() {
        let outcome = fixed_point(Time::from_secs(2.0), Time::from_secs(100.0), 10, |x| x);
        assert_eq!(outcome.converged(), Some(Time::from_secs(2.0)));
    }

    #[test]
    fn detects_horizon_excess() {
        // x = x + 1 diverges.
        let outcome = fixed_point(Time::ZERO, Time::from_secs(10.0), 1_000_000, |x| {
            x + Time::from_secs(1.0)
        });
        match outcome {
            FixedPointOutcome::ExceededHorizon { last } => assert!(last > Time::from_secs(10.0)),
            other => panic!("expected horizon excess, got {other:?}"),
        }
        assert!(outcome.converged().is_none());
    }

    #[test]
    fn exhausts_iteration_budget_on_slow_convergence() {
        // Converges to 2 but needs more iterations than allowed because each
        // step only closes 1% of the remaining gap (far slower than the
        // epsilon tolerance within 3 iterations).
        let outcome = fixed_point(Time::ZERO, Time::from_secs(100.0), 3, |x| {
            x + (Time::from_secs(2.0) - x) * 0.01
        });
        assert!(matches!(
            outcome,
            FixedPointOutcome::IterationBudgetExhausted { .. }
        ));
    }

    #[test]
    fn ceiling_style_recurrence_matches_classic_response_time() {
        // Classic single-processor response-time analysis:
        //   task under analysis: C = 2, higher-priority task: C = 1, T = 4.
        //   R = 2 + ceil(R / 4) * 1  =>  R = 3.
        let outcome = fixed_point(Time::from_secs(2.0), Time::from_secs(100.0), 100, |r| {
            let jobs = (r.as_secs() / 4.0).ceil().max(1.0);
            Time::from_secs(2.0) + Time::from_secs(jobs)
        });
        assert!(outcome.converged().unwrap().approx_eq(Time::from_secs(3.0)));
    }
}
