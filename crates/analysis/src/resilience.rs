//! Survivability analysis: "does the network *stay* schedulable after a
//! failure?"
//!
//! The paper answers schedulability for a fixed topology.  This module
//! answers the operational follow-up: given an admitted flow set, enumerate
//! every single-failure scenario — each full-duplex cable cut, each switch
//! CPU degraded by each configured factor — and decide for each one whether
//! the surviving network still carries every flow within its deadline.
//!
//! # The incremental sweep
//!
//! A cold answer would re-run the whole holistic analysis once per scenario.
//! [`SurvivabilityAnalysis`] instead reuses the admission plane's warm
//! machinery, per scenario:
//!
//! 1. apply the fault to a scratch copy of the topology and materialise the
//!    [`gmf_net::SurvivorView`];
//! 2. *release* — in one [`AdmissionController::release_batch`] — every
//!    shard that contains a flow touching a dirty node (a failed cable's
//!    endpoint or a degraded switch): exactly the flows whose bounds the
//!    failure (or the departures and re-routes it forces) can change;
//! 3. [`AdmissionController::rebase`] the controller onto the survivor
//!    topology — sound because every retained flow's route provably
//!    traverses only unchanged hardware, so the warm cache stays valid
//!    verbatim;
//! 4. re-admit the released flows in ascending id order through the warm,
//!    shard-scoped [`AdmissionController::request_batch`] — severed flows
//!    over their shortest-path fallback route
//!    ([`gmf_net::reroute_severed`]), the rest over their original route;
//!    stranded flows (no surviving route) stay out.
//!
//! # Why incremental equals cold
//!
//! The verdict must be byte-identical to a cold [`crate::holistic::analyze`]
//! of the re-routed survivor set.  Two established properties carry the
//! argument:
//!
//! * **warm == cold per trial** (PRs 3/7, property-tested): every warm
//!   shard-scoped trial decision and bound is byte-identical to a cold
//!   analysis of the same trial set;
//! * **monotonicity in the flow set**: adding a flow never decreases any
//!   bound, so every subset of a schedulable set is schedulable.
//!
//! If the cold survivor set is schedulable, each re-admission's trial set is
//! a subset of it, hence schedulable — every re-admission is accepted and
//! the final per-shard state is the cold analysis of the survivor set.  If
//! every re-admission is accepted, the final accepted set *is* the survivor
//! set and its per-shard warm analyses certify it schedulable.
//! Contrapositively both directions agree on "not schedulable", and at least
//! one re-admission is rejected in that case.

use crate::admission::{AdmissionController, AdmissionRequest, PreloadStats};
use crate::config::AnalysisConfig;
use crate::error::AnalysisError;
use crate::report::AnalysisReport;
use gmf_model::{FlowId, Time};
use gmf_net::{reroute_severed, FlowSet, NetError, NodeId, Route, SwitchConfig, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One injectable single-failure scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureScenario {
    /// The full-duplex cable between the two nodes is cut (both directions).
    CableCut {
        /// One cable endpoint (the smaller node id, by construction).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The switch's CPU slows down: its installed `CROUTE`/`CSEND` are
    /// multiplied by `factor` (thermal throttling, a failed core's load
    /// landing on the survivor, ...).
    SwitchDegrade {
        /// The degraded switch.
        switch: NodeId,
        /// The integer slowdown factor (≥ 2 to model a real degradation).
        factor: u64,
    },
}

impl FailureScenario {
    /// Record this fault in the topology's failure overlay.
    pub fn apply(&self, topology: &mut Topology) -> Result<(), NetError> {
        match self {
            FailureScenario::CableCut { a, b } => topology.fail_link(*a, *b),
            FailureScenario::SwitchDegrade { switch, factor } => {
                let installed = *topology
                    .switch_config(*switch)
                    .ok_or(NetError::NotASwitch(*switch))?;
                let degraded = SwitchConfig {
                    croute: installed.croute * *factor,
                    csend: installed.csend * *factor,
                    processors: installed.processors,
                };
                topology.degrade_switch(*switch, degraded).map(|_| ())
            }
        }
    }

    /// A short deterministic label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            FailureScenario::CableCut { a, b } => format!("cut({},{})", a.0, b.0),
            FailureScenario::SwitchDegrade { switch, factor } => {
                format!("degrade({},x{})", switch.0, factor)
            }
        }
    }

    /// The scenario family, for aggregated tables.
    pub fn kind(&self) -> &'static str {
        match self {
            FailureScenario::CableCut { .. } => "cable-cut",
            FailureScenario::SwitchDegrade { .. } => "cpu-degrade",
        }
    }
}

/// Enumerate every single-failure scenario of a topology: one
/// [`FailureScenario::CableCut`] per full-duplex cable (unordered endpoint
/// pair, ascending) followed by one [`FailureScenario::SwitchDegrade`] per
/// switch per entry of `degrade_factors` (switches ascending, factors in the
/// order given).
pub fn single_failure_scenarios(
    topology: &Topology,
    degrade_factors: &[u64],
) -> Vec<FailureScenario> {
    let mut cables: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for link in topology.links() {
        let key = if link.src <= link.dst {
            (link.src, link.dst)
        } else {
            (link.dst, link.src)
        };
        cables.insert(key);
    }
    let mut scenarios: Vec<FailureScenario> = cables
        .into_iter()
        .map(|(a, b)| FailureScenario::CableCut { a, b })
        .collect();
    for switch in topology.switches() {
        for &factor in degrade_factors {
            scenarios.push(FailureScenario::SwitchDegrade { switch, factor });
        }
    }
    scenarios
}

/// The verdict of one failure scenario, produced by the incremental path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureVerdict {
    /// The scenario this verdict is about.
    pub scenario: FailureScenario,
    /// `true` if no flow is stranded *and* the survivor set is schedulable:
    /// the network absorbs the failure with every admitted flow intact.
    pub survivable: bool,
    /// `true` if the re-routed survivor set (stranded flows dropped) is
    /// schedulable — byte-identical to a cold analysis of that set.
    pub survivor_schedulable: bool,
    /// Flows with no surviving route (original ids, ascending).
    pub stranded: Vec<FlowId>,
    /// Severed flows that found a fallback route (original ids, ascending).
    pub rerouted: Vec<FlowId>,
    /// Re-admissions the survivor network rejected (original ids).
    pub rejected: Vec<FlowId>,
    /// How many flows the incremental path released and re-verified — the
    /// sweep's unit of work, versus `n_accepted` for a cold re-analysis.
    pub reverified: usize,
    /// The survivor set's smallest worst-case slack when it is schedulable
    /// (how much headroom the failure leaves), `None` otherwise.
    pub margin: Option<Time>,
    /// Per-flow per-frame response-time bounds of the survivor set, keyed
    /// by *original* flow id — populated only when the survivor set is
    /// schedulable (partial bounds are not comparable).
    pub bounds: BTreeMap<FlowId, Vec<Time>>,
    /// Original id → trial id of every re-admitted flow, in request order.
    pub id_map: Vec<(FlowId, FlowId)>,
    /// Total holistic rounds across the scenario's re-admissions.
    pub rounds: usize,
    /// Total per-flow pipeline analyses across the re-admissions.
    pub flow_analyses: usize,
}

/// A cold-path verdict of the same scenario, for cross-checking.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdVerdict {
    /// `true` if the cold analysis of the re-routed survivor set is
    /// schedulable.
    pub schedulable: bool,
    /// Flows with no surviving route (original ids, ascending).
    pub stranded: Vec<FlowId>,
    /// The survivor set's smallest worst-case slack when schedulable.
    pub margin: Option<Time>,
    /// Per-flow per-frame bounds, keyed by original flow id (populated
    /// only when schedulable, mirroring [`FailureVerdict::bounds`]).
    pub bounds: BTreeMap<FlowId, Vec<Time>>,
    /// The full cold report of the survivor set.
    pub report: AnalysisReport,
}

/// The outcome of a whole single-failure sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurvivabilityReport {
    /// One verdict per scenario, in scenario order.
    pub verdicts: Vec<FailureVerdict>,
}

impl SurvivabilityReport {
    /// Number of scenarios assessed.
    pub fn n_scenarios(&self) -> usize {
        self.verdicts.len()
    }

    /// Scenarios the network absorbs with every flow intact.
    pub fn n_survivable(&self) -> usize {
        self.verdicts.iter().filter(|v| v.survivable).count()
    }

    /// Scenarios that strand at least one flow.
    pub fn n_stranding(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| !v.stranded.is_empty())
            .count()
    }

    /// The tightest margin over all survivable scenarios — the failure that
    /// leaves the least headroom.
    pub fn worst_margin(&self) -> Option<Time> {
        self.verdicts
            .iter()
            .filter(|v| v.survivable)
            .filter_map(|v| v.margin)
            .min()
    }

    /// Total holistic rounds across every scenario's re-admissions.
    pub fn total_rounds(&self) -> usize {
        self.verdicts.iter().map(|v| v.rounds).sum()
    }

    /// Total per-flow analyses across every scenario's re-admissions.
    pub fn total_flow_analyses(&self) -> usize {
        self.verdicts.iter().map(|v| v.flow_analyses).sum()
    }

    /// Total flows released + re-verified across scenarios.
    pub fn total_reverified(&self) -> usize {
        self.verdicts.iter().map(|v| v.reverified).sum()
    }
}

/// The survivability analysis of one admitted flow set: a pristine warm
/// [`AdmissionController`] that each scenario assessment clones, mutates
/// and discards — the sweep never pays for more than the failure's shards.
#[derive(Debug, Clone)]
pub struct SurvivabilityAnalysis {
    controller: AdmissionController,
}

impl SurvivabilityAnalysis {
    /// Verify `accepted` on `topology` (shard-parallel, like
    /// [`AdmissionController::with_accepted`]) and seed the pristine warm
    /// state every scenario starts from.
    pub fn new(
        topology: Topology,
        accepted: FlowSet,
        config: AnalysisConfig,
    ) -> Result<(Self, PreloadStats), AnalysisError> {
        let (controller, stats) = AdmissionController::with_accepted(topology, accepted, config)?;
        Ok((SurvivabilityAnalysis { controller }, stats))
    }

    /// Wrap an existing controller (it should be warm and preloaded: a
    /// cold or cache-less controller still yields correct verdicts, only
    /// slower and without incremental margins).
    pub fn from_controller(controller: AdmissionController) -> Self {
        SurvivabilityAnalysis { controller }
    }

    /// The pristine baseline controller.
    pub fn controller(&self) -> &AdmissionController {
        &self.controller
    }

    /// Assess one failure scenario incrementally (steps 1–4 of the module
    /// docs): release the affected shards, rebase onto the survivor,
    /// re-admit rerouted and re-verified flows warm, and report the
    /// verdict with margins and per-flow bounds.
    pub fn assess(&self, scenario: &FailureScenario) -> Result<FailureVerdict, AnalysisError> {
        let mut faulty = self.controller.topology().clone();
        scenario.apply(&mut faulty).map_err(AnalysisError::Net)?;
        let survivor = faulty.survivor();
        let accepted = self.controller.accepted();

        // Everything the failure can influence: the full shard of every
        // flow that touches a dirty node.  Releasing whole shards keeps
        // the remaining cache exactly valid (release_batch's invalidation
        // union stays inside the released set), so every retained flow's
        // cached report is still the cold truth after the rebase.
        let touched = survivor.affected_flows(accepted);
        let mut release: BTreeSet<FlowId> = BTreeSet::new();
        for &id in &touched {
            match self
                .controller
                .partition()
                .shard_of(id)
                .and_then(|shard| self.controller.partition().shard_flows(shard))
            {
                Some(members) => release.extend(members.iter().copied()),
                None => {
                    release.insert(id);
                }
            }
        }
        let release_order: Vec<FlowId> = release.iter().copied().collect();

        let outcomes = reroute_severed(&survivor, accepted);
        let stranded: Vec<FlowId> = outcomes
            .iter()
            .filter(|o| o.is_stranded())
            .map(|o| o.id())
            .collect();
        let mut fallback_routes: BTreeMap<FlowId, Route> = outcomes
            .iter()
            .filter_map(|o| o.route().map(|r| (o.id(), r.clone())))
            .collect();
        let rerouted: Vec<FlowId> = fallback_routes.keys().copied().collect();

        let mut ctl = self.controller.clone();
        ctl.release_batch(&release_order)?;
        ctl.rebase(survivor.topology().clone())?;

        let stranded_set: BTreeSet<FlowId> = stranded.iter().copied().collect();
        let mut originals: Vec<FlowId> = Vec::with_capacity(release_order.len());
        let mut requests: Vec<AdmissionRequest> = Vec::with_capacity(release_order.len());
        for &id in &release_order {
            if stranded_set.contains(&id) {
                continue;
            }
            let binding = accepted.get(id).map_err(AnalysisError::Net)?;
            let route = fallback_routes
                .remove(&id)
                .unwrap_or_else(|| binding.route.clone());
            originals.push(id);
            requests.push(
                AdmissionRequest::new(binding.flow.clone(), route, binding.priority)
                    .with_encapsulation(binding.encapsulation),
            );
        }
        let decisions = ctl.request_batch(requests)?;

        let mut rejected: Vec<FlowId> = Vec::new();
        let mut id_map: Vec<(FlowId, FlowId)> = Vec::with_capacity(decisions.len());
        let mut rounds = 0usize;
        let mut flow_analyses = 0usize;
        for (&original, decision) in originals.iter().zip(&decisions) {
            id_map.push((original, decision.id()));
            rounds += decision.cost().rounds;
            flow_analyses += decision.cost().flow_analyses;
            if !decision.is_accepted() {
                rejected.push(original);
            }
        }
        let survivor_schedulable = rejected.is_empty();
        let survivable = survivor_schedulable && stranded.is_empty();

        // Margins and bounds, keyed back to original ids.  The cached
        // reports cover the whole survivor set here (retained flows kept
        // theirs, re-admissions refreshed the rest); if the cache was
        // dropped along the way (possible only without dependency
        // information), fall back to one explicit re-analysis.
        let mut margin = None;
        let mut bounds: BTreeMap<FlowId, Vec<Time>> = BTreeMap::new();
        if survivor_schedulable {
            let back: BTreeMap<FlowId, FlowId> =
                id_map.iter().map(|&(orig, new)| (new, orig)).collect();
            let cached: BTreeMap<FlowId, Vec<Time>> = ctl
                .cached_reports()
                .map(|(id, report)| (id, report.frames.iter().map(|f| f.bound).collect()))
                .collect();
            let complete = cached.len() == ctl.n_accepted();
            let slacks_and_bounds: Vec<(FlowId, Option<Time>, Vec<Time>)> = if complete {
                ctl.cached_reports()
                    .map(|(id, report)| {
                        (
                            *back.get(&id).unwrap_or(&id),
                            report.worst_slack(),
                            report.frames.iter().map(|f| f.bound).collect(),
                        )
                    })
                    .collect()
            } else {
                let report = ctl.reanalyze()?;
                report
                    .flows
                    .iter()
                    .map(|flow| {
                        (
                            *back.get(&flow.flow).unwrap_or(&flow.flow),
                            flow.worst_slack(),
                            flow.frames.iter().map(|f| f.bound).collect(),
                        )
                    })
                    .collect()
            };
            margin = slacks_and_bounds.iter().filter_map(|(_, s, _)| *s).min();
            for (id, _, b) in slacks_and_bounds {
                bounds.insert(id, b);
            }
        }

        Ok(FailureVerdict {
            scenario: *scenario,
            survivable,
            survivor_schedulable,
            stranded,
            rerouted,
            rejected,
            reverified: release_order.len(),
            margin,
            bounds,
            id_map,
            rounds,
            flow_analyses,
        })
    }

    /// Assess every scenario in order.
    pub fn sweep(
        &self,
        scenarios: &[FailureScenario],
    ) -> Result<SurvivabilityReport, AnalysisError> {
        let verdicts = scenarios
            .iter()
            .map(|s| self.assess(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SurvivabilityReport { verdicts })
    }

    /// The cold oracle: build the re-routed survivor flow set (original
    /// ids, stranded flows dropped) and analyse it from scratch on the
    /// survivor topology.  [`FailureVerdict::survivor_schedulable`],
    /// margins and bounds must match this byte for byte.
    pub fn cold_verdict(&self, scenario: &FailureScenario) -> Result<ColdVerdict, AnalysisError> {
        let mut faulty = self.controller.topology().clone();
        scenario.apply(&mut faulty).map_err(AnalysisError::Net)?;
        let survivor = faulty.survivor();
        let accepted = self.controller.accepted();
        let outcomes = reroute_severed(&survivor, accepted);
        let mut set = accepted.clone();
        let mut stranded = Vec::new();
        for outcome in outcomes {
            let mut binding = set.remove(outcome.id()).map_err(AnalysisError::Net)?;
            match outcome {
                gmf_net::RerouteOutcome::Rerouted { route, .. } => {
                    binding.route = route;
                    set.insert(binding).map_err(AnalysisError::Net)?;
                }
                gmf_net::RerouteOutcome::Stranded { id, .. } => stranded.push(id),
            }
        }
        let report = crate::holistic::analyze(survivor.topology(), &set, self.controller.config())?;
        let mut bounds = BTreeMap::new();
        let mut margin = None;
        if report.schedulable {
            for flow in &report.flows {
                bounds.insert(flow.flow, flow.frames.iter().map(|f| f.bound).collect());
            }
            margin = report.flows.iter().filter_map(|f| f.worst_slack()).min();
        }
        Ok(ColdVerdict {
            schedulable: report.schedulable,
            stranded,
            margin,
            bounds,
            report,
        })
    }
}

/// Compare an incremental verdict against the cold oracle of the same
/// scenario; `None` means byte-identical, `Some` describes the first
/// divergence (the sweep's zero-divergence gate).
pub fn divergence(incremental: &FailureVerdict, cold: &ColdVerdict) -> Option<String> {
    if incremental.survivor_schedulable != cold.schedulable {
        return Some(format!(
            "{}: verdict {} (incremental) vs {} (cold)",
            incremental.scenario.label(),
            incremental.survivor_schedulable,
            cold.schedulable
        ));
    }
    if incremental.stranded != cold.stranded {
        return Some(format!(
            "{}: stranded sets differ",
            incremental.scenario.label()
        ));
    }
    if !incremental.survivor_schedulable {
        return None;
    }
    if incremental.margin != cold.margin {
        return Some(format!(
            "{}: margin {:?} (incremental) vs {:?} (cold)",
            incremental.scenario.label(),
            incremental.margin,
            cold.margin
        ));
    }
    if incremental.bounds != cold.bounds {
        return Some(format!(
            "{}: per-flow bounds differ",
            incremental.scenario.label()
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_model::{paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{shortest_path, LinkProfile, Priority};

    /// h0 - s1 - s2 - h3 with a spare path s1 - s4 - s2, plus h5 on s4.
    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(SwitchConfig::paper(), "s1");
        let s2 = t.add_switch(SwitchConfig::paper(), "s2");
        let h3 = t.add_end_host("h3");
        let s4 = t.add_switch(SwitchConfig::paper(), "s4");
        let h5 = t.add_end_host("h5");
        for (a, b) in [(h0, s1), (s1, s2), (s2, h3), (s1, s4), (s4, s2), (s4, h5)] {
            t.add_duplex_link(a, b, LinkProfile::ethernet_100m())
                .unwrap();
        }
        (t, vec![h0, s1, s2, h3, s4, h5])
    }

    fn accepted_set(t: &Topology, n: &[NodeId]) -> FlowSet {
        let mut flows = FlowSet::new();
        let voice = |name: &str| {
            voip_flow(
                name,
                VoiceCodec::G711,
                Time::from_millis(20.0),
                Time::from_millis(0.5),
            )
        };
        flows.add(
            voice("a"),
            shortest_path(t, n[0], n[3]).unwrap(),
            Priority(7),
        );
        flows.add(
            voice("b"),
            shortest_path(t, n[5], n[0]).unwrap(),
            Priority(6),
        );
        flows.add(
            paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0)),
            shortest_path(t, n[3], n[5]).unwrap(),
            Priority(5),
        );
        flows
    }

    #[test]
    fn enumeration_covers_every_cable_and_degradation_step() {
        let (t, _) = topo();
        let scenarios = single_failure_scenarios(&t, &[2, 4]);
        // 6 cables + 3 switches x 2 factors.
        assert_eq!(scenarios.len(), 6 + 3 * 2);
        assert_eq!(
            scenarios.iter().filter(|s| s.kind() == "cable-cut").count(),
            6
        );
        let labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
        assert!(labels.contains(&"cut(0,1)".to_string()));
        assert!(labels.contains(&"degrade(1,x4)".to_string()));
        // Deterministic: a second enumeration is identical.
        assert_eq!(scenarios, single_failure_scenarios(&t, &[2, 4]));
    }

    #[test]
    fn incremental_verdicts_match_cold_oracle_on_every_single_failure() {
        let (t, n) = topo();
        let flows = accepted_set(&t, &n);
        let (analysis, stats) =
            SurvivabilityAnalysis::new(t.clone(), flows, AnalysisConfig::paper()).unwrap();
        assert!(stats.shards >= 1);
        let scenarios = single_failure_scenarios(&t, &[2, 64]);
        let report = analysis.sweep(&scenarios).unwrap();
        assert_eq!(report.n_scenarios(), scenarios.len());
        for (scenario, verdict) in scenarios.iter().zip(&report.verdicts) {
            let cold = analysis.cold_verdict(scenario).unwrap();
            assert_eq!(
                divergence(verdict, &cold),
                None,
                "scenario {}",
                scenario.label()
            );
        }
        // The spare path keeps every cable cut survivable except the ones
        // that isolate an end host.
        for verdict in &report.verdicts {
            if let FailureScenario::CableCut { a, b } = verdict.scenario {
                let isolates_host = [a, b].iter().any(|&x| x == n[0] || x == n[3] || x == n[5]);
                assert_eq!(
                    verdict.stranded.is_empty(),
                    !isolates_host,
                    "scenario {}",
                    verdict.scenario.label()
                );
            }
        }
        // Survivable scenarios report a margin; at least one cable cut
        // forces a reroute.
        assert!(report.n_survivable() >= 1);
        assert!(report.worst_margin().is_some());
        assert!(report
            .verdicts
            .iter()
            .any(|v| !v.rerouted.is_empty() && v.survivable));
    }

    #[test]
    fn degradation_can_break_schedulability_and_both_paths_agree() {
        let (t, n) = topo();
        let mut flows = FlowSet::new();
        // A tight-deadline voice call straight through s1.
        flows.add(
            voip_flow(
                "tight",
                VoiceCodec::G711,
                Time::from_micros(700.0),
                Time::from_millis(0.1),
            ),
            shortest_path(&t, n[0], n[3]).unwrap(),
            Priority(7),
        );
        let (analysis, _) =
            SurvivabilityAnalysis::new(t.clone(), flows, AnalysisConfig::paper()).unwrap();
        // An extreme slowdown of s1 must flip the verdict; both paths agree.
        let scenario = FailureScenario::SwitchDegrade {
            switch: n[1],
            factor: 100_000,
        };
        let verdict = analysis.assess(&scenario).unwrap();
        let cold = analysis.cold_verdict(&scenario).unwrap();
        assert_eq!(divergence(&verdict, &cold), None);
        assert!(!verdict.survivable);
        assert!(verdict.stranded.is_empty());
        assert_eq!(verdict.rejected.len(), 1);

        // A benign factor keeps it schedulable with a smaller margin than
        // the pristine network's.
        let benign = FailureScenario::SwitchDegrade {
            switch: n[1],
            factor: 2,
        };
        let v2 = analysis.assess(&benign).unwrap();
        assert!(v2.survivable);
        assert_eq!(
            divergence(&v2, &analysis.cold_verdict(&benign).unwrap()),
            None
        );
    }

    #[test]
    fn verdict_serde_roundtrip() {
        let (t, n) = topo();
        let flows = accepted_set(&t, &n);
        let (analysis, _) = SurvivabilityAnalysis::new(t, flows, AnalysisConfig::paper()).unwrap();
        let scenario = FailureScenario::CableCut { a: n[1], b: n[2] };
        let verdict = analysis.assess(&scenario).unwrap();
        let json = serde_json::to_string(&verdict).unwrap();
        let back: FailureVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(verdict, back);
    }
}
