//! A deliberately simple *keyed* reference implementation of the holistic
//! fixed point, kept as the oracle the dense-index engine is verified
//! against.
//!
//! [`analyze_reference`] is the paper's plain sequential Picard scheme
//! built from the boundary-level pieces that never went dense: the keyed
//! [`JitterMap`] (tree-map probes and all) and the per-frame keyed stage
//! walk [`crate::pipeline::analyze_flow`].  It performs no parallelism, no
//! Anderson acceleration, no warm starts and no round skipping — every
//! flow is re-analysed from the keyed map every round.
//!
//! Its value is being *obviously* faithful to the equations: the
//! property tests in `tests/dense_engine_properties.rs` assert that the
//! production engine — dense tables, arena iterates, Arc-shared reports,
//! dirty-flow skipping, any thread count, either strategy — returns an
//! [`AnalysisReport`] byte-identical to this one on random workloads.
//! Keep it slow and transparent; do not optimise it.

use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap};
use crate::error::AnalysisError;
use crate::fixed_point::{ConvergenceTrace, RoundTrace, StepKind};
use crate::pipeline::analyze_flow;
use crate::report::{AnalysisReport, FlowReport};
use gmf_model::Time;
use gmf_net::{FlowSet, Topology};

/// Run the holistic analysis with the keyed reference engine (sequential
/// Picard; `config.strategy`, `config.threads` and
/// `config.skip_unchanged_flows` are deliberately ignored).
///
/// Returns exactly what [`crate::holistic::analyze`] returns for a Picard
/// run — including the iteration count, the per-round residual trace and
/// the failure attribution.
pub fn analyze_reference(
    topology: &Topology,
    flows: &FlowSet,
    config: &AnalysisConfig,
) -> Result<AnalysisReport, AnalysisError> {
    let ctx = AnalysisContext::new(topology, flows)?;
    if flows.is_empty() {
        return Ok(AnalysisReport {
            flows: Vec::new(),
            converged: true,
            iterations: 0,
            schedulable: true,
            failure: None,
            trace: ConvergenceTrace::default(),
        });
    }

    let mut x = JitterMap::initial(flows);
    let mut trace = ConvergenceTrace::default();
    let mut last_reports: Vec<FlowReport> = Vec::new();
    for iteration in 1..=config.max_holistic_iterations {
        // Evaluate G at x: every flow, sequentially, from the keyed map.
        let mut reports = Vec::with_capacity(flows.len());
        let mut next = JitterMap::initial(flows);
        let mut failed: Option<String> = None;
        for binding in flows.bindings() {
            match analyze_flow(&ctx, &x, config, binding.id) {
                Ok((bounds, assignments)) => {
                    let n_frames = bounds.len();
                    for (frame, frame_assignments) in assignments.iter().enumerate() {
                        for &(resource, jitter) in frame_assignments {
                            next.set(binding.id, resource, frame, jitter, n_frames);
                        }
                    }
                    reports.push(FlowReport {
                        flow: binding.id,
                        name: binding.flow.name().to_string(),
                        frames: bounds,
                    });
                }
                Err(err) if err.is_unschedulable() => {
                    failed = Some(err.to_string());
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        if let Some(failure) = failed {
            // The aborted round still counts as a traced iteration.
            trace.rounds.push(RoundTrace {
                iteration,
                residual: Time::ZERO,
                step: StepKind::Picard,
            });
            return Ok(AnalysisReport {
                flows: reports,
                converged: false,
                iterations: iteration,
                schedulable: false,
                failure: Some(failure),
                trace,
            });
        }

        let residual = next.max_abs_diff(&x);
        trace.rounds.push(RoundTrace {
            iteration,
            residual,
            step: StepKind::Picard,
        });
        if next.approx_eq(&x) {
            let schedulable = reports.iter().all(|r| r.meets_all_deadlines());
            let failure = if schedulable {
                None
            } else {
                let miss = reports
                    .iter()
                    .filter(|r| !r.meets_all_deadlines())
                    .map(|r| r.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!("deadline missed by: {miss}"))
            };
            return Ok(AnalysisReport {
                flows: reports,
                converged: true,
                iterations: iteration,
                schedulable,
                failure,
                trace,
            });
        }
        last_reports = reports;
        x = next;
    }

    Ok(AnalysisReport {
        flows: last_reports,
        converged: false,
        iterations: config.max_holistic_iterations,
        schedulable: false,
        failure: Some(
            AnalysisError::HolisticNoConvergence {
                iterations: config.max_holistic_iterations,
            }
            .to_string(),
        ),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holistic::analyze;
    use gmf_model::{paper_figure3_flow, voip_flow, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, Priority};

    #[test]
    fn reference_equals_dense_engine_on_the_paper_scenario() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(5),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let config = AnalysisConfig::paper();
        let reference = analyze_reference(&t, &fs, &config).unwrap();
        let dense = analyze(&t, &fs, &config).unwrap();
        assert_eq!(reference, dense);
        assert!(reference.schedulable);

        // An empty set short-circuits identically.
        let empty = analyze_reference(&t, &FlowSet::new(), &config).unwrap();
        assert_eq!(empty, analyze(&t, &FlowSet::new(), &config).unwrap());
    }

    #[test]
    fn reference_equals_dense_engine_on_unschedulable_sets() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(5.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let config = AnalysisConfig::paper();
        let reference = analyze_reference(&t, &fs, &config).unwrap();
        let dense = analyze(&t, &fs, &config).unwrap();
        assert_eq!(reference, dense);
        assert!(!reference.schedulable);
    }

    #[test]
    fn reference_reports_non_convergence_identically() {
        // A one-round budget on a scenario that needs several rounds.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(5),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let config = AnalysisConfig::paper().with_max_holistic_iterations(1);
        let reference = analyze_reference(&t, &fs, &config).unwrap();
        let dense = analyze(&t, &fs, &config).unwrap();
        assert_eq!(reference, dense);
        assert!(!reference.converged);
    }
}
