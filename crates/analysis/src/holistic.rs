//! Holistic (jitter fixed-point) analysis of a whole flow set — the paper's
//! Section "Putting it all together".
//!
//! The per-resource analyses need the generalized jitter of every
//! *interfering* flow at every resource, but those jitters are themselves
//! response times computed by the same analysis.  Following Tindell &
//! Clark's holistic approach, the paper resolves the circularity by
//! iteration:
//!
//! 1. assume the specified jitter at every flow's source and zero jitter at
//!    every downstream resource;
//! 2. analyse every frame of every flow with the Figure 6 pipeline,
//!    recording the jitter each frame accumulates at each resource;
//! 3. if the recorded jitters differ from the assumed ones, repeat with the
//!    new values.
//!
//! Response times are monotone in the assumed jitters and the jitters are
//! monotone in the response times, so the iteration either converges (all
//! jitters stable within the floating-point tolerance) or grows towards the
//! divergence horizon, in which case a per-resource analysis reports
//! overload / horizon excess and the flow set is declared unschedulable.
//!
//! Within one round the flows are analysed independently against the
//! *previous* round's jitters (Jacobi-style), so every round is
//! deterministic and the per-flow analyses are parallelised by the
//! fixed-point engine without changing any result.  The iteration itself —
//! strategy selection (Picard / safeguarded Anderson(1)), parallel round
//! evaluation and the per-round [`crate::fixed_point::ConvergenceTrace`] —
//! lives in [`crate::fixed_point`]; this module is the public entry point.

use crate::config::AnalysisConfig;
use crate::context::AnalysisContext;
use crate::error::AnalysisError;
use crate::fixed_point::{self, ConvergenceTrace};
use crate::report::AnalysisReport;
use gmf_net::{FlowSet, Topology};

/// Run the holistic analysis of `flows` on `topology`.
///
/// Returns a report for *every* outcome that is a property of the flow set
/// (schedulable, unschedulable because of overload, non-convergence);
/// returns an error only for structural problems such as a route that does
/// not match the topology.
pub fn analyze(
    topology: &Topology,
    flows: &FlowSet,
    config: &AnalysisConfig,
) -> Result<AnalysisReport, AnalysisError> {
    let ctx = AnalysisContext::new(topology, flows)?;

    if flows.is_empty() {
        return Ok(AnalysisReport {
            flows: Vec::new(),
            converged: true,
            iterations: 0,
            schedulable: true,
            failure: None,
            trace: ConvergenceTrace::default(),
        });
    }

    fixed_point::iterate(&ctx, config).map(|run| run.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::JitterMap;
    use crate::pipeline::analyze_flow;
    use gmf_model::{cbr_flow, paper_figure3_flow, voip_flow, FlowId, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, Priority};

    /// The paper scenario: Figure 3 video from host 0 to host 3, a voice
    /// call from host 1 to host 3, and a voice call from host 2 to host 0
    /// (crossing the backbone in the other direction).
    fn paper_scenario() -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(5),
        );
        let voice1 = voip_flow(
            "voice-1-3",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice1,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let voice2 = voip_flow(
            "voice-2-0",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice2,
            shortest_path(&t, net.hosts[2], net.hosts[0]).unwrap(),
            Priority(7),
        );
        (t, fs)
    }

    #[test]
    fn empty_flow_set_is_trivially_schedulable() {
        let (t, _) = paper_figure1();
        let report = analyze(&t, &FlowSet::new(), &AnalysisConfig::paper()).unwrap();
        assert!(report.schedulable);
        assert!(report.converged);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.n_frame_bounds(), 0);
    }

    #[test]
    fn paper_scenario_is_schedulable_and_converges() {
        let (t, fs) = paper_scenario();
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(report.converged, "holistic iteration must converge");
        assert!(report.schedulable, "report: {report}");
        assert!(
            report.iterations >= 2,
            "jitter propagation needs at least two rounds"
        );
        assert_eq!(report.flows.len(), 3);
        assert_eq!(report.n_frame_bounds(), 9 + 1 + 1);
        // The video flow's worst frame is the I+P frame.
        let video = report.flow(FlowId(0)).unwrap();
        assert_eq!(video.worst_bound().unwrap(), video.frames[0].bound);
        // Voice keeps single-digit-millisecond bounds across three hops.
        let voice = report.flow(FlowId(1)).unwrap();
        assert!(voice.worst_bound().unwrap() < Time::from_millis(10.0));
    }

    #[test]
    fn holistic_bounds_dominate_first_round_bounds() {
        // Jitter propagation can only increase bounds, so the converged
        // bounds must dominate a single-round analysis with source jitters
        // only.
        let (t, fs) = paper_scenario();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let config = AnalysisConfig::paper();
        let first_round = JitterMap::initial(&fs);
        let report = analyze(&t, &fs, &config).unwrap();
        for binding in fs.bindings() {
            let (round1, _) = analyze_flow(&ctx, &first_round, &config, binding.id).unwrap();
            let converged = &report.flow(binding.id).unwrap().frames;
            for (a, b) in round1.iter().zip(converged) {
                assert!(
                    b.bound + Time::from_nanos(1.0) >= a.bound,
                    "converged bound {} must dominate first-round bound {}",
                    b.bound,
                    a.bound
                );
            }
        }
    }

    #[test]
    fn tight_deadlines_are_reported_as_missed() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        // A video flow whose 5 ms deadline cannot be met across two
        // 10 Mbit/s access links (a single I+P frame takes ~36 ms to
        // serialise on each).
        let video = paper_figure3_flow("video", Time::from_millis(5.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(report.converged);
        assert!(!report.schedulable);
        assert!(report.failure.as_ref().unwrap().contains("video"));
    }

    #[test]
    fn overload_reports_unschedulable_not_error() {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        // Three flows that each need ~45% of the 10 Mbit/s access link.
        for i in 0..3 {
            let f = cbr_flow(
                &format!("bulk{i}"),
                55_000,
                Time::from_millis(100.0),
                Time::from_millis(400.0),
                Time::from_millis(1.0),
            );
            fs.add(f, route.clone(), Priority(4));
        }
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(!report.schedulable);
        assert!(report.failure.as_ref().unwrap().contains("overloaded"));
    }

    #[test]
    fn conservative_configuration_dominates_paper_configuration() {
        let (t, fs) = paper_scenario();
        let paper = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        let conservative = analyze(&t, &fs, &AnalysisConfig::conservative()).unwrap();
        assert!(paper.converged && conservative.converged);
        for binding in fs.bindings() {
            let a = paper.flow(binding.id).unwrap().worst_bound().unwrap();
            let b = conservative
                .flow(binding.id)
                .unwrap()
                .worst_bound()
                .unwrap();
            assert!(b + Time::from_nanos(1.0) >= a);
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let (t, fs) = paper_scenario();
        let r1 = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        let r2 = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert_eq!(r1, r2);
    }
}
