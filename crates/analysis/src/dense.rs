//! The dense-index data plane of the analysis engine.
//!
//! The keyed view of the analysis state — [`JitterMap`] keyed by
//! `(FlowId, ResourceId)`, [`crate::context::AnalysisContext::demand`]
//! keyed by `(FlowId, NodeId, NodeId)`, `FlowSet::flows_on_link` rescanning
//! every route — is the right interface at the boundary (seeds, caches,
//! reports, serde), but tree-map probes and fresh `Vec` allocations in the
//! busy-period recurrences dominate the cost of a holistic round.  This
//! module interns everything once per analysis:
//!
//! * **Flow and resource interner** — flows get dense indices (their
//!   position in the id-sorted binding list), resources get dense indices
//!   in a sorted table, and every `(flow, resource-on-its-route)` pair gets
//!   a *pair id* addressing a contiguous `n_frames` range of a flat arena.
//! * **[`DenseJitters`]** — the generalized-jitter state as one `Vec<Time>`
//!   arena plus a per-pair running max cache, replacing the `BTreeMap`
//!   probes of [`JitterMap::get`] / [`JitterMap::max_jitter`] with slot
//!   reads.
//! * **Interference tables** — per flow, per stage of its Figure 6 walk:
//!   the interferer list of the stage's underlying link with each
//!   interferer's demand index, jitter pair id and static blocking term,
//!   plus the precomputed utilization of the stage's overload check.  Stage
//!   code iterates a cached slice instead of calling `flows_on_link` /
//!   `hep` and probing demand maps inside fixed-point closures.
//!
//! The plan is immutable for the lifetime of its
//! [`crate::context::AnalysisContext`]; the engine converts the keyed seed
//! to dense form once per run ([`DenseJitters::from_keyed`]) and converts
//! the converged iterate back once at the end ([`DenseJitters::to_keyed`]).
//! Every value it stores or computes is obtained by the same arithmetic, in
//! the same order, as the keyed stage implementations, so bounds are
//! byte-identical (property-tested against the keyed reference engine in
//! `tests/dense_engine_properties.rs`).

use crate::context::{JitterMap, ResourceId};
use crate::error::{AnalysisError, StageKind};
use crate::index::{cx, ux};
use gmf_model::{FlowId, LinkDemand, Time};
use gmf_net::{FlowSet, NodeId, Topology};

/// Sentinel pair id for an interferer that never accumulates jitter at the
/// stage's resource (a flow terminating at the switch whose ingress is
/// analysed): its stored jitter is identically zero.
pub(crate) const NO_PAIR: u32 = u32::MAX;

/// One interfering flow at one stage, fully resolved to dense indices.
#[derive(Debug, Clone)]
pub(crate) struct Interferer {
    /// Index of the interferer's demand on the stage's underlying link.
    pub demand: u32,
    /// Pair id of the interferer's jitter at the stage's resource, or
    /// [`NO_PAIR`] when the interferer stores no jitter there.
    pub pair: u32,
    /// The interferer's largest single-frame transmission time on the
    /// link — the first-hop blocking refinement widens the interference
    /// window by this much (zero for the flow under analysis).
    pub blocking_c: Time,
    /// `true` when the interferer is the flow under analysis itself.
    pub is_self: bool,
}

/// One interference term precompiled for the per-frame kernels: the
/// interferer's demand-table index, its jitter pair and the static
/// blocking widening, laid out contiguously in [`DensePlan::terms`] so a
/// stage build resolves its round-dependent `extra_j` values with one
/// branch-free slice walk (see [`crate::kernel`]).
///
/// `blocking_c` is stored as [`Time::ZERO`] for the flow under analysis,
/// so the first-hop blocking refinement can add it unconditionally —
/// `x + 0.0` is exact in IEEE 754, keeping the walk branchless *and*
/// byte-identical to the keyed `is_self` branch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TermSpec {
    /// Index of the interferer's demand table (same index space as
    /// demands — the interner stores them side by side).
    pub table: u32,
    /// Pair id of the interferer's jitter at the stage's resource.
    pub pair: u32,
    /// Static first-hop blocking widening (zero for self / non-first-hop).
    pub blocking_c: Time,
}

/// One resource of a flow's Figure 6 pipeline walk, with everything its
/// response-time analysis needs precomputed.
#[derive(Debug, Clone)]
pub(crate) struct StagePlan {
    /// Which of the three per-resource analyses applies.
    pub stage: StageKind,
    /// The resource (for report hops and error messages).
    pub resource: ResourceId,
    /// Pair id of the analysed flow's jitter at this resource (where the
    /// pipeline walk records its accumulated `JSUM`).
    pub pair: u32,
    /// Index of the analysed flow's own demand on the stage's link.
    pub own_demand: u32,
    /// The stage's long-run demand (left-hand side of its overload check),
    /// summed in interferer id order exactly as the keyed analyses do.
    pub utilization: f64, // tidy-allow: float utilization ratio, not a bound
    /// Range into [`DensePlan::terms`] with every interferer of the stage
    /// in id order (all flows on the link for first hop / ingress, the
    /// higher-or-equal-priority flows for egress) — the slice the
    /// busy-period kernels walk.
    pub all_terms: std::ops::Range<u32>,
    /// Range into [`DensePlan::terms`] with the non-self interferers in id
    /// order — the slice the `w(q)` kernels walk.  Equal to `all_terms`
    /// for egress stages, whose interferer set never contains self.
    pub other_terms: std::ops::Range<u32>,
    /// `CIRC(N)` of the switch (ingress / egress stages; zero first hop).
    pub circ: Time,
    /// Propagation delay of the traversed link (first hop / egress stages;
    /// zero for ingress, which eq. 26 does not charge).
    pub propagation: Time,
}

/// The dense walk of one flow.
#[derive(Debug, Clone)]
pub(crate) struct FlowPlan {
    /// The flow's id.
    pub id: FlowId,
    /// Number of frames in the flow's GMF cycle.
    pub n_frames: usize,
    /// Pair id of the flow's first-link jitter (seeded with the source
    /// jitter by the initial map).
    pub first_link_pair: u32,
    /// The Figure 6 stages in route order: first hop, then per switch the
    /// ingress stage and the egress link.
    pub stages: Vec<StagePlan>,
    /// Sorted, deduplicated pair ids this flow's analysis reads (the
    /// jitters of every interferer at every stage, including the flow's
    /// own).  Two iterates that agree on these slots yield byte-identical
    /// analyses of the flow — the round-skipping rule of the fixed-point
    /// engine.
    pub input_pairs: Vec<u32>,
}

/// The per-analysis interner and interference tables (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct DensePlan {
    /// All distinct resources of all flows' walks, sorted.
    pub resources: Vec<ResourceId>,
    /// One plan per flow, in binding (id) order.
    pub flows: Vec<FlowPlan>,
    /// Pair id → resource index (into `resources`).
    pub pair_resource: Vec<u32>,
    /// Pair id → first arena slot of its `n_frames` range.
    pub pair_base: Vec<u32>,
    /// Pair id → number of frames (range length).
    pub pair_frames: Vec<u32>,
    /// Total arena length (sum of all pair ranges).
    pub arena_len: usize,
    /// Flat arena of precompiled interference terms; stage plans address
    /// it through their `all_terms` / `other_terms` ranges.
    pub terms: Vec<TermSpec>,
}

impl DensePlan {
    /// Intern `flows` against `topology`: number the resources, lay out the
    /// jitter arena and build every flow's interference tables.  `demands`
    /// receives the per-(flow, link) demands in discovery order; stage
    /// plans reference them by index.
    pub fn build(
        topology: &Topology,
        flows: &FlowSet,
        demands: &mut Vec<LinkDemand>,
        demand_lookup: &mut std::collections::BTreeMap<(FlowId, NodeId, NodeId), u32>,
    ) -> Result<DensePlan, AnalysisError> {
        use std::collections::BTreeMap;

        let bindings = flows.bindings();
        let link_index = flows.link_index();

        // Demands: one per (flow, hop-of-its-route), discovered in binding
        // order (identical coverage to the keyed context).
        for binding in bindings {
            for hop in binding.route.hops() {
                let link = topology.link_between(hop.from, hop.to)?;
                let demand = LinkDemand::new(&binding.flow, &binding.encapsulation, link.speed);
                demand_lookup.insert(
                    (binding.id, hop.from, hop.to),
                    // tidy-allow: unwrap invariant: demand count fits u32
                    u32::try_from(demands.len()).expect("demand count fits u32"),
                );
                demands.push(demand);
            }
        }
        let demand_of =
            |flow: FlowId, from: NodeId, to: NodeId| -> u32 { demand_lookup[&(flow, from, to)] };

        // The resource walk of every flow, in route order.  `walks[i]`
        // aligns with `bindings[i]`.
        let mut walks: Vec<Vec<(ResourceId, NodeId, NodeId)>> = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let route = &binding.route;
            let source = route.source();
            let first_succ = route.successor(source)?;
            let mut walk = vec![(
                ResourceId::Link {
                    from: source,
                    to: first_succ,
                },
                source,
                first_succ,
            )];
            for &switch in route.switches() {
                let prec = route.predecessor(switch)?;
                let succ = route.successor(switch)?;
                walk.push((ResourceId::SwitchIngress { node: switch }, prec, switch));
                walk.push((
                    ResourceId::Link {
                        from: switch,
                        to: succ,
                    },
                    switch,
                    succ,
                ));
            }
            walks.push(walk);
        }

        // Resource interner.
        let mut resources: Vec<ResourceId> = walks
            .iter()
            .flat_map(|walk| walk.iter().map(|&(resource, _, _)| resource))
            .collect();
        resources.sort_unstable();
        resources.dedup();
        let resource_of = |resource: ResourceId| -> u32 {
            u32::try_from(
                resources
                    .binary_search(&resource)
                    // tidy-allow: unwrap invariant: walk resources are interned
                    .expect("walk resources are interned"),
            )
            // tidy-allow: unwrap invariant: resource count fits u32
            .expect("resource count fits u32")
        };

        // Pair layout: one pair per (flow, resource-of-its-walk), arena
        // ranges assigned in walk order.
        let mut pair_resource = Vec::new();
        let mut pair_base = Vec::new();
        let mut pair_frames = Vec::new();
        let mut pair_lookup: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut arena_len = 0u32;
        for (flow_idx, (binding, walk)) in bindings.iter().zip(&walks).enumerate() {
            // tidy-allow: unwrap invariant: frame count fits u32
            let n_frames = u32::try_from(binding.flow.n_frames()).expect("frame count fits u32");
            for &(resource, _, _) in walk {
                // tidy-allow: unwrap invariant: pair count fits u32
                let pair = u32::try_from(pair_resource.len()).expect("pair count fits u32");
                let resource_idx = resource_of(resource);
                pair_lookup.insert((cx(flow_idx), resource_idx), pair);
                pair_resource.push(resource_idx);
                pair_base.push(arena_len);
                pair_frames.push(n_frames);
                arena_len += n_frames;
            }
        }
        // Pair of `flow`'s jitter at `resource`, NO_PAIR when the flow
        // never stores jitter there (reads are then identically zero).
        let flow_idx_of: BTreeMap<FlowId, u32> = bindings
            .iter()
            .enumerate()
            .map(|(i, b)| (b.id, cx(i)))
            .collect();
        let pair_of = |flow: FlowId, resource: ResourceId| -> u32 {
            resources
                .binary_search(&resource)
                .ok()
                .and_then(|resource_idx| {
                    pair_lookup
                        .get(&(flow_idx_of[&flow], cx(resource_idx)))
                        .copied()
                })
                .unwrap_or(NO_PAIR)
        };

        // Per-flow stage plans with interference tables.
        let mut flow_plans = Vec::with_capacity(bindings.len());
        let mut terms: Vec<TermSpec> = Vec::new();
        for (binding, walk) in bindings.iter().zip(&walks) {
            let mut stages = Vec::with_capacity(walk.len());
            let mut input_pairs: Vec<u32> = Vec::new();
            for &(resource, from, to) in walk {
                let (stage, circ, propagation) = match resource {
                    ResourceId::Link { .. } if from == binding.route.source() => (
                        StageKind::FirstHop,
                        Time::ZERO,
                        topology.link_between(from, to)?.propagation,
                    ),
                    ResourceId::Link { .. } => (
                        StageKind::EgressLink,
                        topology.circ(from)?,
                        topology.link_between(from, to)?.propagation,
                    ),
                    ResourceId::SwitchIngress { node } => {
                        (StageKind::SwitchIngress, topology.circ(node)?, Time::ZERO)
                    }
                };

                // Interferer set and overload-check utilization, summed in
                // the same id order as the keyed stage code.
                let on_link = link_index.flows_on_link(from, to);
                let mut interferers = Vec::new();
                // tidy-allow: float utilization is a dimensionless ratio compared against 1.0, not a bound
                let mut utilization = 0.0f64;
                match stage {
                    StageKind::FirstHop => {
                        for &j in on_link {
                            let demand = demand_of(j, from, to);
                            utilization += demands[ux(demand)].utilization();
                            let is_self = j == binding.id;
                            interferers.push(Interferer {
                                demand,
                                pair: pair_of(j, resource),
                                blocking_c: if is_self {
                                    Time::ZERO
                                } else {
                                    demands[ux(demand)].max_c()
                                },
                                is_self,
                            });
                        }
                    }
                    StageKind::SwitchIngress => {
                        for &j in on_link {
                            let demand = demand_of(j, from, to);
                            let d = &demands[ux(demand)];
                            // tidy-allow: float, cast round-count to ratio conversion for the overload check only
                            utilization += d.nsum() as f64 * circ.as_secs() / d.tsum().as_secs();
                            interferers.push(Interferer {
                                demand,
                                pair: pair_of(j, resource),
                                blocking_c: Time::ZERO,
                                is_self: j == binding.id,
                            });
                        }
                    }
                    StageKind::EgressLink => {
                        for &j in on_link {
                            if j == binding.id {
                                continue;
                            }
                            let other = flows.get(j).map_err(AnalysisError::Net)?;
                            if other.priority < binding.priority {
                                continue;
                            }
                            let demand = demand_of(j, from, to);
                            let d = &demands[ux(demand)];
                            // tidy-allow: float, cast round-count to ratio conversion for the overload check only
                            utilization += (d.csum().as_secs() + d.nsum() as f64 * circ.as_secs())
                                / d.tsum().as_secs();
                            interferers.push(Interferer {
                                demand,
                                pair: pair_of(j, resource),
                                blocking_c: Time::ZERO,
                                is_self: false,
                            });
                        }
                    }
                }
                input_pairs.extend(
                    interferers
                        .iter()
                        .map(|i| i.pair)
                        .filter(|&pair| pair != NO_PAIR),
                );
                // Precompile the kernel term slices: all interferers, then
                // (for stages whose w(q) recurrence drops self) the
                // non-self subset, both preserving id order.
                // tidy-allow: unwrap invariant: term count fits u32
                let all_start = u32::try_from(terms.len()).expect("term count fits u32");
                terms.extend(interferers.iter().map(|i| TermSpec {
                    table: i.demand,
                    pair: i.pair,
                    blocking_c: i.blocking_c,
                }));
                // tidy-allow: unwrap invariant: term count fits u32
                let all_end = u32::try_from(terms.len()).expect("term count fits u32");
                let other_terms = if interferers.iter().any(|i| i.is_self) {
                    terms.extend(interferers.iter().filter(|i| !i.is_self).map(|i| TermSpec {
                        table: i.demand,
                        pair: i.pair,
                        blocking_c: i.blocking_c,
                    }));
                    // tidy-allow: unwrap invariant: term count fits u32
                    let other_end = u32::try_from(terms.len()).expect("term count fits u32");
                    all_end..other_end
                } else {
                    all_start..all_end
                };
                stages.push(StagePlan {
                    stage,
                    resource,
                    pair: pair_of(binding.id, resource),
                    own_demand: demand_of(binding.id, from, to),
                    utilization,
                    all_terms: all_start..all_end,
                    other_terms,
                    circ,
                    propagation,
                });
            }
            input_pairs.sort_unstable();
            input_pairs.dedup();
            flow_plans.push(FlowPlan {
                id: binding.id,
                n_frames: binding.flow.n_frames(),
                first_link_pair: stages[0].pair,
                stages,
                input_pairs,
            });
        }

        Ok(DensePlan {
            resources,
            flows: flow_plans,
            pair_resource,
            pair_base,
            pair_frames,
            arena_len: ux(arena_len),
            terms,
        })
    }

    /// The term slice of a stage range (kernel walks).
    #[inline]
    pub fn term_slice(&self, range: &std::ops::Range<u32>) -> &[TermSpec] {
        &self.terms[ux(range.start)..ux(range.end)]
    }

    /// Number of pairs in the layout.
    pub fn n_pairs(&self) -> usize {
        self.pair_base.len()
    }

    /// The arena range of a pair.
    #[inline]
    pub fn range(&self, pair: u32) -> std::ops::Range<usize> {
        let base = ux(self.pair_base[ux(pair)]);
        base..base + ux(self.pair_frames[ux(pair)])
    }
}

/// The generalized-jitter state in arena form: one `Time` slot per
/// `(flow, resource-on-its-route, frame)`, plus a per-pair running max
/// cache backing the `extra_j` reads of the stage analyses.
///
/// **Write discipline:** every construction path writes each slot at most
/// once with its final value (the single benign exception — the pipeline
/// re-recording a flow's first-link source jitter over the initial map's
/// identical value — is exact re-assignment), so the running max never has
/// to handle a lowered slot.  [`DenseJitters::copy_pair_from`] recomputes
/// its pair's max from the slice and is safe for arbitrary overwrites.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DenseJitters {
    values: Vec<Time>,
    maxes: Vec<Time>,
}

impl DenseJitters {
    /// The all-zero map.
    pub fn zeroed(plan: &DensePlan) -> DenseJitters {
        DenseJitters {
            values: vec![Time::ZERO; plan.arena_len],
            maxes: vec![Time::ZERO; plan.n_pairs()],
        }
    }

    /// The paper's initial map: every flow's specified source jitter on its
    /// first link, zero everywhere else.
    pub fn initial(plan: &DensePlan, flows: &FlowSet) -> DenseJitters {
        let mut map = DenseJitters::zeroed(plan);
        for (flow_plan, binding) in plan.flows.iter().zip(flows.bindings()) {
            for (frame, spec) in binding.flow.frames().iter().enumerate() {
                map.set(plan, flow_plan.first_link_pair, frame, spec.jitter);
            }
        }
        map
    }

    /// Convert a keyed seed.  Keys outside the plan (flows or resources
    /// not in this analysis) are ignored — the analysis never reads them,
    /// exactly as the keyed engine's `get` would return zero for slots the
    /// seed does not cover.
    pub fn from_keyed(plan: &DensePlan, flows: &FlowSet, keyed: &JitterMap) -> DenseJitters {
        let mut map = DenseJitters::zeroed(plan);
        let bindings = flows.bindings();
        for (&(flow, resource), values) in keyed.iter() {
            let Ok(flow_idx) = bindings.binary_search_by_key(&flow, |b| b.id) else {
                continue;
            };
            let Ok(resource_idx) = plan.resources.binary_search(&resource) else {
                continue;
            };
            let Some(pair) = plan.flows[flow_idx]
                .stages
                .iter()
                .find(|s| ux(plan.pair_resource[ux(s.pair)]) == resource_idx)
                .map(|s| s.pair)
            else {
                continue;
            };
            let range = plan.range(pair);
            let slots = range.len();
            for (frame, &value) in values.iter().take(slots).enumerate() {
                map.values[range.start + frame] = value;
            }
            map.maxes[ux(pair)] = map.values[range]
                .iter()
                .copied()
                .fold(Time::ZERO, Time::max);
        }
        map
    }

    /// Convert back to the keyed boundary form (seed caching, public API).
    /// Every pair is emitted, including all-zero ones — `JitterMap` treats
    /// missing and zero entries identically, so downstream reads match.
    pub fn to_keyed(&self, plan: &DensePlan) -> JitterMap {
        let mut keyed = JitterMap::default();
        for flow_plan in &plan.flows {
            for stage in &flow_plan.stages {
                let values = self.values[plan.range(stage.pair)].to_vec();
                keyed.insert_raw(flow_plan.id, stage.resource, values);
            }
        }
        keyed
    }

    /// The jitter of `frame` at `pair` (the engine reads whole slices via
    /// [`Self::slots`]; per-slot reads are a test convenience).
    #[cfg(test)]
    pub fn get(&self, plan: &DensePlan, pair: u32, frame: usize) -> Time {
        self.values[ux(plan.pair_base[ux(pair)]) + frame]
    }

    /// Set the jitter of `frame` at `pair` (see the write discipline in
    /// the type docs).
    #[inline]
    pub fn set(&mut self, plan: &DensePlan, pair: u32, frame: usize, value: Time) {
        let idx = ux(plan.pair_base[ux(pair)]) + frame;
        debug_assert!(
            self.values[idx] <= value || self.values[idx].approx_eq(value),
            "dense jitter slot lowered from {} to {value}",
            self.values[idx]
        );
        self.values[idx] = value;
        self.maxes[ux(pair)] = self.maxes[ux(pair)].max(value);
    }

    /// `extra_j`: the largest jitter of any frame at `pair`
    /// ([`NO_PAIR`] reads as zero).  This is the cached form of
    /// [`JitterMap::max_jitter`].
    #[inline]
    pub fn max_jitter(&self, pair: u32) -> Time {
        if pair == NO_PAIR {
            Time::ZERO
        } else {
            self.maxes[ux(pair)]
        }
    }

    /// Copy one pair's slice (and recompute its max) from `other`.  Used to
    /// carry frozen flows' jitters through scoped rounds.
    pub fn copy_pair_from(&mut self, plan: &DensePlan, other: &DenseJitters, pair: u32) {
        let range = plan.range(pair);
        self.values[range.clone()].copy_from_slice(&other.values[range.clone()]);
        self.maxes[ux(pair)] = self.values[range]
            .iter()
            .copied()
            .fold(Time::ZERO, Time::max);
    }

    /// Componentwise approximate equality (the holistic convergence test).
    pub fn approx_eq(&self, other: &DenseJitters) -> bool {
        self.values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.approx_eq(*b))
    }

    /// `‖self − other‖_∞` — the per-round residual.
    pub fn max_abs_diff(&self, other: &DenseJitters) -> Time {
        let mut worst = Time::ZERO;
        for (&a, &b) in self.values.iter().zip(&other.values) {
            let diff = if a >= b { a - b } else { b - a };
            worst = worst.max(diff);
        }
        worst
    }

    /// `true` if `self` and `other` are *exactly* equal on every slot of
    /// every listed pair — the round-skipping test (exact equality, not the
    /// convergence tolerance, so a skipped analysis is byte-identical by
    /// construction).
    pub fn pairs_equal(&self, plan: &DensePlan, other: &DenseJitters, pairs: &[u32]) -> bool {
        pairs.iter().all(|&pair| {
            let range = plan.range(pair);
            self.values[range.clone()] == other.values[range]
        })
    }

    /// The raw arena (per-slot iteration for the Anderson extrapolation).
    #[inline]
    pub fn slots(&self) -> &[Time] {
        &self.values
    }

    /// Set a raw slot without a pair id, maintaining the max cache of
    /// `pair` (the Anderson candidate builder walks pairs slot by slot).
    #[inline]
    pub fn set_slot(&mut self, pair: u32, idx: usize, value: Time) {
        self.values[idx] = value;
        self.maxes[ux(pair)] = self.maxes[ux(pair)].max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::AnalysisContext;
    use gmf_model::{cbr_flow, paper_figure3_flow};
    use gmf_net::{paper_figure1, shortest_path, Priority};

    fn setup() -> (Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(6),
        );
        let voice = cbr_flow(
            "voice",
            160,
            Time::from_millis(20.0),
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        (t, fs)
    }

    #[test]
    fn plan_interns_every_walk_resource() {
        let (t, fs) = setup();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let plan = ctx.plan();
        assert_eq!(plan.flows.len(), 2);
        // Route 0 -> 4 -> 6 -> 3: first hop + 2 × (ingress, egress).
        assert_eq!(plan.flows[0].stages.len(), 5);
        assert_eq!(plan.flows[1].stages.len(), 5);
        // 9-frame video + 1-frame voice, 5 resources each.
        assert_eq!(plan.arena_len, 9 * 5 + 5);
        assert_eq!(plan.n_pairs(), 10);
        // Stage kinds alternate as the Figure 6 walk dictates.
        let kinds: Vec<StageKind> = plan.flows[0].stages.iter().map(|s| s.stage).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::FirstHop,
                StageKind::SwitchIngress,
                StageKind::EgressLink,
                StageKind::SwitchIngress,
                StageKind::EgressLink,
            ]
        );
        // Both flows converge on the same final link, so the priority-6
        // video's last (egress) stage sees the priority-7 voice flow as a
        // `hep` interferer with a live jitter pair.
        let last = plan.flows[0].stages.last().unwrap();
        let voice_pairs: Vec<u32> = plan.flows[1].stages.iter().map(|s| s.pair).collect();
        let last_terms = plan.term_slice(&last.all_terms);
        assert!(last_terms.iter().any(|t| voice_pairs.contains(&t.pair)));
        // Egress interferer slices carry no self entry (every pair is
        // live), so both kernel walks share one slice; the first hop's
        // `w(q)` slice drops exactly the self term.
        assert!(last_terms.iter().all(|t| t.pair != NO_PAIR));
        assert_eq!(last.all_terms, last.other_terms);
        let first = &plan.flows[0].stages[0];
        assert_eq!(
            plan.term_slice(&first.all_terms).len(),
            plan.term_slice(&first.other_terms).len() + 1
        );
        // Input pairs are sorted and deduplicated.
        for flow in &plan.flows {
            assert!(flow.input_pairs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn dense_initial_matches_keyed_initial() {
        let (t, fs) = setup();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let plan = ctx.plan();
        let keyed = JitterMap::initial(&fs);
        let dense = DenseJitters::initial(plan, &fs);
        // Every pair's slots and max agree with the keyed reads.
        for flow_plan in &plan.flows {
            for stage in &flow_plan.stages {
                for frame in 0..flow_plan.n_frames {
                    assert_eq!(
                        dense.get(plan, stage.pair, frame),
                        keyed.get(flow_plan.id, stage.resource, frame)
                    );
                }
                assert_eq!(
                    dense.max_jitter(stage.pair),
                    keyed.max_jitter(flow_plan.id, stage.resource)
                );
            }
        }
        // Keyed → dense → keyed is read-equivalent (zeros become explicit).
        let roundtrip = DenseJitters::from_keyed(plan, &fs, &keyed);
        assert_eq!(roundtrip, dense);
        assert!(roundtrip.to_keyed(plan).approx_eq(&keyed));
    }

    #[test]
    fn pairs_equal_is_exact_per_pair() {
        let (t, fs) = setup();
        let ctx = AnalysisContext::new(&t, &fs).unwrap();
        let plan = ctx.plan();
        let a = DenseJitters::initial(plan, &fs);
        let mut b = a.clone();
        let all: Vec<u32> = (0..plan.n_pairs() as u32).collect();
        assert!(a.pairs_equal(plan, &b, &all));
        let pair = plan.flows[0].first_link_pair;
        b.set(plan, pair, 0, Time::from_millis(9.0));
        assert!(!a.pairs_equal(plan, &b, &all));
        assert!(!a.pairs_equal(plan, &b, &[pair]));
        // Pairs other than the touched one still compare equal.
        let others: Vec<u32> = all.iter().copied().filter(|&p| p != pair).collect();
        assert!(a.pairs_equal(plan, &b, &others));
        assert!(a.max_abs_diff(&b) > Time::ZERO);
        assert!(!a.approx_eq(&b));
        // Copying the pair back restores exact equality.
        let mut c = b.clone();
        c.copy_pair_from(plan, &a, pair);
        assert!(a.pairs_equal(plan, &c, &all));
        assert_eq!(c.max_jitter(pair), a.max_jitter(pair));
        assert_eq!(a.max_jitter(NO_PAIR), Time::ZERO);
    }
}
