//! Branchless table-walk fixed points — the per-frame kernels of the
//! dense engine.
//!
//! The stage recurrences ((15), (17), (22), (24), (29), (31)) all have the
//! shape `x = base ⊕ Σ_j g(x + extra_j)` where `g` is a request bound of
//! one interferer.  The keyed engine evaluates them through
//! [`crate::busy_period::fixed_point`] with a closure per call site; the
//! closures capture `Vec`s of `(demand, extra)` pairs and re-derive the
//! `O(n³)` closed-form `MX`/`NX` on every iteration.  This module is the
//! production replacement: the three solvers below walk flat slices of
//! resolved [`Term`]s against the context's precompiled
//! [`DemandTable`]s — no closure dispatch, no allocation, only saturating
//! ops and one binary search per table lookup.
//!
//! Byte-identity with the keyed path is structural: each solver's loop is
//! a literal transcription of [`crate::busy_period::fixed_point`] (same
//! check order — horizon, body, finiteness, convergence, monotonicity
//! debug assert, budget) and each body performs the same arithmetic in
//! the same order as the closure it replaces, with [`DemandTable`]
//! lookups that are bit-identical to the closed forms.  Where a keyed
//! body had no explicit base (the first-hop/ingress busy periods start
//! their fold at zero), the solvers pass [`Time::ZERO`], which is exact:
//! `0.0 + x == x` for every finite IEEE 754 `x ≥ 0`.
//!
//! All scratch storage lives in a [`KernelScratch`] arena owned by the
//! analysis worker (one per thread, pooled by
//! [`gmf_par::par_map_interleaved_with`]) and reset per flow, so the
//! per-frame path performs no heap allocation at all.

use crate::busy_period::FixedPointOutcome;
use crate::dense::{DenseJitters, TermSpec};
use crate::index::ux;
use gmf_model::{DemandTable, Time};

/// One resolved interference term: a demand table plus the constant
/// window widening (`extra_j`, and at the first hop the blocking
/// refinement) added to the iterate before every lookup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Term {
    /// Index into the context's demand-table interner.
    pub table: u32,
    /// Constant widening added to the iterate before each table lookup.
    pub extra: Time,
}

/// Reusable scratch arena for the per-frame kernels: resolved interference
/// terms and the `w(q)` instance tables of every stage of the flow under
/// analysis.
///
/// One arena lives on each analysis worker for the lifetime of a round
/// (pooled per thread, never shared), is [`reset`](KernelScratch::reset)
/// at the start of every flow, and only ever grows to the high-water mark
/// of a single flow's stages — after warm-up the per-frame path allocates
/// nothing.  Stage states address it through plain `Range<usize>` handles,
/// which keeps the stages `Vec`-free and the borrows disjoint.
#[derive(Debug, Default)]
pub(crate) struct KernelScratch {
    /// Resolved interference terms, addressed by stage-held ranges.
    pub(crate) terms: Vec<Term>,
    /// `w(q)` instance tables of ingress/egress stages, addressed by
    /// stage-held ranges.
    pub(crate) w: Vec<Time>,
    /// The first-hop stage's lazily extended `w(q)` memo (one first-hop
    /// stage per flow, so one memo suffices).
    pub(crate) first_hop_w: Vec<Time>,
}

impl KernelScratch {
    /// Drop all flow-scoped contents, keeping the capacity for the next
    /// flow.
    pub(crate) fn reset(&mut self) {
        self.terms.clear();
        self.w.clear();
        self.first_hop_w.clear();
    }

    /// Resolve `specs` against the round's jitter iterate into the term
    /// arena and return the range the stage will walk.
    ///
    /// With `add_blocking`, each term's static `blocking_c` widening is
    /// folded into `extra` (the first-hop blocking refinement).  The plan
    /// stores `blocking_c == 0` for the flow's own term, so the
    /// unconditional add reproduces the keyed `is_self` branch exactly.
    pub(crate) fn resolve_terms(
        &mut self,
        specs: &[TermSpec],
        jitters: &DenseJitters,
        add_blocking: bool,
    ) -> std::ops::Range<usize> {
        let start = self.terms.len();
        if add_blocking {
            self.terms.extend(specs.iter().map(|s| Term {
                table: s.table,
                extra: jitters.max_jitter(s.pair).saturating_add(s.blocking_c),
            }));
        } else {
            self.terms.extend(specs.iter().map(|s| Term {
                table: s.table,
                extra: jitters.max_jitter(s.pair),
            }));
        }
        start..self.terms.len()
    }
}

/// Least fixed point of `x = base ⊕ Σ_j MX_j(x + extra_j)`, the fold
/// running left to right with saturating adds from `base` — the first-hop
/// busy period (eq. 15, `base` zero) and queueing time (eq. 17, `base` the
/// instance's own backlog) recurrences.
pub(crate) fn solve_sum_mx(
    tables: &[DemandTable],
    terms: &[Term],
    base: Time,
    seed: Time,
    horizon: Time,
    max_iterations: usize,
) -> FixedPointOutcome {
    let mut current = seed;
    for _ in 0..max_iterations {
        if current > horizon {
            return FixedPointOutcome::ExceededHorizon { last: current };
        }
        let mut next = base;
        for term in terms {
            next = next.saturating_add(tables[ux(term.table)].mx(current + term.extra));
        }
        if !next.is_finite() {
            return FixedPointOutcome::ExceededHorizon { last: Time::MAX };
        }
        if next.approx_eq(current) {
            return FixedPointOutcome::Converged(next);
        }
        debug_assert!(
            next >= current || next.approx_eq(current),
            "fixed-point iterate decreased from {current} to {next}"
        );
        current = next;
    }
    FixedPointOutcome::IterationBudgetExhausted { last: current }
}

/// Least fixed point of `x = base ⊕ CIRC · Σ_j NX_j(x + extra_j)` with the
/// round count accumulated in saturating `u64` — the switch-ingress busy
/// period (eq. 22, `base` zero) and queueing time (eq. 24, `base` the
/// instance's own rounds) recurrences.
pub(crate) fn solve_sum_nx(
    tables: &[DemandTable],
    terms: &[Term],
    circ: Time,
    base: Time,
    seed: Time,
    horizon: Time,
    max_iterations: usize,
) -> FixedPointOutcome {
    let mut current = seed;
    for _ in 0..max_iterations {
        if current > horizon {
            return FixedPointOutcome::ExceededHorizon { last: current };
        }
        let mut rounds: u64 = 0;
        for term in terms {
            rounds = rounds.saturating_add(tables[ux(term.table)].nx(current + term.extra));
        }
        let next = base.saturating_add(circ.saturating_mul(rounds));
        if !next.is_finite() {
            return FixedPointOutcome::ExceededHorizon { last: Time::MAX };
        }
        if next.approx_eq(current) {
            return FixedPointOutcome::Converged(next);
        }
        debug_assert!(
            next >= current || next.approx_eq(current),
            "fixed-point iterate decreased from {current} to {next}"
        );
        current = next;
    }
    FixedPointOutcome::IterationBudgetExhausted { last: current }
}

/// Least fixed point of
/// `x = base + Σ_j (MX_j(x + extra_j) ⊕ CIRC · NX_j(x + extra_j))` — the
/// egress busy period and queueing recurrences (eqs. 29, 31).  The outer
/// combination is a *plain* add, exactly as the keyed egress bodies write
/// it; the interference fold saturates term by term.
pub(crate) fn solve_mx_nx(
    tables: &[DemandTable],
    terms: &[Term],
    circ: Time,
    base: Time,
    seed: Time,
    horizon: Time,
    max_iterations: usize,
) -> FixedPointOutcome {
    let mut current = seed;
    for _ in 0..max_iterations {
        if current > horizon {
            return FixedPointOutcome::ExceededHorizon { last: current };
        }
        let mut total = Time::ZERO;
        for term in terms {
            let d = &tables[ux(term.table)];
            let window = current + term.extra;
            total = total.saturating_add(
                d.mx(window)
                    .saturating_add(circ.saturating_mul(d.nx(window))),
            );
        }
        let next = base + total;
        if !next.is_finite() {
            return FixedPointOutcome::ExceededHorizon { last: Time::MAX };
        }
        if next.approx_eq(current) {
            return FixedPointOutcome::Converged(next);
        }
        debug_assert!(
            next >= current || next.approx_eq(current),
            "fixed-point iterate decreased from {current} to {next}"
        );
        current = next;
    }
    FixedPointOutcome::IterationBudgetExhausted { last: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busy_period::fixed_point;
    use gmf_model::{
        paper_figure3_flow, voip_flow, BitRate, EncapsulationConfig, LinkDemand, VoiceCodec,
    };

    fn tables() -> Vec<DemandTable> {
        let config = EncapsulationConfig::paper();
        let rate = BitRate::from_mbps(10.0);
        let video = paper_figure3_flow("v", Time::from_millis(150.0), Time::from_millis(1.0));
        let voice = voip_flow(
            "a",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_micros(500.0),
        );
        vec![
            DemandTable::new(&LinkDemand::new(&video, &config, rate)),
            DemandTable::new(&LinkDemand::new(&voice, &config, rate)),
        ]
    }

    fn terms() -> Vec<Term> {
        vec![
            Term {
                table: 0,
                extra: Time::from_millis(1.0),
            },
            Term {
                table: 1,
                extra: Time::from_micros(250.0),
            },
        ]
    }

    /// Each solver must agree bit-for-bit with `fixed_point` driven by the
    /// equivalent closure over the same tables.
    #[test]
    fn solvers_match_closure_driven_fixed_point() {
        let tables = tables();
        let terms = terms();
        let horizon = Time::from_secs(10.0);
        let base = Time::from_millis(2.0);
        let circ = Time::from_micros(120.0);

        let expected = fixed_point(base, horizon, 10_000, |t| {
            let mut total = base;
            for term in &terms {
                total = total.saturating_add(tables[ux(term.table)].mx(t + term.extra));
            }
            total
        });
        let got = solve_sum_mx(&tables, &terms, base, base, horizon, 10_000);
        assert_eq!(got, expected);
        assert!(got.converged().is_some());

        let expected = fixed_point(base, horizon, 10_000, |t| {
            let mut rounds: u64 = 0;
            for term in &terms {
                rounds = rounds.saturating_add(tables[ux(term.table)].nx(t + term.extra));
            }
            base.saturating_add(circ.saturating_mul(rounds))
        });
        let got = solve_sum_nx(&tables, &terms, circ, base, base, horizon, 10_000);
        assert_eq!(got, expected);

        let expected = fixed_point(base, horizon, 10_000, |t| {
            let mut total = Time::ZERO;
            for term in &terms {
                let d = &tables[ux(term.table)];
                let window = t + term.extra;
                total = total.saturating_add(
                    d.mx(window)
                        .saturating_add(circ.saturating_mul(d.nx(window))),
                );
            }
            base + total
        });
        let got = solve_mx_nx(&tables, &terms, circ, base, base, horizon, 10_000);
        assert_eq!(got, expected);
    }

    /// The solvers report the same horizon/budget outcomes as the generic
    /// iterator under overload and tiny budgets.
    #[test]
    fn solvers_report_divergence_like_fixed_point() {
        let tables = tables();
        let terms = terms();
        let base = Time::from_millis(2.0);
        // A horizon below the seed diverges immediately.
        let got = solve_sum_mx(&tables, &terms, base, base, Time::from_micros(1.0), 100);
        assert_eq!(
            got,
            FixedPointOutcome::ExceededHorizon { last: base },
            "horizon below seed"
        );
        // A one-iteration budget on a non-trivial recurrence exhausts.
        let got = solve_mx_nx(
            &tables,
            &terms,
            Time::from_micros(120.0),
            base,
            base,
            Time::from_secs(10.0),
            1,
        );
        assert!(matches!(
            got,
            FixedPointOutcome::IterationBudgetExhausted { .. }
        ));
    }

    /// The scratch arena reuses capacity across resets and resolves term
    /// ranges in id order.
    #[test]
    fn scratch_reset_keeps_capacity() {
        let mut scratch = KernelScratch::default();
        scratch.w.push(Time::ZERO);
        scratch.first_hop_w.push(Time::ZERO);
        scratch.terms.extend(terms());
        let cap = scratch.terms.capacity();
        scratch.reset();
        assert!(scratch.terms.is_empty());
        assert!(scratch.w.is_empty());
        assert!(scratch.first_hop_w.is_empty());
        assert_eq!(scratch.terms.capacity(), cap);
    }
}
