//! The holistic fixed-point engine: parallel Jacobi rounds plus optional
//! safeguarded Anderson(1) acceleration of the jitter iteration.
//!
//! The holistic analysis ([`crate::holistic`]) resolves the circular
//! dependency between response times and generalized jitters by iterating
//! the map `G : JitterMap → JitterMap` that analyses every flow against the
//! previous round's jitters and records the jitters the frames accumulate.
//! This module owns that iteration.  It provides two independent levers on
//! top of the plain Picard scheme `x_{k+1} = G(x_k)` the paper implies:
//!
//! **Parallel Jacobi rounds.**  Within one round every flow is analysed
//! against the *same* immutable previous-round map, so the per-flow
//! analyses are embarrassingly parallel.  [`evaluate_round`] maps them over
//! a [`gmf_par::par_map`] fork-join pool; results come back in flow-index
//! order, the next map is folded sequentially in that order, and error
//! precedence scans in that order too — the output is byte-identical to
//! the sequential loop at any thread count.
//!
//! **Safeguarded Anderson(1)-style acceleration.**  The jitter iteration
//! is monotone: Picard iterates increase componentwise towards the least
//! fixed point `x*` (or diverge past the horizon).  Residual extrapolation
//! in the Anderson(1) family (see Bian & Chen 2022, Barré et al. 2020 for
//! the nonsmooth/constrained convergence theory) can skip part of a long
//! tail.  This engine uses *diagonal* (per-component) damped secant mixing
//! rather than the classic single global coefficient: components of the
//! jitter map converge at very different speeds — most lock onto their
//! exact lattice value within a round or two while a few coupled ones tail
//! off over many rounds — and a global coefficient systematically hurls the
//! already-locked components past their fixed point.  From three
//! consecutive Picard-chained iterates `s0 → s1 = G(s0) → s2 = G(s1)`,
//! each strictly contracting component (`0 < d2 < d1` for `d1 = s1−s0`,
//! `d2 = s2−s1`) is lifted by a damped fraction of its Aitken-Δ² estimate
//! of the remaining distance:
//!
//! ```text
//! x_acc = s2 + η · min(r/(1−r), β_max) · d2,   r = d2/d1
//! ```
//!
//! Safeguards keep the result exactly equal to Picard's:
//!
//! 1. *Acyclic gating* — acceleration only runs when the jitter dependency
//!    graph is acyclic (see [`dependency_is_acyclic`]); then the holistic
//!    equations have a unique fixed point and `G^(depth+1)` is a constant
//!    map, so *any* iterate sequence lands on exactly the Picard lattice
//!    point.  On cyclic instances (mutually chasing flows on a ring),
//!    larger self-consistent solutions exist above `x*` and an overshoot
//!    could latch onto one, so the engine runs plain Picard there.
//! 2. *Monotone safeguard* — a candidate is rejected outright (the round
//!    falls back to Picard) if any component falls below the plain Picard
//!    step `G(x)` or would jump past the divergence horizon.
//! 3. *Mid-tail gate* — extrapolation fires only while the round residual
//!    is shrinking and still a sizeable fraction of its peak.  Transport
//!    tails end with components making one final quantum move and stopping
//!    dead; lifting such a last move always overshoots.
//! 4. *Overshoot absorption* — a from-below iterate satisfies `G(x) ≥ x`
//!    componentwise; the next round's `G` evaluation checks this for free.
//!    A violation means the candidate overshot `x*` in that component; the
//!    engine continues from the image `G(x)` (safe by safeguard 1) and
//!    disables acceleration after [`MAX_ABSORBS`] violations.  If the
//!    evaluation *at the candidate* fails outright (a busy period computed
//!    from the inflated jitters exceeds the horizon), the failure is an
//!    artefact of the extrapolation, not a verdict: the engine reverts to
//!    the image it extrapolated from and finishes with plain Picard, so an
//!    overshoot can never turn a schedulable instance unschedulable.
//! 5. *Exact landing* — convergence (`G(x) ≈ x`) is only reported when the
//!    current iterate is itself an image of `G` (or the initial map).  An
//!    extrapolated iterate that happens to satisfy the tolerance is run
//!    through one more Picard round first, so the final report is always
//!    an evaluation of `G` at the converged lattice point itself.
//!
//! Why the converged report is byte-identical across strategies:
//! interfering jitters enter the response-time equations only through the
//! staircase request-bound functions (`MX`/`NX` inside the busy-period
//! iterations), so `G` is piecewise constant in its input and its outputs
//! live on a discrete lattice (sums of frame transmission/service times).
//! Picard therefore reaches `x*` *exactly* in finitely many rounds, and on
//! an acyclic instance every other convergent sequence — including one
//! with absorbed overshoots — settles on the same unique lattice point,
//! after which safeguard 5 makes the final report `G(x*)` under either
//! strategy.  An accelerated step helps when it lands components inside
//! the terminal plateau below their fixed point early, short-circuiting
//! the round-per-dependency-level transport of plain Picard; the
//! [`ConvergenceTrace`] records what happened each round (residual and
//! step kind), which is also how the benches measure the iteration
//! savings.
//!
//! **Warm starts and incremental re-verification.**  [`iterate_from`]
//! seeds the iteration with an arbitrary [`JitterMap`] instead of the
//! paper's initial map.  On acyclic instances the fixed point is unique
//! and `G^{depth+1}` is a constant map, so a seed taken from the converged
//! map of a closely related flow set (the previous admission decision)
//! lands on byte-identical bounds in far fewer rounds.  On top of that,
//! [`affected_flows`] computes which flows a candidate can influence at
//! all — everything unreachable from it in the dependency graph keeps its
//! cached converged [`FlowReport`] verbatim and is never re-analysed
//! ([`Scope`]).  [`crate::admission::AdmissionController`] combines both
//! into its incremental admission engine, with a cold restart whenever the
//! dependency graph is cyclic or a warm run fails to converge.

use crate::config::AnalysisConfig;
use crate::context::{AnalysisContext, JitterMap};
use crate::dense::{DenseJitters, DensePlan};
use crate::error::AnalysisError;
use crate::kernel::KernelScratch;
use crate::pipeline::analyze_flow_dense;
use crate::report::{AnalysisReport, FlowReport, FrameBound};
use gmf_model::Time;
use gmf_par::{par_map_interleaved_with, Threads};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How the holistic engine advances the jitter iterate between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FixedPointStrategy {
    /// Plain Picard iteration `x_{k+1} = G(x_k)` — the paper's scheme.
    #[default]
    Picard,
    /// Depth-1 Anderson acceleration with the monotone safeguard; falls
    /// back to Picard whenever a candidate is unsafe.
    Anderson1,
}

impl fmt::Display for FixedPointStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedPointStrategy::Picard => write!(f, "picard"),
            FixedPointStrategy::Anderson1 => write!(f, "anderson1"),
        }
    }
}

/// What produced the iterate a round handed to the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// The plain Picard step `G(x)` was used.
    Picard,
    /// A safeguarded Anderson(1) candidate was accepted.
    Anderson,
    /// An Anderson candidate was computed but failed the monotone / horizon
    /// safeguard; the round fell back to Picard.
    AndersonRejected,
    /// The previous round's accepted candidate overshot the fixed point:
    /// either `G(x) < x` in some component (the engine absorbed the
    /// overshoot by continuing from the image `G(x)`), or evaluating `G`
    /// at the candidate failed outright and the engine reverted to the
    /// image it extrapolated from.  Either way further acceleration is
    /// throttled.
    AndersonAbsorbed,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepKind::Picard => write!(f, "picard"),
            StepKind::Anderson => write!(f, "anderson"),
            StepKind::AndersonRejected => write!(f, "anderson-rejected"),
            StepKind::AndersonAbsorbed => write!(f, "anderson-absorbed"),
        }
    }
}

/// One round of the holistic iteration, as recorded in the
/// [`ConvergenceTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// 1-based outer iteration number.
    pub iteration: usize,
    /// Largest absolute change of any jitter component in this round
    /// (`‖G(x) − x‖_∞`); zero for a round aborted because a flow could not
    /// be bounded (overload / horizon excess).
    pub residual: Time,
    /// How the next iterate was produced at the end of this round.
    pub step: StepKind,
}

/// Per-round residuals and step decisions of one holistic analysis run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// One entry per outer iteration, in order.
    pub rounds: Vec<RoundTrace>,
}

impl ConvergenceTrace {
    /// Number of recorded rounds (equals the report's `iterations`).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no round was recorded (empty flow set).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The residual of the last round, if any.
    pub fn final_residual(&self) -> Option<Time> {
        self.rounds.last().map(|r| r.residual)
    }

    /// Number of rounds advanced by an accepted Anderson step.
    pub fn n_accelerated(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.step == StepKind::Anderson)
            .count()
    }
}

/// Cap on the per-component extrapolation factor `β = r/(1−r)`: a
/// component may jump at most this many times its last Picard gain ahead.
/// Larger values accelerate slow geometric tails harder but risk
/// overshooting past the fixed point, which costs a reverted round.
const BETA_MAX: f64 = 0.6; // tidy-allow: float dimensionless extrapolation factor, not a bound

/// Damping of the extrapolation: components jump this fraction of their
/// estimated remaining distance.  Below 1 biases towards undershoot, which
/// is free (the next Picard round mops up), where overshoot costs a
/// reverted round.
const ETA: f64 = 0.9; // tidy-allow: float dimensionless damping factor, not a bound

/// After this many post-hoc invariant violations (absorbed overshoots),
/// acceleration is disabled for the rest of the run (the workload's tail is
/// evidently not extrapolable).
const MAX_ABSORBS: usize = 2;

/// Extrapolation only fires while the round residual is at least this
/// fraction of the largest residual seen so far.  Transport-style tails end
/// with components making one last move and stopping dead; lifting such a
/// final move always overshoots, so the engine holds fire once the tail is
/// nearly drained.
const MID_TAIL_FRACTION: f64 = 0.35; // tidy-allow: float dimensionless residual fraction, not a bound

/// A node of the jitter dependency graph: the jitter of one flow at one
/// resource of its route.
type DepNode = (gmf_model::FlowId, crate::context::ResourceId);

/// The Figure 6 pipeline walk of one flow: its resources in route order,
/// each paired with the underlying directed link whose flow set interferes
/// at that resource.  `None` if the route is structurally broken (a
/// condition the analysis itself reports as an error).
fn flow_stages(
    binding: &gmf_net::FlowBinding,
) -> Option<
    Vec<(
        crate::context::ResourceId,
        (gmf_net::NodeId, gmf_net::NodeId),
    )>,
> {
    use crate::context::ResourceId;
    let route = &binding.route;
    let source = route.source();
    let first_succ = route.successor(source).ok()?;
    let mut stages = vec![(
        ResourceId::Link {
            from: source,
            to: first_succ,
        },
        (source, first_succ),
    )];
    for &switch in route.switches() {
        let succ = route.successor(switch).ok()?;
        let prec = route.predecessor(switch).ok()?;
        stages.push((ResourceId::SwitchIngress { node: switch }, (prec, switch)));
        stages.push((
            ResourceId::Link {
                from: switch,
                to: succ,
            },
            (switch, succ),
        ));
    }
    Some(stages)
}

/// The edges of the jitter dependency graph of `flows`.
///
/// Nodes are `(flow, resource)` pairs.  The jitter a flow accumulates at
/// resource `r_{i+1}` of its route is its jitter at `r_i` plus its response
/// at `r_i`, and that response reads the jitter of every interfering flow
/// at `r_i` — so there is an edge `(A, r_i) → (A, r_{i+1})` and an edge
/// `(B, r_i) → (A, r_{i+1})` for every `B` sharing `r_i`'s underlying link
/// with `A`.  `None` if any route is structurally broken.
fn dependency_edges(
    flows: &gmf_net::FlowSet,
) -> Option<std::collections::BTreeMap<DepNode, Vec<DepNode>>> {
    let link_index = flows.link_index();
    let mut edges: std::collections::BTreeMap<DepNode, Vec<DepNode>> =
        std::collections::BTreeMap::new();
    for binding in flows.bindings() {
        let stages = flow_stages(binding)?;
        for window in stages.windows(2) {
            let (resource, (from, to)) = window[0];
            let (next_resource, _) = window[1];
            let target = (binding.id, next_resource);
            edges
                .entry((binding.id, resource))
                .or_default()
                .push(target);
            for &other in link_index.flows_on_link(from, to) {
                if other != binding.id {
                    edges.entry((other, resource)).or_default().push(target);
                }
            }
        }
    }
    Some(edges)
}

/// `true` if the jitter dependency graph of the flow set is acyclic.
///
/// When the graph is acyclic, `G^depth` is a constant map: the holistic
/// equations have a *unique* fixed point and any convergent iteration —
/// accelerated, warm-started from a cached map, or plain Picard — lands on
/// exactly the same lattice point.  When it has a cycle (mutually chasing
/// flows on a ring), larger self-consistent solutions exist above the
/// least fixed point and an extrapolation overshoot (or a stale warm-start
/// seed) could latch onto one; the engine therefore disables acceleration
/// — and the admission controller disables warm starts — for cyclic
/// instances.
///
/// Every workload in the paper (converging stars, unidirectional lines,
/// the Figure 1 network) is acyclic: opposite link directions are distinct
/// resources and never interfere.
pub(crate) fn dependency_is_acyclic(flows: &gmf_net::FlowSet) -> bool {
    match dependency_edges(flows) {
        Some(edges) => !edges_have_cycle(&edges),
        None => false,
    }
}

/// Iterative three-colour DFS cycle check over a prepared edge map.
fn edges_have_cycle(edges: &std::collections::BTreeMap<DepNode, Vec<DepNode>>) -> bool {
    use std::collections::BTreeMap;
    type Node = DepNode;

    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        InProgress,
        Done,
    }
    let mut colour: BTreeMap<Node, Colour> = BTreeMap::new();
    let nodes: Vec<Node> = edges.keys().copied().collect();
    for start in nodes {
        if colour.contains_key(&start) {
            continue;
        }
        // Stack of (node, next child index).
        let mut stack: Vec<(Node, usize)> = vec![(start, 0)];
        colour.insert(start, Colour::InProgress);
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let empty = Vec::new();
            let targets = edges.get(&node).unwrap_or(&empty);
            if *child < targets.len() {
                let next = targets[*child];
                *child += 1;
                match colour.get(&next) {
                    Some(Colour::InProgress) => return true,
                    Some(Colour::Done) => {}
                    None => {
                        colour.insert(next, Colour::InProgress);
                        stack.push((next, 0));
                    }
                }
            } else {
                colour.insert(node, Colour::Done);
                stack.pop();
            }
        }
    }
    false
}

/// The flows whose analysis can change when `seed` is added to (or removed
/// from) `flows` — the scope of re-verification for an incremental
/// admission decision.
///
/// A flow `F` is *affected* iff the response bound of `F` at some resource
/// `r` of its route can change, which happens exactly when a flow sharing
/// `r`'s underlying interference link either is `seed` itself (its demand
/// appears or disappears from the interference sum) or has a changed
/// generalized jitter at `r`.  Changed jitters are the closure of `seed`'s
/// own nodes under the dependency edges: `jitter(A, r_{i+1})` is a function
/// of the jitters at `r_i` of every flow interfering with `A` there.
///
/// Flows *not* in the returned set keep byte-identical bounds: every input
/// of every one of their per-resource analyses is untouched by `seed`, so a
/// cached converged [`crate::report::FlowReport`] stays valid verbatim.
///
/// Returns `None` when a route is structurally broken (the caller falls
/// back to re-verifying everything).
pub(crate) fn affected_flows(
    flows: &gmf_net::FlowSet,
    seed: gmf_model::FlowId,
) -> Option<std::collections::BTreeSet<gmf_model::FlowId>> {
    let edges = dependency_edges(flows)?;
    affected_flows_in(flows, seed, &edges)
}

/// [`affected_flows`] + acyclicity in one dependency-graph construction —
/// the per-request combination the warm admission path needs.  `None` when
/// the graph is cyclic (warm starts are unsound there) or a route is
/// structurally broken.
pub(crate) fn acyclic_affected_flows(
    flows: &gmf_net::FlowSet,
    seed: gmf_model::FlowId,
) -> Option<std::collections::BTreeSet<gmf_model::FlowId>> {
    let edges = dependency_edges(flows)?;
    if edges_have_cycle(&edges) {
        return None;
    }
    affected_flows_in(flows, seed, &edges)
}

/// The [`affected_flows`] closure over a prepared edge map.
fn affected_flows_in(
    flows: &gmf_net::FlowSet,
    seed: gmf_model::FlowId,
    edges: &std::collections::BTreeMap<DepNode, Vec<DepNode>>,
) -> Option<std::collections::BTreeSet<gmf_model::FlowId>> {
    use std::collections::{BTreeMap, BTreeSet};

    let link_index = flows.link_index();
    let stages: BTreeMap<gmf_model::FlowId, _> = flows
        .bindings()
        .iter()
        .map(|b| Some((b.id, flow_stages(b)?)))
        .collect::<Option<_>>()?;

    // Closure of the seed flow's own nodes under the dependency edges:
    // every (flow, resource) whose jitter value can differ between the
    // with-seed and without-seed fixed points.
    let mut changed: BTreeSet<DepNode> = stages[&seed]
        .iter()
        .map(|&(resource, _)| (seed, resource))
        .collect();
    let mut worklist: Vec<DepNode> = changed.iter().copied().collect();
    while let Some(node) = worklist.pop() {
        for &next in edges.get(&node).into_iter().flatten() {
            if changed.insert(next) {
                worklist.push(next);
            }
        }
    }

    let mut affected = BTreeSet::new();
    affected.insert(seed);
    for binding in flows.bindings() {
        if affected.contains(&binding.id) {
            continue;
        }
        let touched = stages[&binding.id].iter().any(|&(resource, (from, to))| {
            link_index
                .flows_on_link(from, to)
                .iter()
                .any(|&other| other == seed || changed.contains(&(other, resource)))
        });
        if touched {
            affected.insert(binding.id);
        }
    }
    Some(affected)
}

/// Everything one `G` evaluation produces.  Reports are `Arc`-shared:
/// frozen and round-skipped flows hand the same allocation to every round
/// instead of deep-copying `R × F` report clones across the run.
enum RoundOutcome {
    /// Every flow analysed: the per-flow reports and the next jitter map.
    Evaluated {
        reports: Vec<Arc<FlowReport>>,
        next: DenseJitters,
    },
    /// A flow could not be bounded (overload / horizon excess): the reports
    /// of the flows *before* it in flow order, and why.
    Unschedulable {
        partial: Vec<Arc<FlowReport>>,
        failure: String,
    },
}

/// Turn the engine's shared reports into the owned vector an
/// [`AnalysisReport`] carries — one unwrap (or clone, for reports still
/// shared with a caller's cache) per flow at the end of the run.
fn unwrap_reports(reports: Vec<Arc<FlowReport>>) -> Vec<FlowReport> {
    reports
        .into_iter()
        .map(|report| Arc::try_unwrap(report).unwrap_or_else(|shared| (*shared).clone()))
        .collect()
}

/// A dependency-derived re-verification scope for an incremental
/// (warm-started) run: only `active` flows are re-analysed each round;
/// every other flow's converged [`FlowReport`] is carried verbatim and its
/// jitter entries are copied through from the current iterate.
///
/// Correctness rests on [`affected_flows`]: a flow outside `active` has no
/// analysis input that can differ from the cached converged run, so both
/// its report and its jitters are already at their (unique, acyclic-case)
/// fixed-point values.  Scoping therefore implies an *acyclic* dependency
/// graph — callers must have checked it (see [`acyclic_affected_flows`]);
/// the engine trusts the scope and skips rebuilding the graph for the
/// Anderson gate.
pub(crate) struct Scope<'s> {
    /// Flows to re-analyse every round (the candidate plus everything
    /// reachable from it in the dependency graph, plus any flow whose
    /// cached report was invalidated by an earlier departure).
    pub active: &'s std::collections::BTreeSet<gmf_model::FlowId>,
    /// Converged reports of the inactive flows, shared into every round's
    /// report vector.  Must cover exactly the flows of the context that
    /// are not in `active`.
    pub frozen: &'s std::collections::BTreeMap<gmf_model::FlowId, Arc<FlowReport>>,
}

/// What the engine remembers about one flow's last analysis: its report
/// and its per-stage jitter assignments, both reusable verbatim while the
/// flow's inputs (see [`crate::dense::FlowPlan::input_pairs`]) are
/// unchanged.
struct FlowCache {
    report: Arc<FlowReport>,
    /// Frame-major, stage-minor accumulated jitters (the dense form of
    /// [`crate::pipeline::JitterAssignments`]).
    assignments: Vec<Vec<Time>>,
}

/// How [`evaluate_round`] treats each flow of the context.
#[derive(Clone, Copy, PartialEq)]
enum FlowRole {
    /// Outside the scope: frozen report, jitters copied through.
    Inactive,
    /// In scope, but its input slots are exactly unchanged since its last
    /// analysis: the cached report and assignments are reused without
    /// re-analysing (Jacobi memoization — correct by construction).
    Skipped,
    /// In scope with changed inputs (or no cached analysis): re-analysed.
    Dirty,
}

/// Evaluate `G` at `jitters`: analyse every *dirty* flow of the context's
/// flow set against the given arena, in parallel over `threads` workers,
/// and fold the assignments (fresh or cached) into the next round's arena.
/// Returns the outcome and the number of per-flow analyses actually
/// performed.
///
/// Flows are analysed in flow-index order semantics: results are collected
/// in that order, the next map is folded in that order, and the first
/// erroring flow in that order decides the outcome — so the result is
/// byte-identical to the sequential loop at any thread count.  Skipping is
/// equally invisible: a skipped flow's inputs are *exactly* equal to those
/// of its cached analysis, so re-analysing it would reproduce the cached
/// report and assignments bit for bit — and a skipped flow can never be
/// the round's first error, because its cached analysis succeeded on the
/// same inputs.
fn evaluate_round(
    ctx: &AnalysisContext<'_>,
    jitters: &DenseJitters,
    config: &AnalysisConfig,
    scope: Option<&Scope<'_>>,
    cache: &mut [Option<FlowCache>],
    last_input: Option<&DenseJitters>,
) -> Result<(RoundOutcome, usize), AnalysisError> {
    let plan = ctx.plan();
    let bindings = ctx.flows().bindings();

    let roles: Vec<FlowRole> = bindings
        .iter()
        .enumerate()
        .map(|(index, binding)| {
            if !scope.is_none_or(|s| s.active.contains(&binding.id)) {
                FlowRole::Inactive
            } else if config.skip_unchanged_flows
                && cache[index].is_some()
                && last_input.is_some_and(|previous| {
                    jitters.pairs_equal(plan, previous, &plan.flows[index].input_pairs)
                })
            {
                FlowRole::Skipped
            } else {
                FlowRole::Dirty
            }
        })
        .collect();
    let dirty: Vec<usize> = (0..bindings.len())
        .filter(|&index| roles[index] == FlowRole::Dirty)
        .collect();
    let threads = Threads::new(config.threads);

    // With one worker the results come from a lazy iterator, so the scan
    // below short-circuits on the first erroring flow without analysing the
    // rest of the round (rejecting admission trials hit this every call);
    // with several workers everything is evaluated eagerly up front.  Error
    // precedence is first-in-flow-order either way, so the outcome is
    // byte-identical at any thread count.
    type FlowResult = Result<(Vec<FrameBound>, Vec<Vec<Time>>), AnalysisError>;
    let mut results: Box<dyn Iterator<Item = FlowResult> + '_> = if threads.get() == 1 {
        let mut scratch = KernelScratch::default();
        Box::new(
            dirty
                .iter()
                .map(move |&index| analyze_flow_dense(ctx, jitters, config, index, &mut scratch)),
        )
    } else {
        Box::new(
            par_map_interleaved_with(threads, &dirty, KernelScratch::default, {
                |scratch, _, &index| analyze_flow_dense(ctx, jitters, config, index, scratch)
            })
            .into_iter(),
        )
    };

    let mut analyzed = 0usize;
    let mut reports: Vec<Arc<FlowReport>> = Vec::with_capacity(bindings.len());
    for (index, binding) in bindings.iter().enumerate() {
        match roles[index] {
            FlowRole::Inactive => {
                let frozen = scope
                    // tidy-allow: unwrap invariant: inactive flows only exist under a scope
                    .expect("inactive flows only exist under a scope")
                    .frozen
                    .get(&binding.id)
                    // tidy-allow: unwrap invariant: scoped rounds carry a frozen report for every inactive flow
                    .expect("scoped rounds carry a frozen report for every inactive flow");
                reports.push(Arc::clone(frozen));
            }
            FlowRole::Skipped => {
                let cached = cache[index]
                    .as_ref()
                    // tidy-allow: unwrap invariant: skipped flows have a cached analysis
                    .expect("skipped flows have a cached analysis");
                reports.push(Arc::clone(&cached.report));
            }
            FlowRole::Dirty => {
                // tidy-allow: unwrap invariant: one result per dirty flow
                let result = results.next().expect("one result per dirty flow");
                analyzed += 1;
                match result {
                    Ok((bounds, assignments)) => {
                        let report = Arc::new(FlowReport {
                            flow: binding.id,
                            name: binding.flow.name().to_string(),
                            frames: bounds,
                        });
                        reports.push(Arc::clone(&report));
                        cache[index] = Some(FlowCache {
                            report,
                            assignments,
                        });
                    }
                    Err(err) if err.is_unschedulable() => {
                        return Ok((
                            RoundOutcome::Unschedulable {
                                partial: reports,
                                failure: err.to_string(),
                            },
                            analyzed,
                        ));
                    }
                    Err(err) => return Err(err),
                }
            }
        }
    }
    drop(results);

    let mut next = DenseJitters::initial(plan, ctx.flows());
    for (index, role) in roles.iter().enumerate() {
        let flow_plan = &plan.flows[index];
        match role {
            // Frozen flows' jitters are already at their fixed-point
            // values; carry them through unchanged so the fold below only
            // moves the active components.
            FlowRole::Inactive => {
                for stage in &flow_plan.stages {
                    next.copy_pair_from(plan, jitters, stage.pair);
                }
            }
            // Active flows (fresh or skipped) fold their assignments —
            // a skipped flow's cached assignments are exactly what
            // re-analysing it would have produced.
            FlowRole::Skipped | FlowRole::Dirty => {
                let cached = cache[index]
                    .as_ref()
                    // tidy-allow: unwrap invariant: active flows have a cached analysis after the scan
                    .expect("active flows have a cached analysis after the scan");
                for (frame, frame_assignments) in cached.assignments.iter().enumerate() {
                    for (stage, &jitter) in frame_assignments.iter().enumerate() {
                        next.set(plan, flow_plan.stages[stage].pair, frame, jitter);
                    }
                }
            }
        }
    }
    Ok((RoundOutcome::Evaluated { reports, next }, analyzed))
}

/// What [`anderson_candidate`] produced, distinguished so the
/// [`ConvergenceTrace`] reports what actually happened.
enum Candidate {
    /// A candidate passed every safeguard and should become the next
    /// iterate.
    Extrapolated(DenseJitters),
    /// A candidate was computed but tripped the monotone / horizon
    /// safeguard.
    SafeguardRejected,
    /// No component was strictly contracting: there was nothing to
    /// extrapolate and the round is a plain Picard round.
    NothingToExtrapolate,
}

/// What the diagonal extrapolation decides for one jitter component.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SlotStep {
    /// Not strictly contracting: keep the plain Picard value `s2`.
    Keep,
    /// Strictly contracting: lift to the damped Aitken-Δ² estimate.
    Lift(Time),
    /// The lift would pass the horizon, lose finiteness or fall below the
    /// Picard step: the whole candidate must be rejected.
    Reject,
}

/// The per-component secant step of the Anderson(1) candidate, from three
/// consecutive Picard-chained values `s0 → s1 = G(s0) → s2 = G(s1)` of one
/// slot.
fn extrapolate_slot(s0: Time, s1: Time, s2: Time, horizon: Time) -> SlotStep {
    let d1 = (s1 - s0).as_secs();
    let d2 = (s2 - s1).as_secs();
    // Extrapolate only strictly contracting monotone components
    // (0 < d2 < d1); everything else keeps the Picard value.
    if d2 > 0.0 && d2 < d1 {
        let ratio = d2 / d1;
        let beta = (ratio / (1.0 - ratio)).min(BETA_MAX);
        let accelerated = Time::from_secs(s2.as_secs() + ETA * beta * d2);
        if !accelerated.is_finite() || accelerated > horizon {
            return SlotStep::Reject;
        }
        // Monotone safeguard: never fall below the Picard step.
        if accelerated < s2 {
            return SlotStep::Reject;
        }
        SlotStep::Lift(accelerated)
    } else {
        SlotStep::Keep
    }
}

/// The Anderson(1) candidate built from three consecutive Picard-chained
/// iterates `prev_x → x (= G(prev_x)) → gx (= G(x))`.
///
/// Mixing is *diagonal* (one secant coefficient per jitter component, the
/// Aitken-Δ² estimate of that component's limit) rather than the classic
/// single global coefficient: the holistic iteration converges at very
/// different speeds per component (most lock onto their exact lattice value
/// within a round or two while a few coupled ones tail off slowly), and a
/// global coefficient systematically hurls the already-converged components
/// past their fixed point, which the post-hoc invariant check then has to
/// revert.  Components that are not contracting keep the plain Picard value;
/// contracting ones jump a damped fraction [`ETA`] of their estimated
/// remaining distance, which biases the candidate towards *undershoot* —
/// an undershot candidate stays in the monotone from-below region and costs
/// nothing, while an overshot one costs a reverted round.
fn anderson_candidate(
    plan: &DensePlan,
    x: &DenseJitters,
    gx: &DenseJitters,
    prev_x: &DenseJitters,
    horizon: Time,
) -> Candidate {
    let mut candidate = DenseJitters::zeroed(plan);
    let mut extrapolated_any = false;
    for pair in 0..crate::index::cx(plan.n_pairs()) {
        for idx in plan.range(pair) {
            let s0 = prev_x.slots()[idx];
            let s1 = x.slots()[idx];
            let s2 = gx.slots()[idx];
            let value = match extrapolate_slot(s0, s1, s2, horizon) {
                SlotStep::Keep => s2,
                SlotStep::Lift(accelerated) => {
                    extrapolated_any = true;
                    accelerated
                }
                SlotStep::Reject => return Candidate::SafeguardRejected,
            };
            candidate.set_slot(pair, idx, value);
        }
    }
    if extrapolated_any {
        Candidate::Extrapolated(candidate)
    } else {
        Candidate::NothingToExtrapolate
    }
}

/// State the Anderson strategy carries between rounds.
struct AndersonState {
    /// The iterate *before* the current one, when the chain
    /// `prev_x → x → gx` is three consecutive Picard steps.
    prev_x: Option<DenseJitters>,
    /// The previous round's residual — extrapolation is gated on the
    /// residual actually shrinking (the first rounds of a run often *grow*
    /// it while jitter fronts still propagate downstream).
    last_residual: Option<Time>,
    /// The largest residual seen so far.  Extrapolation only fires while
    /// the residual is still a sizeable fraction of this peak (mid-tail):
    /// near the end of a transport tail, components make one final move
    /// and stop, and any lift of that last move overshoots.
    peak_residual: Time,
    /// The Picard image the last accepted candidate extrapolated from.
    /// If evaluating `G` *at the candidate* fails outright (a busy period
    /// computed from the inflated jitters exceeds the horizon, say), the
    /// failure is an artefact of the extrapolation, not a property of the
    /// flow set — the engine reverts here and re-runs the round plainly.
    fallback: Option<DenseJitters>,
    /// Post-hoc invariant violations (absorbed overshoots) so far.
    absorbs: usize,
    /// Acceleration still allowed?
    enabled: bool,
}

/// Everything one holistic fixed-point run produces: the report, the
/// converged jitter map (for warm-start caching) and the run's cost.
#[derive(Debug, Clone)]
pub struct FixedPointRun {
    /// The analysis report (what [`crate::holistic::analyze`] returns).
    pub report: AnalysisReport,
    /// The converged jitter iterate `x*` — present iff the run converged.
    /// The report's bounds are exactly the evaluation `G(x*)`, so seeding a
    /// later warm-started run with this map reproduces them byte for byte.
    pub jitters: Option<JitterMap>,
    /// Number of per-flow pipeline analyses performed (≈ rounds × flows
    /// analysed per round; fewer when a round aborts early).  This is the
    /// admission-control cost metric the churn experiment tracks.
    pub flow_analyses: usize,
}

/// Run the holistic jitter iteration from the paper's initial map (source
/// jitter on first links, zero elsewhere).
///
/// This is the engine behind [`crate::holistic::analyze`]; analysis
/// callers should use that entry point.  `ctx` must wrap a non-empty flow
/// set.
pub(crate) fn iterate(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
) -> Result<FixedPointRun, AnalysisError> {
    iterate_inner(ctx, config, JitterMap::initial(ctx.flows()), None)
}

/// Run the holistic jitter iteration warm-started from `initial`.
///
/// On an *acyclic* jitter dependency graph (see the module docs) the fixed
/// point is unique and `G^{depth+1}` is a constant map, so the run
/// converges to byte-identical bounds from **any** initial map — a cached
/// converged map of a closely related flow set lands in far fewer rounds
/// than the cold start.  Two caveats the caller owns:
///
/// * on a **cyclic** instance a seed above the least fixed point can latch
///   onto a larger self-consistent solution — warm-start only when
///   the dependency graph is acyclic (the admission controller gates on
///   exactly that and falls back to a cold restart otherwise);
/// * a seed *above* the fixed point (e.g. cached jitters after a flow
///   departure) can make an intermediate busy-period iteration exceed the
///   horizon even though the instance is schedulable — treat a
///   non-converged warm run as "unknown" and restart cold rather than
///   taking its verdict.
pub fn iterate_from(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    initial: JitterMap,
) -> Result<FixedPointRun, AnalysisError> {
    iterate_inner(ctx, config, initial, None)
}

/// [`iterate_from`] restricted to a re-verification scope: only
/// `scope.active` flows are re-analysed; the rest keep their frozen
/// converged reports and jitters.  See [`Scope`] for the correctness
/// argument.
pub(crate) fn iterate_scoped(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    initial: JitterMap,
    scope: &Scope<'_>,
) -> Result<FixedPointRun, AnalysisError> {
    iterate_inner(ctx, config, initial, Some(scope))
}

fn iterate_inner(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    initial: JitterMap,
    scope: Option<&Scope<'_>>,
) -> Result<FixedPointRun, AnalysisError> {
    let plan = ctx.plan();
    let mut x = DenseJitters::from_keyed(plan, ctx.flows(), &initial);
    let mut flow_analyses = 0usize;
    let mut last_reports: Vec<Arc<FlowReport>> = Vec::new();
    let mut trace = ConvergenceTrace::default();
    // Per-flow memo backing the dirty-flow round skipping: each flow's last
    // analysis, valid while its input slots match `last_input` (the arena
    // the memo entries were computed against).
    let mut cache: Vec<Option<FlowCache>> = (0..plan.flows.len()).map(|_| None).collect();
    let mut last_input: Option<DenseJitters> = None;
    // `x` starts as the initial map and is otherwise an image of `G` except
    // right after an accepted Anderson step.
    let mut input_is_image = true;
    // Acceleration is only sound when the holistic equations have a unique
    // fixed point, i.e. when the jitter dependency graph is acyclic (see
    // `dependency_is_acyclic`); cyclic instances run plain Picard.
    let mut anderson = AndersonState {
        prev_x: None,
        last_residual: None,
        peak_residual: Time::ZERO,
        fallback: None,
        absorbs: 0,
        // A scope certifies acyclicity already (freezing is only sound
        // there, and the admission controller gates on it), so the graph
        // is not rebuilt for the Anderson gate on scoped runs.
        enabled: config.strategy == FixedPointStrategy::Anderson1
            && (scope.is_some() || dependency_is_acyclic(ctx.flows())),
    };

    for iteration in 1..=config.max_holistic_iterations {
        let round = evaluate_round(ctx, &x, config, scope, &mut cache, last_input.as_ref());
        if let Ok((_, analyzed)) = &round {
            flow_analyses += analyzed;
        }
        // After a *completed* round every cache entry is valid against the
        // arena it just read: refreshed entries were computed at `x`, kept
        // entries had inputs exactly equal to their own reference arena.
        // (When skipping is off the memo is never consulted — skip the
        // per-round arena clone.)
        last_input = if config.skip_unchanged_flows {
            Some(x.clone())
        } else {
            None
        };

        // A failure while evaluating `G` at an *extrapolated* iterate
        // (unschedulable outcome or hard error) may be an artefact of the
        // candidate's inflated jitters rather than a property of the flow
        // set: a Picard run of the same instance could converge fine.
        // Discard the candidate, resume from the image it extrapolated
        // from, and run plain Picard for the rest of the analysis.
        if !input_is_image && !matches!(round, Ok((RoundOutcome::Evaluated { .. }, _))) {
            trace.rounds.push(RoundTrace {
                iteration,
                residual: Time::ZERO,
                step: StepKind::AndersonAbsorbed,
            });
            x = anderson
                .fallback
                .take()
                // tidy-allow: unwrap invariant: a non-image iterate always has a revert target
                .expect("a non-image iterate always has a revert target");
            // The aborted round left the memo MIXED: flows it re-analysed
            // before failing are cached against the discarded candidate,
            // flows after the failure point still against the older image
            // — and the candidate agrees with the revert target on every
            // unlifted slot, so an input-equality check against it could
            // wrongly reuse those older entries.  Drop the reference arena
            // so the next round re-analyses everything.
            last_input = None;
            input_is_image = true;
            anderson.prev_x = None;
            anderson.last_residual = None;
            anderson.enabled = false;
            continue;
        }

        let (reports, gx) = match round?.0 {
            RoundOutcome::Evaluated { reports, next } => (reports, next),
            RoundOutcome::Unschedulable { partial, failure } => {
                // The aborted round still counts as an iteration, so it
                // also gets a trace entry (`trace.len() == iterations`
                // always holds); no next map was folded, hence no residual.
                trace.rounds.push(RoundTrace {
                    iteration,
                    residual: Time::ZERO,
                    step: StepKind::Picard,
                });
                drop(cache);
                return Ok(FixedPointRun {
                    report: AnalysisReport {
                        flows: unwrap_reports(partial),
                        converged: false,
                        iterations: iteration,
                        schedulable: false,
                        failure: Some(failure),
                        trace,
                    },
                    jitters: None,
                    flow_analyses,
                });
            }
        };
        let residual = gx.max_abs_diff(&x);

        // Post-hoc invariant check of the previous round's accepted
        // candidate: a from-below iterate satisfies G(x) ≥ x.  A violation
        // means the candidate overshot the fixed point in that component.
        // Acceleration only runs on acyclic instances, where *any* iterate
        // reaches the unique fixed point on the dependency-depth schedule,
        // so the overshoot is absorbed — the engine simply continues from
        // the image G(x) — but further acceleration is throttled.
        let mut absorbed = false;
        if !input_is_image {
            let invariant_broken = gx
                .slots()
                .iter()
                .zip(x.slots())
                .any(|(&value, &assumed)| value < assumed && !value.approx_eq(assumed));
            if invariant_broken {
                absorbed = true;
                anderson.absorbs += 1;
                if anderson.absorbs >= MAX_ABSORBS {
                    anderson.enabled = false;
                }
            }
        }

        let converged = gx.approx_eq(&x);
        if converged && input_is_image {
            trace.rounds.push(RoundTrace {
                iteration,
                residual,
                step: StepKind::Picard,
            });
            let schedulable = reports.iter().all(|r| r.meets_all_deadlines());
            let failure = if schedulable {
                None
            } else {
                let miss = reports
                    .iter()
                    .filter(|r| !r.meets_all_deadlines())
                    .map(|r| r.name.clone())
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!("deadline missed by: {miss}"))
            };
            // The reports are exactly the evaluation `G(x)`, so `x` (not
            // `gx`) is the map to cache: re-evaluating `G` at it
            // reproduces them byte for byte.
            let jitters = Some(x.to_keyed(plan));
            drop(cache);
            return Ok(FixedPointRun {
                report: AnalysisReport {
                    flows: unwrap_reports(reports),
                    converged: true,
                    iterations: iteration,
                    schedulable,
                    failure,
                    trace,
                },
                jitters,
                flow_analyses,
            });
        }

        // Choose the next iterate.  Extrapolation needs three consecutive
        // Picard-chained iterates (prev_x → x → gx) and a shrinking
        // residual; the first rounds of a run typically *grow* the residual
        // while jitter fronts still propagate and are never extrapolated.
        let mut step = if absorbed {
            StepKind::AndersonAbsorbed
        } else {
            StepKind::Picard
        };
        let mut next = None;
        anderson.peak_residual = anderson.peak_residual.max(residual);
        if anderson.enabled && input_is_image {
            if let Some(prev_x) = &anderson.prev_x {
                let shrinking = anderson
                    .last_residual
                    .is_some_and(|previous| residual < previous);
                let mid_tail =
                    residual.as_secs() >= MID_TAIL_FRACTION * anderson.peak_residual.as_secs();
                if shrinking && mid_tail {
                    match anderson_candidate(plan, &x, &gx, prev_x, config.horizon) {
                        Candidate::Extrapolated(candidate) => {
                            step = StepKind::Anderson;
                            next = Some(candidate);
                        }
                        Candidate::SafeguardRejected => step = StepKind::AndersonRejected,
                        Candidate::NothingToExtrapolate => {}
                    }
                }
            }
        }
        trace.rounds.push(RoundTrace {
            iteration,
            residual,
            step,
        });

        last_reports = reports;
        match next {
            Some(candidate) => {
                // Accepted Anderson step: keep the image we extrapolated
                // from as the revert target for a failed evaluation; the
                // Picard chain restarts from the landing point, so the
                // following round is always plain Picard.
                anderson.fallback = Some(gx);
                anderson.prev_x = None;
                anderson.last_residual = None;
                x = candidate;
                input_is_image = false;
            }
            None => {
                anderson.prev_x = Some(x);
                anderson.last_residual = Some(residual);
                x = gx;
                input_is_image = true;
            }
        }
    }

    // The jitter iteration did not stabilise within the budget.
    drop(cache);
    Ok(FixedPointRun {
        report: AnalysisReport {
            flows: unwrap_reports(last_reports),
            converged: false,
            iterations: config.max_holistic_iterations,
            schedulable: false,
            failure: Some(
                AnalysisError::HolisticNoConvergence {
                    iterations: config.max_holistic_iterations,
                }
                .to_string(),
            ),
            trace,
        },
        jitters: None,
        flow_analyses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holistic::analyze;
    use gmf_model::{paper_figure3_flow, voip_flow, Time, VoiceCodec};
    use gmf_net::{paper_figure1, shortest_path, FlowSet, Priority};

    fn paper_like_flows() -> (gmf_net::Topology, FlowSet) {
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(150.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(5),
        );
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[1], net.hosts[3]).unwrap(),
            Priority(7),
        );
        (t, fs)
    }

    #[test]
    fn strategy_and_step_kind_display() {
        assert_eq!(FixedPointStrategy::Picard.to_string(), "picard");
        assert_eq!(FixedPointStrategy::Anderson1.to_string(), "anderson1");
        assert_eq!(StepKind::Picard.to_string(), "picard");
        assert_eq!(StepKind::Anderson.to_string(), "anderson");
        assert_eq!(StepKind::AndersonRejected.to_string(), "anderson-rejected");
        assert_eq!(StepKind::AndersonAbsorbed.to_string(), "anderson-absorbed");
        assert_eq!(FixedPointStrategy::default(), FixedPointStrategy::Picard);
    }

    #[test]
    fn trace_records_one_round_per_iteration() {
        let (t, fs) = paper_like_flows();
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(report.converged);
        assert_eq!(report.trace.len(), report.iterations);
        assert!(!report.trace.is_empty());
        // Residuals are recorded and the final round's residual is within
        // the convergence tolerance (≈ zero).
        let last = report.trace.final_residual().unwrap();
        assert!(last.approx_eq(Time::ZERO), "final residual {last}");
        // The first round moves jitter, so its residual is positive.
        assert!(report.trace.rounds[0].residual > Time::ZERO);
        // Picard never accelerates.
        assert_eq!(report.trace.n_accelerated(), 0);
        assert!(report
            .trace
            .rounds
            .iter()
            .all(|r| r.step == StepKind::Picard));
    }

    #[test]
    fn anderson_flow_reports_equal_picard_at_convergence() {
        let (t, fs) = paper_like_flows();
        let picard = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        let anderson = analyze(
            &t,
            &fs,
            &AnalysisConfig::paper().with_strategy(FixedPointStrategy::Anderson1),
        )
        .unwrap();
        assert!(picard.converged && anderson.converged);
        assert_eq!(picard.flows, anderson.flows);
        assert_eq!(picard.schedulable, anderson.schedulable);
        assert_eq!(picard.failure, anderson.failure);
    }

    #[test]
    fn parallel_rounds_match_sequential_bytes() {
        let (t, fs) = paper_like_flows();
        let sequential = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel =
                analyze(&t, &fs, &AnalysisConfig::paper().with_threads(threads)).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn unschedulable_outcomes_are_identical_across_engines() {
        // An impossible deadline: partial reports + failure text must match
        // across thread counts and strategies.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let video = paper_figure3_flow("video", Time::from_millis(5.0), Time::from_millis(1.0));
        fs.add(
            video,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let base = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(!base.schedulable);
        // The aborted round is still traced: one entry per iteration.
        assert_eq!(base.trace.len(), base.iterations);
        for threads in [2usize, 8] {
            let par = analyze(&t, &fs, &AnalysisConfig::paper().with_threads(threads)).unwrap();
            assert_eq!(base, par);
        }
        let anderson = analyze(
            &t,
            &fs,
            &AnalysisConfig::paper().with_strategy(FixedPointStrategy::Anderson1),
        )
        .unwrap();
        assert_eq!(base.flows, anderson.flows);
        assert_eq!(base.failure, anderson.failure);
    }

    #[test]
    fn aborted_round_is_traced() {
        use gmf_model::cbr_flow;
        // Three flows that each need ~45% of the 10 Mbit/s access link:
        // the round aborts with an overload error instead of folding a
        // next jitter map, but still counts as a traced iteration.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
        for i in 0..3 {
            let f = cbr_flow(
                &format!("bulk{i}"),
                55_000,
                Time::from_millis(100.0),
                Time::from_millis(400.0),
                Time::from_millis(1.0),
            );
            fs.add(f, route.clone(), Priority(4));
        }
        let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
        assert!(!report.schedulable);
        assert!(!report.converged);
        assert!(report.failure.as_ref().unwrap().contains("overloaded"));
        assert_eq!(report.trace.len(), report.iterations);
        assert_eq!(report.iterations, 1);
        // Parallel rounds abort identically.
        let parallel = analyze(&t, &fs, &AnalysisConfig::paper().with_threads(4)).unwrap();
        assert_eq!(report, parallel);
    }

    #[test]
    fn slot_extrapolation_lifts_a_linear_recursion() {
        // Scalar linear iteration x ← a + b·x with fixed point a/(1−b):
        // the damped Aitken step must land η of the remaining distance
        // past the Picard step, i.e. just short of the fixed point.
        let (a, b) = (1.0f64, 0.5f64);
        let g = |v: f64| a + b * v;
        let x0 = 0.0;
        let x1 = g(x0);
        let x2 = g(x1);
        let SlotStep::Lift(got) = extrapolate_slot(
            Time::from_secs(x0),
            Time::from_secs(x1),
            Time::from_secs(x2),
            Time::from_secs(1e6),
        ) else {
            panic!("a contracting linear chain is extrapolated");
        };
        let got = got.as_secs();
        let fixed_point = a / (1.0 - b);
        let (d1, d2) = (x1 - x0, x2 - x1);
        let ratio = d2 / d1;
        let expected = x2 + ETA * (ratio / (1.0 - ratio)).min(BETA_MAX) * d2;
        assert!(
            (got - expected).abs() < 1e-12,
            "candidate {got} vs expected {expected} (fixed point {fixed_point})"
        );
        assert!(
            got < fixed_point,
            "the damped, capped jump must bias towards undershoot"
        );
        assert!(got > x2, "the candidate must advance past the Picard step");
    }

    #[test]
    fn slot_extrapolation_rejects_non_contracting_history() {
        let t = Time::from_secs;
        // A stalled component (x == gx): nothing to extrapolate — the slot
        // keeps its Picard value, not a safeguard rejection.
        assert_eq!(
            extrapolate_slot(t(1.0), t(2.0), t(2.0), t(1e6)),
            SlotStep::Keep
        );
        // Expanding gains (1 → 2 → 4): not contracting, nothing to do.
        assert_eq!(
            extrapolate_slot(t(1.0), t(2.0), t(4.0), t(1e6)),
            SlotStep::Keep
        );
        // A lift that would jump past the horizon trips the safeguard.
        // Gains 1.0 then 0.99: even the capped jump exceeds a horizon of 2.
        assert_eq!(
            extrapolate_slot(t(0.0), t(1.0), t(1.99), t(2.0)),
            SlotStep::Reject
        );
    }

    #[test]
    fn anderson_candidate_moves_only_contracting_components() {
        // A real single-flow context gives the candidate builder a plan
        // whose arena has one pair per walk resource; seed a two-slot
        // history where only the first-link slot contracts.
        let (t, net) = paper_figure1();
        let mut fs = FlowSet::new();
        let voice = voip_flow(
            "voice",
            VoiceCodec::G711,
            Time::from_millis(20.0),
            Time::from_millis(0.5),
        );
        fs.add(
            voice,
            shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap(),
            Priority(7),
        );
        let ctx = crate::context::AnalysisContext::new(&t, &fs).unwrap();
        let plan = ctx.plan();
        let first = plan.flows[0].first_link_pair;
        let second = plan.flows[0].stages[1].pair;
        let mk = |v0: f64, v1: f64| {
            let mut m = crate::dense::DenseJitters::zeroed(plan);
            m.set(plan, first, 0, Time::from_secs(v0));
            m.set(plan, second, 0, Time::from_secs(v1));
            m
        };
        // First-link slot contracts (0 → 1 → 1.5); the other slot has
        // locked onto its exact value (2 → 2 → 2) and must not move.
        let Candidate::Extrapolated(candidate) = anderson_candidate(
            plan,
            &mk(1.0, 2.0),
            &mk(1.5, 2.0),
            &mk(0.0, 2.0),
            Time::from_secs(1e6),
        ) else {
            panic!("the contracting component is extrapolated");
        };
        assert_eq!(
            candidate.get(plan, second, 0),
            Time::from_secs(2.0),
            "a locked component keeps its exact value"
        );
        assert!(candidate.get(plan, first, 0) > Time::from_secs(1.5));
        assert!(candidate.max_jitter(first) > Time::from_secs(1.5));
    }
}
