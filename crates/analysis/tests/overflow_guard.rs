//! Overflow regression tests: the analysis must either converge to finite
//! bounds or fail loudly (`Err` with an unschedulable classification) on
//! numerically extreme inputs — it must never wrap silently and report a
//! small, unsound bound.

// Test code may unwrap freely; the workspace lint targets library code.
#![allow(clippy::unwrap_used)]

use gmf_analysis::prelude::*;
use gmf_analysis::{fixed_point, FixedPointOutcome};
use gmf_model::{cbr_flow, BitRate, EncapsulationConfig, LinkDemand, Time};
use gmf_net::{paper_figure1, shortest_path, FlowSet, Priority};

/// A CBR flow on the paper's host0 → host3 route with the given cycle
/// period and source jitter.
fn single_flow_set(period: Time, jitter: Time) -> (gmf_net::Topology, FlowSet) {
    let (t, net) = paper_figure1();
    let mut fs = FlowSet::new();
    let route = shortest_path(&t, net.hosts[0], net.hosts[3]).unwrap();
    let flow = cbr_flow("extreme", 1_000, period, period, jitter);
    fs.add(flow, route, Priority(5));
    (t, fs)
}

#[test]
fn fixed_point_reports_nonfinite_iterates_as_horizon_excess() {
    // The iterate jumps straight past f64 range: 1 s * f64::MAX is finite
    // on the first step and infinite on the second.  The engine must report
    // a loud divergence (with the sentinel `Time::MAX` iterate), not spin
    // on infinities or NaNs.
    let out = fixed_point(Time::from_secs(1.0), Time::MAX, 1_000, |x| x * f64::MAX);
    match out {
        FixedPointOutcome::ExceededHorizon { last } => assert_eq!(last, Time::MAX),
        other => panic!("expected loud horizon excess, got {other:?}"),
    }
}

#[test]
fn request_bounds_saturate_on_astronomical_windows() {
    // MX/NX over a window astronomically larger than the cycle must pin to
    // the saturation sentinels instead of wrapping the cycle count.
    let flow = cbr_flow(
        "sat",
        1_000,
        Time::from_millis(10.0),
        Time::from_millis(10.0),
        Time::ZERO,
    );
    let demand = LinkDemand::new(
        &flow,
        &EncapsulationConfig::paper(),
        BitRate::from_mbps(10.0),
    );
    let astronomical = Time::from_secs(1.0e300);
    assert_eq!(demand.nx(astronomical), u64::MAX);
    assert_eq!(demand.mx(astronomical), Time::MAX);
    // Monotonicity survives saturation: a wider window never shrinks the
    // bound (a wrap would send it back towards zero).
    assert!(demand.mx(astronomical) >= demand.mx(Time::from_secs(1.0)));
    assert!(demand.nx(astronomical) >= demand.nx(Time::from_secs(1.0)));
}

#[test]
fn near_max_jitter_fails_loudly_not_wrapped() {
    // A source jitter near the top of the representable range makes every
    // interference window astronomically wide.  The analysis must fail
    // loudly — an unschedulable report (saturated bounds exceed every
    // deadline) or an unschedulable-classified error — never panic, and
    // never a "schedulable" verdict computed from wrapped arithmetic.
    let (t, fs) = single_flow_set(Time::from_millis(10.0), Time::from_secs(1.0e300));
    match analyze(&t, &fs, &AnalysisConfig::paper()) {
        Ok(report) => assert!(
            !report.schedulable,
            "extreme jitter must never be reported schedulable"
        ),
        Err(err) => assert!(
            err.is_unschedulable(),
            "extreme jitter must classify as unschedulable, got {err}"
        ),
    }
}

#[test]
fn near_max_period_converges_to_finite_bounds() {
    // An astronomically long cycle means near-zero utilization: the
    // analysis must converge normally and every bound must stay finite
    // (an intermediate `period * q` wrap would poison the report).
    let (t, fs) = single_flow_set(Time::from_secs(1.0e15), Time::from_millis(1.0));
    let report = analyze(&t, &fs, &AnalysisConfig::paper()).unwrap();
    assert!(report.schedulable);
    for flow in &report.flows {
        for frame in &flow.frames {
            assert!(
                frame.bound.is_finite() && frame.bound > Time::ZERO,
                "frame bound must be finite and positive, got {}",
                frame.bound
            );
        }
    }
}

#[test]
fn saturating_time_arithmetic_is_exact_in_range() {
    // The checked/saturating helpers are bit-identical to plain arithmetic
    // for in-range values — the determinism CI gate depends on this.
    let a = Time::from_millis(1.5);
    let b = Time::from_micros(250.0);
    assert_eq!(a.saturating_add(b), a + b);
    assert_eq!(a.saturating_mul(1_000), a * 1_000u64);
    assert_eq!(a.checked_add(b), Some(a + b));
    assert_eq!(a.checked_mul(1_000), Some(a * 1_000u64));
    // ...and clamp at the top instead of overflowing to infinity.
    assert_eq!(Time::MAX.saturating_add(Time::MAX), Time::MAX);
    assert_eq!(Time::MAX.saturating_mul(u64::MAX), Time::MAX);
    assert_eq!(Time::MAX.checked_add(Time::MAX), None);
    assert_eq!(Time::MAX.checked_mul(u64::MAX), None);
}
