//! Voice-over-IP and constant-bit-rate flow builders.
//!
//! The paper's motivation is interactive multimedia at the edge of the
//! Internet — Voice-over-IP and video conferencing.  Voice codecs emit a
//! fixed-size packet at a fixed interval, so a VoIP stream is simply the
//! degenerate GMF flow with a single frame.  These builders make the common
//! codecs one-liners and are used by the example applications and the
//! workload generators.

use crate::flow::GmfFlow;
use crate::units::{Bits, Time};
use serde::{Deserialize, Serialize};

/// Standard voice codecs (payload per packet and packet interval).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VoiceCodec {
    /// G.711 (PCM, 64 kbit/s): 160-byte payload every 20 ms.
    G711,
    /// G.726 (ADPCM, 32 kbit/s): 80-byte payload every 20 ms.
    G726,
    /// G.729 (CS-ACELP, 8 kbit/s): 20-byte payload every 20 ms.
    G729,
    /// G.723.1 (6.3 kbit/s): 24-byte payload every 30 ms.
    G7231,
}

impl VoiceCodec {
    /// Payload of one packet.
    pub fn payload(self) -> Bits {
        match self {
            VoiceCodec::G711 => Bits::from_bytes(160),
            VoiceCodec::G726 => Bits::from_bytes(80),
            VoiceCodec::G729 => Bits::from_bytes(20),
            VoiceCodec::G7231 => Bits::from_bytes(24),
        }
    }

    /// Time between two packets.
    pub fn packet_interval(self) -> Time {
        match self {
            VoiceCodec::G711 | VoiceCodec::G726 | VoiceCodec::G729 => Time::from_millis(20.0),
            VoiceCodec::G7231 => Time::from_millis(30.0),
        }
    }

    /// Nominal codec bit rate (payload only), bits per second.
    pub fn nominal_rate_bps(self) -> f64 {
        self.payload().as_bits() as f64 / self.packet_interval().as_secs()
    }
}

/// Build a VoIP flow for `codec` with the given end-to-end `deadline` and
/// source generalized `jitter`.
pub fn voip_flow(name: &str, codec: VoiceCodec, deadline: Time, jitter: Time) -> GmfFlow {
    GmfFlow::sporadic(
        name,
        codec.payload(),
        codec.packet_interval(),
        deadline,
        jitter,
    )
    // tidy-allow: unwrap invariant: codec parameters are always valid
    .expect("codec parameters are always valid")
}

/// Build a generic constant-bit-rate flow: `payload_bytes` every `interval`.
pub fn cbr_flow(
    name: &str,
    payload_bytes: u64,
    interval: Time,
    deadline: Time,
    jitter: Time,
) -> GmfFlow {
    GmfFlow::sporadic(
        name,
        Bits::from_bytes(payload_bytes),
        interval,
        deadline,
        jitter,
    )
    // tidy-allow: unwrap invariant: caller provides positive interval and payload
    .expect("caller provides positive interval and payload")
}

/// Build an audio+video conferencing *pair* of flows sharing a name prefix:
/// a G.711 voice flow and an MPEG-like video flow whose per-frame payloads
/// alternate between a large "refresh" frame and smaller difference frames.
///
/// Returns `(audio, video)`.
pub fn conference_flows(
    name_prefix: &str,
    video_big_bytes: u64,
    video_small_bytes: u64,
    video_period: Time,
    deadline: Time,
    jitter: Time,
) -> (GmfFlow, GmfFlow) {
    use crate::frame::FrameSpec;
    let audio = voip_flow(
        &format!("{name_prefix}-audio"),
        VoiceCodec::G711,
        deadline,
        jitter,
    );
    let video = GmfFlow::new(
        format!("{name_prefix}-video"),
        vec![
            FrameSpec {
                payload: Bits::from_bytes(video_big_bytes),
                min_interarrival: video_period,
                deadline,
                jitter,
            },
            FrameSpec {
                payload: Bits::from_bytes(video_small_bytes),
                min_interarrival: video_period,
                deadline,
                jitter,
            },
            FrameSpec {
                payload: Bits::from_bytes(video_small_bytes),
                min_interarrival: video_period,
                deadline,
                jitter,
            },
            FrameSpec {
                payload: Bits::from_bytes(video_small_bytes),
                min_interarrival: video_period,
                deadline,
                jitter,
            },
        ],
    )
    // tidy-allow: unwrap invariant: conference video parameters are always valid
    .expect("conference video parameters are always valid");
    (audio, video)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_parameters() {
        assert_eq!(VoiceCodec::G711.payload(), Bits::from_bytes(160));
        assert_eq!(VoiceCodec::G711.packet_interval(), Time::from_millis(20.0));
        assert!((VoiceCodec::G711.nominal_rate_bps() - 64_000.0).abs() < 1e-9);
        assert!((VoiceCodec::G726.nominal_rate_bps() - 32_000.0).abs() < 1e-9);
        assert!((VoiceCodec::G729.nominal_rate_bps() - 8_000.0).abs() < 1e-9);
        assert!((VoiceCodec::G7231.nominal_rate_bps() - 6_400.0).abs() < 1e-9);
    }

    #[test]
    fn voip_flow_is_single_frame() {
        let f = voip_flow(
            "call",
            VoiceCodec::G711,
            Time::from_millis(10.0),
            Time::ZERO,
        );
        assert_eq!(f.n_frames(), 1);
        assert_eq!(f.frame(0).unwrap().payload, Bits::from_bytes(160));
        assert_eq!(f.tsum(), Time::from_millis(20.0));
        assert_eq!(f.min_deadline(), Time::from_millis(10.0));
    }

    #[test]
    fn cbr_flow_builder() {
        let f = cbr_flow(
            "cam",
            5000,
            Time::from_millis(40.0),
            Time::from_millis(40.0),
            Time::ZERO,
        );
        assert_eq!(f.n_frames(), 1);
        assert!((f.mean_payload_rate_bps() - 5000.0 * 8.0 / 0.040).abs() < 1e-6);
    }

    #[test]
    fn conference_pair() {
        let (audio, video) = conference_flows(
            "room1",
            20_000,
            4_000,
            Time::from_millis(40.0),
            Time::from_millis(80.0),
            Time::from_millis(1.0),
        );
        assert_eq!(audio.name(), "room1-audio");
        assert_eq!(video.name(), "room1-video");
        assert_eq!(video.n_frames(), 4);
        assert_eq!(video.max_payload(), Bits::from_bytes(20_000));
        assert_eq!(video.tsum(), Time::from_millis(160.0));
        assert_eq!(audio.max_jitter(), Time::from_millis(1.0));
    }
}
