//! Generalized multiframe flows.
//!
//! A flow `τ_i` releases a (potentially infinite) sequence of UDP packets at
//! its source node.  The sequence cycles through `n_i` frame specifications:
//! after frame `n_i - 1` the flow wraps around to frame `0` again.  This
//! module implements the flow container, its validation, the cyclic-index
//! helpers and the purely time-domain aggregate quantities of the paper:
//!
//! * `TSUM_j` (eq. 6): the length of one full GMF cycle — a lower bound on
//!   the time between two successive requests of the *same* frame;
//! * `TSUM_j(k1, k2)` (eq. 9): the minimum time spanned by `k2` consecutive
//!   frame arrivals starting at frame `k1` (i.e. the sum of the `k2 - 1`
//!   inter-arrival gaps following frame `k1`).
//!
//! The size/time-per-link quantities (`CSUM`, `NSUM`, `MX`, `NX`, …) depend
//! on the link speed and therefore live in [`crate::demand`].

use crate::error::ModelError;
use crate::frame::FrameSpec;
use crate::units::{Bits, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a flow within a flow set.
///
/// Flow ids are dense indices assigned by the container that owns the flows
/// (e.g. `gmf_net::FlowSet`); the model crate treats them as opaque.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub usize);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// A generalized multiframe flow: a named, validated, cyclic sequence of
/// [`FrameSpec`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmfFlow {
    /// Human-readable name (used in reports and experiment output).
    name: String,
    /// The cyclic frame tuple; `frames.len()` is the paper's `n_i`.
    frames: Vec<FrameSpec>,
}

impl GmfFlow {
    /// Build a flow from a name and a non-empty list of frames.
    ///
    /// Every frame is validated (positive inter-arrival times and deadlines,
    /// non-negative jitter, non-empty payload).
    pub fn new(name: impl Into<String>, frames: Vec<FrameSpec>) -> Result<Self, ModelError> {
        if frames.is_empty() {
            return Err(ModelError::EmptyFlow);
        }
        for (k, frame) in frames.iter().enumerate() {
            frame.validate(k)?;
        }
        Ok(GmfFlow {
            name: name.into(),
            frames,
        })
    }

    /// Build a sporadic flow (the degenerate GMF flow with a single frame).
    ///
    /// This is the representation used by the sporadic baseline analysis:
    /// a classic sporadic stream with period `period`, payload `payload`
    /// and deadline `deadline`.
    pub fn sporadic(
        name: impl Into<String>,
        payload: Bits,
        period: Time,
        deadline: Time,
        jitter: Time,
    ) -> Result<Self, ModelError> {
        GmfFlow::new(
            name,
            vec![FrameSpec {
                payload,
                min_interarrival: period,
                deadline,
                jitter,
            }],
        )
    }

    /// The flow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `n_i`: the number of frames in the GMF cycle.
    pub fn n_frames(&self) -> usize {
        self.frames.len()
    }

    /// The frame specifications, in cycle order.
    pub fn frames(&self) -> &[FrameSpec] {
        &self.frames
    }

    /// Frame `k` of the cycle (`k < n_frames`), as stored.
    pub fn frame(&self, k: usize) -> Result<&FrameSpec, ModelError> {
        self.frames.get(k).ok_or(ModelError::FrameOutOfRange {
            frame: k,
            n_frames: self.frames.len(),
        })
    }

    /// Frame `k mod n_i` — the cyclic lookup used by the windowed sums.
    pub fn frame_cyclic(&self, k: usize) -> &FrameSpec {
        &self.frames[k % self.frames.len()]
    }

    /// `TSUM_i` (eq. 6): the sum of all minimum inter-arrival times of the
    /// cycle, i.e. a lower bound on the time between two successive requests
    /// of the same frame.
    pub fn tsum(&self) -> Time {
        self.frames.iter().map(|f| f.min_interarrival).sum()
    }

    /// `TSUM_i(k1, k2)` (eq. 9): the minimum time spanned by `k2`
    /// consecutive frame arrivals starting at frame `k1`.
    ///
    /// Note the range: the paper sums the inter-arrival times with indices
    /// `k1 .. k1 + k2 - 2` (inclusive), i.e. the `k2 - 1` gaps *between* the
    /// `k2` arrivals.  `k2 = 0` and `k2 = 1` both give zero.
    pub fn tsum_window(&self, k1: usize, k2: usize) -> Time {
        if k2 <= 1 {
            return Time::ZERO;
        }
        let mut total = Time::ZERO;
        for k in k1..(k1 + k2 - 1) {
            total += self.frame_cyclic(k).min_interarrival;
        }
        total
    }

    /// The largest payload of any frame of the flow.
    pub fn max_payload(&self) -> Bits {
        self.frames
            .iter()
            .map(|f| f.payload)
            .fold(Bits::ZERO, Bits::max)
    }

    /// The total payload of one GMF cycle.
    pub fn total_payload(&self) -> Bits {
        self.frames.iter().map(|f| f.payload).sum()
    }

    /// The smallest minimum inter-arrival time of any frame.
    pub fn min_interarrival(&self) -> Time {
        self.frames
            .iter()
            .map(|f| f.min_interarrival)
            .min()
            // tidy-allow: unwrap invariant: validated flow has at least one frame
            .expect("validated flow has at least one frame")
    }

    /// The smallest relative deadline of any frame.
    pub fn min_deadline(&self) -> Time {
        self.frames
            .iter()
            .map(|f| f.deadline)
            .min()
            // tidy-allow: unwrap invariant: validated flow has at least one frame
            .expect("validated flow has at least one frame")
    }

    /// The largest generalized jitter of any frame at the source
    /// (`max_k GJ_i^k`).
    pub fn max_jitter(&self) -> Time {
        self.frames
            .iter()
            .map(|f| f.jitter)
            .fold(Time::ZERO, Time::max)
    }

    /// Long-run average payload bit rate of the flow
    /// (total cycle payload / cycle length).
    pub fn mean_payload_rate_bps(&self) -> f64 {
        self.total_payload().as_bits() as f64 / self.tsum().as_secs()
    }

    /// Collapse this GMF flow into the sporadic flow that the classic
    /// (non-multiframe) holistic analysis would have to assume: the densest
    /// inter-arrival time paired with the largest payload, the tightest
    /// deadline and the largest jitter.
    ///
    /// The resulting flow upper-bounds the original in every time window, so
    /// analysing it is safe but (often grossly) pessimistic — this is the
    /// baseline the GMF analysis is compared against in experiment E8.
    pub fn to_sporadic_overapproximation(&self) -> GmfFlow {
        GmfFlow {
            name: format!("{}(sporadic)", self.name),
            frames: vec![FrameSpec {
                payload: self.max_payload(),
                min_interarrival: self.min_interarrival(),
                deadline: self.min_deadline(),
                jitter: self.max_jitter(),
            }],
        }
    }

    /// Return a copy of the flow with every frame's generalized jitter set
    /// to `jitter`.
    pub fn with_uniform_jitter(&self, jitter: Time) -> GmfFlow {
        let mut frames = self.frames.clone();
        for f in &mut frames {
            f.jitter = jitter;
        }
        GmfFlow {
            name: self.name.clone(),
            frames,
        }
    }

    /// Return a copy of the flow with every frame's deadline set to
    /// `deadline`.
    pub fn with_uniform_deadline(&self, deadline: Time) -> GmfFlow {
        let mut frames = self.frames.clone();
        for f in &mut frames {
            f.deadline = deadline;
        }
        GmfFlow {
            name: self.name.clone(),
            frames,
        }
    }

    /// Scale every payload by `factor` (rounding to whole bits, at least 1
    /// bit).  Useful for utilization sweeps.
    pub fn with_scaled_payloads(&self, factor: f64) -> GmfFlow {
        assert!(factor > 0.0 && factor.is_finite());
        let mut frames = self.frames.clone();
        for f in &mut frames {
            let scaled = (f.payload.as_bits() as f64 * factor).round().max(8.0) as u64;
            f.payload = Bits::from_bits(scaled);
        }
        GmfFlow {
            name: self.name.clone(),
            frames,
        }
    }
}

impl fmt::Display for GmfFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n={}, TSUM={}, max payload={})",
            self.name,
            self.n_frames(),
            self.tsum(),
            self.max_payload()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A three-frame flow with distinct parameters for exercising cyclic
    /// indexing: payloads 1000/2000/3000 B, inter-arrivals 10/20/30 ms.
    fn three_frame_flow() -> GmfFlow {
        GmfFlow::new(
            "t",
            vec![
                FrameSpec::from_bytes_ms(1000, 10.0, 100.0),
                FrameSpec::from_bytes_ms(2000, 20.0, 100.0),
                FrameSpec::from_bytes_ms(3000, 30.0, 100.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_flow() {
        assert_eq!(GmfFlow::new("x", vec![]), Err(ModelError::EmptyFlow));
    }

    #[test]
    fn rejects_invalid_frame() {
        let bad = FrameSpec::from_bytes_ms(100, 0.0, 10.0);
        assert!(matches!(
            GmfFlow::new("x", vec![FrameSpec::from_bytes_ms(1, 1.0, 1.0), bad]),
            Err(ModelError::NonPositiveInterArrival { frame: 1, .. })
        ));
    }

    #[test]
    fn basic_accessors() {
        let f = three_frame_flow();
        assert_eq!(f.name(), "t");
        assert_eq!(f.n_frames(), 3);
        assert_eq!(f.frames().len(), 3);
        assert_eq!(f.frame(2).unwrap().payload, Bits::from_bytes(3000));
        assert!(matches!(
            f.frame(3),
            Err(ModelError::FrameOutOfRange {
                frame: 3,
                n_frames: 3
            })
        ));
        assert_eq!(f.frame_cyclic(4).payload, Bits::from_bytes(2000));
        assert_eq!(f.max_payload(), Bits::from_bytes(3000));
        assert_eq!(f.total_payload(), Bits::from_bytes(6000));
        assert_eq!(f.min_interarrival(), Time::from_millis(10.0));
        assert_eq!(f.min_deadline(), Time::from_millis(100.0));
        assert_eq!(f.max_jitter(), Time::ZERO);
    }

    #[test]
    fn tsum_is_cycle_length() {
        let f = three_frame_flow();
        assert!(f.tsum().approx_eq(Time::from_millis(60.0)));
    }

    #[test]
    fn tsum_window_counts_gaps_not_frames() {
        let f = three_frame_flow();
        // One arrival spans zero time.
        assert_eq!(f.tsum_window(0, 0), Time::ZERO);
        assert_eq!(f.tsum_window(2, 1), Time::ZERO);
        // Two arrivals starting at frame 0: the single gap T_0 = 10 ms.
        assert!(f.tsum_window(0, 2).approx_eq(Time::from_millis(10.0)));
        // Three arrivals starting at frame 1: gaps T_1 + T_2 = 50 ms.
        assert!(f.tsum_window(1, 3).approx_eq(Time::from_millis(50.0)));
        // Wrapping: three arrivals starting at frame 2: T_2 + T_0 = 40 ms.
        assert!(f.tsum_window(2, 3).approx_eq(Time::from_millis(40.0)));
        // A full cycle plus one frame: all gaps once plus T_0 again.
        assert!(f.tsum_window(0, 4).approx_eq(Time::from_millis(60.0)));
    }

    #[test]
    fn mean_rate_matches_hand_calculation() {
        let f = three_frame_flow();
        // 6000 bytes per 60 ms = 800 kbit/s.
        assert!((f.mean_payload_rate_bps() - 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn sporadic_constructor_and_collapse() {
        let s = GmfFlow::sporadic(
            "voice",
            Bits::from_bytes(160),
            Time::from_millis(20.0),
            Time::from_millis(20.0),
            Time::ZERO,
        )
        .unwrap();
        assert_eq!(s.n_frames(), 1);
        assert_eq!(s.tsum(), Time::from_millis(20.0));

        let f = three_frame_flow();
        let collapsed = f.to_sporadic_overapproximation();
        assert_eq!(collapsed.n_frames(), 1);
        assert_eq!(collapsed.frame(0).unwrap().payload, Bits::from_bytes(3000));
        assert_eq!(
            collapsed.frame(0).unwrap().min_interarrival,
            Time::from_millis(10.0)
        );
        // The collapsed flow is denser: its long-run rate dominates.
        assert!(collapsed.mean_payload_rate_bps() >= f.mean_payload_rate_bps());
    }

    #[test]
    fn uniform_modifiers() {
        let f = three_frame_flow()
            .with_uniform_jitter(Time::from_millis(1.0))
            .with_uniform_deadline(Time::from_millis(42.0));
        assert!(f
            .frames()
            .iter()
            .all(|x| x.jitter == Time::from_millis(1.0)));
        assert!(f
            .frames()
            .iter()
            .all(|x| x.deadline == Time::from_millis(42.0)));
        assert_eq!(f.max_jitter(), Time::from_millis(1.0));
    }

    #[test]
    fn scaled_payloads() {
        let f = three_frame_flow().with_scaled_payloads(0.5);
        assert_eq!(f.frame(0).unwrap().payload, Bits::from_bytes(500));
        assert_eq!(f.frame(2).unwrap().payload, Bits::from_bytes(1500));
        // Scaling never produces an empty payload.
        let tiny = three_frame_flow().with_scaled_payloads(1e-9);
        assert!(tiny.frames().iter().all(|x| !x.payload.is_zero()));
    }

    #[test]
    fn display_contains_name_and_n() {
        let s = format!("{}", three_frame_flow());
        assert!(s.contains('t'));
        assert!(s.contains("n=3"));
    }

    #[test]
    fn serde_roundtrip() {
        let f = three_frame_flow();
        let json = serde_json::to_string(&f).unwrap();
        let back: GmfFlow = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
