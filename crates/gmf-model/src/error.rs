//! Error types for the GMF traffic-model crate.

use crate::units::Time;
use std::fmt;

/// Errors raised while constructing or validating GMF flows and their
/// per-link demand descriptions.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A flow was declared with zero frames (the GMF model requires `n >= 1`).
    EmptyFlow,
    /// A minimum inter-arrival time was not strictly positive.
    NonPositiveInterArrival {
        /// Index of the offending frame within the flow.
        frame: usize,
        /// The offending value.
        value: Time,
    },
    /// A relative deadline was not strictly positive.
    NonPositiveDeadline {
        /// Index of the offending frame within the flow.
        frame: usize,
        /// The offending value.
        value: Time,
    },
    /// A generalized jitter was negative.
    NegativeJitter {
        /// Index of the offending frame within the flow.
        frame: usize,
        /// The offending value.
        value: Time,
    },
    /// A payload was empty; every GMF frame must transmit at least one byte.
    EmptyPayload {
        /// Index of the offending frame within the flow.
        frame: usize,
    },
    /// A frame index was out of range for the flow.
    FrameOutOfRange {
        /// The requested frame index.
        frame: usize,
        /// The number of frames in the flow.
        n_frames: usize,
    },
    /// A non-finite value was encountered.
    NonFinite {
        /// Human-readable description of which quantity was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyFlow => write!(f, "a GMF flow must have at least one frame"),
            ModelError::NonPositiveInterArrival { frame, value } => write!(
                f,
                "frame {frame}: minimum inter-arrival time must be > 0, got {value}"
            ),
            ModelError::NonPositiveDeadline { frame, value } => {
                write!(
                    f,
                    "frame {frame}: relative deadline must be > 0, got {value}"
                )
            }
            ModelError::NegativeJitter { frame, value } => {
                write!(
                    f,
                    "frame {frame}: generalized jitter must be >= 0, got {value}"
                )
            }
            ModelError::EmptyPayload { frame } => {
                write!(f, "frame {frame}: payload must contain at least one byte")
            }
            ModelError::FrameOutOfRange { frame, n_frames } => {
                write!(
                    f,
                    "frame index {frame} out of range for a flow with {n_frames} frames"
                )
            }
            ModelError::NonFinite { what } => write!(f, "non-finite value for {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NonPositiveInterArrival {
            frame: 3,
            value: Time::ZERO,
        };
        let s = e.to_string();
        assert!(s.contains("frame 3"));
        assert!(s.contains("inter-arrival"));

        assert!(ModelError::EmptyFlow
            .to_string()
            .contains("at least one frame"));
        assert!(ModelError::EmptyPayload { frame: 1 }
            .to_string()
            .contains("frame 1"));
        assert!(ModelError::FrameOutOfRange {
            frame: 9,
            n_frames: 3
        }
        .to_string()
        .contains("out of range"));
        assert!(ModelError::NonFinite { what: "deadline" }
            .to_string()
            .contains("deadline"));
        assert!(ModelError::NegativeJitter {
            frame: 0,
            value: Time::from_millis(-1.0)
        }
        .to_string()
        .contains("jitter"));
        assert!(ModelError::NonPositiveDeadline {
            frame: 2,
            value: Time::ZERO
        }
        .to_string()
        .contains("deadline"));
    }
}
