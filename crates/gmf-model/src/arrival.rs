//! Concrete arrival sequences generated from a GMF specification.
//!
//! The GMF model only specifies *lower bounds* on inter-arrival times; a
//! concrete execution (and therefore the discrete-event simulator) needs an
//! actual arrival trace.  This module provides the trace representation and
//! the deterministic generators:
//!
//! * [`dense_trace`] — every frame arrives exactly `T_i^k` after its
//!   predecessor and all Ethernet frames of a packet are released at the
//!   start of the jitter window.  This is the maximum-rate behaviour the
//!   analysis bounds.
//! * [`dense_trace_with_offsets`] — like [`dense_trace`] but with an initial
//!   phase offset and per-packet jitter offsets supplied by the caller
//!   (the simulator uses this to inject randomised jitter).
//!
//! Randomised traces (extra slack between arrivals, random jitter placement)
//! are built on top of these by the `switch-sim` crate, which owns the RNG.

use crate::flow::GmfFlow;
use crate::units::Time;
use serde::{Deserialize, Serialize};

/// One UDP-packet arrival at the source node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketArrival {
    /// Sequence number of the packet within the trace (0, 1, 2, …).
    pub sequence: u64,
    /// Index of the GMF frame this packet instantiates (`sequence mod n`).
    pub frame_index: usize,
    /// Time at which the *first* Ethernet frame of the packet is released.
    pub release: Time,
    /// Width of the release window of the packet's Ethernet frames: all
    /// Ethernet frames are released in `[release, release + jitter_window)`.
    pub jitter_window: Time,
}

/// A finite arrival trace of one flow.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ArrivalTrace {
    arrivals: Vec<PacketArrival>,
}

impl ArrivalTrace {
    /// Build a trace from raw arrivals (must be sorted by release time).
    pub fn new(arrivals: Vec<PacketArrival>) -> Self {
        debug_assert!(
            arrivals.windows(2).all(|w| w[0].release <= w[1].release),
            "arrival trace must be sorted by release time"
        );
        ArrivalTrace { arrivals }
    }

    /// The arrivals, in release order.
    pub fn arrivals(&self) -> &[PacketArrival] {
        &self.arrivals
    }

    /// Number of packet arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` if the trace contains no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The release time of the last arrival, or zero for an empty trace.
    pub fn span(&self) -> Time {
        self.arrivals
            .last()
            .map(|a| a.release)
            .unwrap_or(Time::ZERO)
    }
}

/// Generate the densest legal arrival trace of `flow` up to (and including
/// arrivals released strictly before) `horizon`.
///
/// The first frame of the cycle arrives at time zero and every subsequent
/// frame arrives exactly its predecessor's minimum inter-arrival time later.
pub fn dense_trace(flow: &GmfFlow, horizon: Time) -> ArrivalTrace {
    dense_trace_with_offsets(flow, horizon, Time::ZERO, |_seq, jitter| jitter)
}

/// Generate a dense trace with an initial phase offset and caller-controlled
/// jitter windows.
///
/// * `phase` shifts every release by a constant.
/// * `jitter_of(sequence, spec_jitter)` returns the effective jitter window
///   of packet `sequence`, given the specification's `GJ_i^k`; the common
///   cases are "use the specification" (identity) and "no jitter"
///   (`|_, _| Time::ZERO`).
pub fn dense_trace_with_offsets(
    flow: &GmfFlow,
    horizon: Time,
    phase: Time,
    mut jitter_of: impl FnMut(u64, Time) -> Time,
) -> ArrivalTrace {
    let mut arrivals = Vec::new();
    let mut release = phase;
    let mut sequence: u64 = 0;
    while release < horizon {
        let frame_index = (sequence as usize) % flow.n_frames();
        let spec = flow.frame_cyclic(frame_index);
        arrivals.push(PacketArrival {
            sequence,
            frame_index,
            release,
            jitter_window: jitter_of(sequence, spec.jitter),
        });
        release += spec.min_interarrival;
        sequence += 1;
    }
    ArrivalTrace::new(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSpec;

    fn flow() -> GmfFlow {
        GmfFlow::new(
            "t",
            vec![
                FrameSpec::from_bytes_ms(1000, 10.0, 100.0).with_jitter(Time::from_millis(1.0)),
                FrameSpec::from_bytes_ms(2000, 20.0, 100.0),
                FrameSpec::from_bytes_ms(4000, 30.0, 100.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dense_trace_release_times_follow_min_interarrivals() {
        let trace = dense_trace(&flow(), Time::from_millis(125.0));
        // Releases: 0, 10, 30, 60, 70, 90, 120 ms (cycle of 60 ms).
        let expected_ms = [0.0, 10.0, 30.0, 60.0, 70.0, 90.0, 120.0];
        assert_eq!(trace.len(), expected_ms.len());
        for (arrival, &ms) in trace.arrivals().iter().zip(&expected_ms) {
            assert!(arrival.release.approx_eq(Time::from_millis(ms)));
        }
        // Frame indices cycle 0,1,2,0,1,2,...
        let idx: Vec<usize> = trace.arrivals().iter().map(|a| a.frame_index).collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2, 0]);
        // Sequence numbers are consecutive.
        assert!(trace
            .arrivals()
            .iter()
            .enumerate()
            .all(|(i, a)| a.sequence == i as u64));
        // Jitter windows are copied from the specification.
        assert_eq!(trace.arrivals()[0].jitter_window, Time::from_millis(1.0));
        assert_eq!(trace.arrivals()[1].jitter_window, Time::ZERO);
        assert!(trace.span().approx_eq(Time::from_millis(120.0)));
    }

    #[test]
    fn horizon_is_exclusive() {
        let trace = dense_trace(&flow(), Time::from_millis(60.0));
        // Arrival at exactly 60 ms is excluded.
        assert_eq!(trace.len(), 3);
    }

    #[test]
    fn empty_horizon_gives_empty_trace() {
        let trace = dense_trace(&flow(), Time::ZERO);
        assert!(trace.is_empty());
        assert_eq!(trace.span(), Time::ZERO);
        assert_eq!(trace.len(), 0);
    }

    #[test]
    fn phase_and_jitter_overrides() {
        let trace = dense_trace_with_offsets(
            &flow(),
            Time::from_millis(40.0),
            Time::from_millis(5.0),
            |seq, _| Time::from_micros(100.0 * seq as f64),
        );
        // Releases at 5, 15 and 35 ms; the next one (65 ms) is past the horizon.
        assert_eq!(trace.len(), 3);
        assert!(trace.arrivals()[0]
            .release
            .approx_eq(Time::from_millis(5.0)));
        assert!(trace.arrivals()[1]
            .release
            .approx_eq(Time::from_millis(15.0)));
        assert!(trace.arrivals()[2]
            .release
            .approx_eq(Time::from_millis(35.0)));
        assert_eq!(trace.arrivals()[2].jitter_window, Time::from_micros(200.0));
    }
}
