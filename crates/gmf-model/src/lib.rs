//! # gmf-model
//!
//! The **generalized multiframe (GMF) traffic model** with generalized
//! jitter, Ethernet packetization and the request-bound functions used by
//! the schedulability analysis of
//!
//! > B. Andersson, *"Schedulability Analysis of Generalized Multiframe
//! > Traffic on Multihop-Networks Comprising Software-Implemented
//! > Ethernet-Switches"*, 2008.
//!
//! A flow [`GmfFlow`] cycles through `n` frames; frame `k` is a UDP packet
//! of `S_i^k` payload bits, arrives at least `T_i^k` before the next frame,
//! must reach its destination within `D_i^k`, and releases its Ethernet
//! frames over a window of `GJ_i^k` (the *generalized jitter*).  Given a
//! link speed, [`LinkDemand`] packetizes every frame ([`encapsulation`]) and
//! provides the paper's request-bound functions `CSUM/NSUM/TSUM`,
//! `MXS/MX` and `NXS/NX`, which are the only interface the analysis crate
//! needs.
//!
//! ```
//! use gmf_model::prelude::*;
//!
//! // The paper's Figure 3 MPEG stream (IBBPBBPBB, one packet every 30 ms).
//! let flow = paper_figure3_flow("video", Time::from_millis(100.0), Time::from_millis(1.0));
//! assert_eq!(flow.n_frames(), 9);
//! assert!(flow.tsum().approx_eq(Time::from_millis(270.0)));
//!
//! // Its demand on the paper's 10 Mbit/s first link.
//! let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(10.0));
//! assert_eq!(demand.nsum(), 94);                       // Ethernet frames per GOP
//! assert!(demand.mft().approx_eq(Time::from_millis(1.2304))); // eq. (1)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod arrival;
pub mod demand;
pub mod encapsulation;
pub mod error;
pub mod flow;
pub mod frame;
pub mod gop;
pub mod table;
pub mod units;
pub mod voip;

pub use arrival::{dense_trace, dense_trace_with_offsets, ArrivalTrace, PacketArrival};
pub use demand::LinkDemand;
pub use encapsulation::{
    datagram_bits, max_frame_transmission_time, n_ethernet_frames, packetize, transmission_time,
    Encapsulation, EncapsulationConfig, Packetization,
};
pub use error::ModelError;
pub use flow::{FlowId, GmfFlow};
pub use frame::FrameSpec;
pub use gop::{paper_figure3_flow, paper_figure3_pattern, GopFrameType, GopSizes, GopSpec};
pub use table::DemandTable;
pub use units::{BitRate, Bits, Time};
pub use voip::{cbr_flow, conference_flows, voip_flow, VoiceCodec};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::arrival::{dense_trace, ArrivalTrace, PacketArrival};
    pub use crate::demand::LinkDemand;
    pub use crate::encapsulation::{Encapsulation, EncapsulationConfig};
    pub use crate::flow::{FlowId, GmfFlow};
    pub use crate::frame::FrameSpec;
    pub use crate::gop::{paper_figure3_flow, GopFrameType, GopSizes, GopSpec};
    pub use crate::units::{BitRate, Bits, Time};
    pub use crate::voip::{cbr_flow, voip_flow, VoiceCodec};
}
