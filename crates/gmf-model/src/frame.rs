//! A single frame of a generalized multiframe flow.
//!
//! In the GMF model a flow cycles through `n` *frames* (not to be confused
//! with Ethernet frames).  Frame `k` of flow `τ_i` is characterised by four
//! scalars, which the paper stores in four parallel tuples `T_i`, `D_i`,
//! `GJ_i` and `S_i`:
//!
//! * `S_i^k` — the payload size of the UDP packet released by the frame,
//! * `T_i^k` — the minimum time between the arrival of frame `k` and the
//!   arrival of frame `k+1` at the source node,
//! * `D_i^k` — the relative deadline: frame `k` must reach the destination
//!   within `D_i^k` of its arrival at the source,
//! * `GJ_i^k` — the *generalized jitter*: if the first Ethernet frame of
//!   frame `k` is released at time `t`, all Ethernet frames of the frame are
//!   released during `[t, t + GJ_i^k)`.
//!
//! We group the four scalars of one frame into a [`FrameSpec`] struct; a
//! [`crate::flow::GmfFlow`] is then a cyclic sequence of `FrameSpec`s.

use crate::error::ModelError;
use crate::units::{Bits, Time};
use serde::{Deserialize, Serialize};

/// The specification of one frame (one UDP packet class) of a GMF flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSpec {
    /// `S_i^k`: number of bits of application payload carried by the UDP
    /// packet of this frame (excluding UDP/RTP/IP/Ethernet headers).
    pub payload: Bits,
    /// `T_i^k`: minimum inter-arrival time between this frame and the next
    /// frame of the flow at the source node.
    pub min_interarrival: Time,
    /// `D_i^k`: relative end-to-end deadline of this frame.
    pub deadline: Time,
    /// `GJ_i^k`: generalized jitter of this frame at the source node.
    pub jitter: Time,
}

impl FrameSpec {
    /// Create a frame specification.
    ///
    /// This does not validate the values; validation happens when the frame
    /// is assembled into a [`crate::flow::GmfFlow`] (or explicitly via
    /// [`FrameSpec::validate`]).
    pub fn new(payload: Bits, min_interarrival: Time, deadline: Time, jitter: Time) -> Self {
        FrameSpec {
            payload,
            min_interarrival,
            deadline,
            jitter,
        }
    }

    /// Convenience constructor for a frame with payload given in bytes and
    /// times in milliseconds, with zero generalized jitter.
    pub fn from_bytes_ms(payload_bytes: u64, min_interarrival_ms: f64, deadline_ms: f64) -> Self {
        FrameSpec {
            payload: Bits::from_bytes(payload_bytes),
            min_interarrival: Time::from_millis(min_interarrival_ms),
            deadline: Time::from_millis(deadline_ms),
            jitter: Time::ZERO,
        }
    }

    /// Return a copy of this frame with the given generalized jitter.
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }

    /// Return a copy of this frame with the given relative deadline.
    pub fn with_deadline(mut self, deadline: Time) -> Self {
        self.deadline = deadline;
        self
    }

    /// Check that the frame parameters are physically meaningful.
    ///
    /// `frame_index` is only used to produce a useful error message.
    pub fn validate(&self, frame_index: usize) -> Result<(), ModelError> {
        if !self.min_interarrival.is_finite()
            || !self.deadline.is_finite()
            || !self.jitter.is_finite()
        {
            return Err(ModelError::NonFinite {
                what: "frame timing parameter",
            });
        }
        if self.payload.is_zero() {
            return Err(ModelError::EmptyPayload { frame: frame_index });
        }
        if self.min_interarrival <= Time::ZERO {
            return Err(ModelError::NonPositiveInterArrival {
                frame: frame_index,
                value: self.min_interarrival,
            });
        }
        if self.deadline <= Time::ZERO {
            return Err(ModelError::NonPositiveDeadline {
                frame: frame_index,
                value: self.deadline,
            });
        }
        if self.jitter.is_negative() {
            return Err(ModelError::NegativeJitter {
                frame: frame_index,
                value: self.jitter,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> FrameSpec {
        FrameSpec::from_bytes_ms(1500, 30.0, 100.0)
    }

    #[test]
    fn from_bytes_ms_sets_fields() {
        let f = valid();
        assert_eq!(f.payload, Bits::from_bytes(1500));
        assert_eq!(f.min_interarrival, Time::from_millis(30.0));
        assert_eq!(f.deadline, Time::from_millis(100.0));
        assert_eq!(f.jitter, Time::ZERO);
    }

    #[test]
    fn builders_replace_fields() {
        let f = valid()
            .with_jitter(Time::from_millis(1.0))
            .with_deadline(Time::from_millis(50.0));
        assert_eq!(f.jitter, Time::from_millis(1.0));
        assert_eq!(f.deadline, Time::from_millis(50.0));
    }

    #[test]
    fn validate_accepts_valid_frame() {
        assert!(valid().validate(0).is_ok());
    }

    #[test]
    fn validate_rejects_zero_payload() {
        let mut f = valid();
        f.payload = Bits::ZERO;
        assert_eq!(f.validate(2), Err(ModelError::EmptyPayload { frame: 2 }));
    }

    #[test]
    fn validate_rejects_non_positive_interarrival() {
        let mut f = valid();
        f.min_interarrival = Time::ZERO;
        assert!(matches!(
            f.validate(1),
            Err(ModelError::NonPositiveInterArrival { frame: 1, .. })
        ));
        f.min_interarrival = Time::from_millis(-5.0);
        assert!(matches!(
            f.validate(1),
            Err(ModelError::NonPositiveInterArrival { .. })
        ));
    }

    #[test]
    fn validate_rejects_non_positive_deadline() {
        let mut f = valid();
        f.deadline = Time::ZERO;
        assert!(matches!(
            f.validate(0),
            Err(ModelError::NonPositiveDeadline { .. })
        ));
    }

    #[test]
    fn validate_rejects_negative_jitter() {
        let mut f = valid();
        f.jitter = Time::from_millis(-1.0);
        assert!(matches!(
            f.validate(0),
            Err(ModelError::NegativeJitter { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let f = valid().with_jitter(Time::from_millis(1.0));
        let json = serde_json::to_string(&f).unwrap();
        let back: FrameSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
