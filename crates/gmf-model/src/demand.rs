//! Per-link demand of a GMF flow: the request-bound machinery of the paper.
//!
//! Once a flow's frames have been packetized for a specific link (known
//! speed), the analysis only ever needs the following quantities, all
//! defined in the paper's "Basic parameters" section:
//!
//! | Paper | Here | Meaning |
//! |-------|------|---------|
//! | `C_i^k,link` | [`LinkDemand::c`] | transmission time of frame `k` on the link |
//! | `CSUM_j^link` (eq. 4) | [`LinkDemand::csum`] | total transmission time of one GMF cycle |
//! | `NSUM_j^link` (eq. 5) | [`LinkDemand::nsum`] | total number of Ethernet frames of one GMF cycle |
//! | `TSUM_j` (eq. 6) | [`LinkDemand::tsum`] | length of one GMF cycle |
//! | `CSUM_j(k1,k2)` (eq. 7) | [`LinkDemand::csum_window`] | transmission time of `k2` consecutive frames starting at `k1` |
//! | `NSUM_j(k1,k2)` (eq. 8) | [`LinkDemand::nsum_window`] | Ethernet frames of `k2` consecutive frames starting at `k1` |
//! | `TSUM_j(k1,k2)` (eq. 9) | [`LinkDemand::tsum_window`] | minimum span of `k2` consecutive arrivals starting at `k1` |
//! | `MXS` (eq. 10) / `MX` (eq. 11) | [`LinkDemand::mxs`] / [`LinkDemand::mx`] | upper bound on link time used by the flow in a window |
//! | `NXS` (eq. 12) / `NX` (eq. 13) | [`LinkDemand::nxs`] / [`LinkDemand::nx`] | upper bound on Ethernet frames received from the flow in a window |
//! | `MFT` (eq. 1) | [`LinkDemand::mft`] | maximum-frame-transmission time of the link |
//!
//! A [`LinkDemand`] is therefore "flow × link" — the analysis builds one for
//! every (flow, link) pair along every route.

use crate::encapsulation::{
    max_frame_transmission_time, packetize, EncapsulationConfig, Packetization,
};
use crate::flow::GmfFlow;
use crate::units::{BitRate, Time};
use serde::{Deserialize, Serialize};

/// The per-link request-bound description of one GMF flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkDemand {
    /// Transmission time `C_i^k` of every frame of the cycle on this link.
    c: Vec<Time>,
    /// Number of Ethernet frames of every frame of the cycle.
    n_eth: Vec<u64>,
    /// Minimum inter-arrival times `T_i^k` (copied from the flow).
    t: Vec<Time>,
    /// `CSUM`: sum of `c`.
    csum: Time,
    /// `NSUM`: sum of `n_eth`.
    nsum: u64,
    /// `TSUM`: sum of `t`.
    tsum: Time,
    /// `MFT` of the link.
    mft: Time,
    /// The link speed the demand was computed for.
    speed: BitRate,
}

impl LinkDemand {
    /// Build the per-link demand of `flow` on a link of speed `speed` under
    /// the given packetization configuration.
    pub fn new(flow: &GmfFlow, config: &EncapsulationConfig, speed: BitRate) -> Self {
        let mut c = Vec::with_capacity(flow.n_frames());
        let mut n_eth = Vec::with_capacity(flow.n_frames());
        let mut t = Vec::with_capacity(flow.n_frames());
        for frame in flow.frames() {
            let p: Packetization = packetize(frame.payload, config);
            c.push(p.transmission_time(speed));
            n_eth.push(p.n_ethernet_frames);
            t.push(frame.min_interarrival);
        }
        let csum = c.iter().copied().sum();
        let nsum = n_eth.iter().sum();
        let tsum = t.iter().copied().sum();
        let mft = max_frame_transmission_time(speed);
        LinkDemand {
            c,
            n_eth,
            t,
            csum,
            nsum,
            tsum,
            mft,
            speed,
        }
    }

    /// Number of frames in the GMF cycle.
    pub fn n_frames(&self) -> usize {
        self.c.len()
    }

    /// `C_i^k`: transmission time of frame `k` on this link.
    pub fn c(&self, k: usize) -> Time {
        self.c[k % self.c.len()]
    }

    /// Number of Ethernet frames of frame `k`.
    pub fn n_ethernet_frames(&self, k: usize) -> u64 {
        self.n_eth[k % self.n_eth.len()]
    }

    /// Minimum inter-arrival time `T_i^k`.
    pub fn t(&self, k: usize) -> Time {
        self.t[k % self.t.len()]
    }

    /// The largest per-frame transmission time of the cycle.
    pub fn max_c(&self) -> Time {
        self.c.iter().copied().fold(Time::ZERO, Time::max)
    }

    /// The largest per-frame Ethernet-frame count of the cycle.
    pub fn max_n_ethernet_frames(&self) -> u64 {
        self.n_eth.iter().copied().max().unwrap_or(0)
    }

    /// `CSUM` (eq. 4).
    pub fn csum(&self) -> Time {
        self.csum
    }

    /// `NSUM` (eq. 5).
    pub fn nsum(&self) -> u64 {
        self.nsum
    }

    /// `TSUM` (eq. 6).
    pub fn tsum(&self) -> Time {
        self.tsum
    }

    /// `MFT` (eq. 1) of the link this demand was computed for.
    pub fn mft(&self) -> Time {
        self.mft
    }

    /// The link speed this demand was computed for.
    pub fn speed(&self) -> BitRate {
        self.speed
    }

    /// Long-run fraction of the link used by the flow: `CSUM / TSUM`.
    ///
    /// This is the quantity summed in the schedulability conditions
    /// (20), (34) and (35).
    // tidy-allow: float utilization is a dimensionless ratio compared against 1.0, not a bound
    pub fn utilization(&self) -> f64 {
        self.csum / self.tsum
    }

    /// `CSUM(k1, k2)` (eq. 7): total transmission time of `k2` consecutive
    /// frames starting at frame `k1` (cyclic).
    pub fn csum_window(&self, k1: usize, k2: usize) -> Time {
        let mut total = Time::ZERO;
        for k in k1..(k1 + k2) {
            total += self.c(k);
        }
        total
    }

    /// `NSUM(k1, k2)` (eq. 8): total number of Ethernet frames of `k2`
    /// consecutive frames starting at frame `k1` (cyclic).
    pub fn nsum_window(&self, k1: usize, k2: usize) -> u64 {
        let mut total = 0;
        for k in k1..(k1 + k2) {
            total += self.n_ethernet_frames(k);
        }
        total
    }

    /// `TSUM(k1, k2)` (eq. 9): minimum span of `k2` consecutive arrivals
    /// starting at frame `k1` — the sum of the `k2 - 1` gaps between them.
    pub fn tsum_window(&self, k1: usize, k2: usize) -> Time {
        if k2 <= 1 {
            return Time::ZERO;
        }
        let mut total = Time::ZERO;
        for k in k1..(k1 + k2 - 1) {
            total += self.t(k);
        }
        total
    }

    /// `MXS(τ_j, N1, N2, t)` (eq. 10): upper bound on the link time used by
    /// the flow in a window of length `t`, for `0 < t < TSUM`.
    ///
    /// The bound maximises, over every starting frame `k1` and every number
    /// of consecutive frames `k2` whose minimum arrival span fits in the
    /// window (`TSUM(k1,k2) <= t`), the transmission time of those frames —
    /// capped at `t` itself (the flow cannot use more link time than the
    /// window length).
    pub fn mxs(&self, t: Time) -> Time {
        if t <= Time::ZERO {
            return Time::ZERO;
        }
        let n = self.n_frames();
        let mut best = Time::ZERO;
        for k1 in 0..n {
            for k2 in 1..=n {
                if self.tsum_window(k1, k2) <= t {
                    let candidate = self.csum_window(k1, k2).min(t);
                    best = best.max(candidate);
                } else {
                    // TSUM(k1, k2) is non-decreasing in k2, so no larger k2
                    // can satisfy the constraint either.
                    break;
                }
            }
        }
        best
    }

    /// `MX(τ_j, N1, N2, t)` (eq. 11): upper bound on the link time used by
    /// the flow in a window of length `t`, defined for all `t`.
    ///
    /// Whole GMF cycles contribute `CSUM` each; the residual window is
    /// bounded by [`LinkDemand::mxs`].
    pub fn mx(&self, t: Time) -> Time {
        if t <= Time::ZERO {
            return Time::ZERO;
        }
        let cycles = t.div_floor(self.tsum);
        if cycles == u64::MAX {
            // The cycle count saturated (window beyond any representable
            // horizon); any finite splice would under-count, so return the
            // conservative top element and let the caller's horizon check
            // fail loudly.
            return Time::MAX;
        }
        let residual = t - self.tsum * cycles;
        self.csum
            .saturating_mul(cycles)
            .saturating_add(self.mxs(residual))
    }

    /// `NXS(τ_j, N1, N2, t)` (eq. 12): upper bound on the number of Ethernet
    /// frames received from the flow in a window of length `t`, for
    /// `0 < t < TSUM`.
    pub fn nxs(&self, t: Time) -> u64 {
        if t <= Time::ZERO {
            return 0;
        }
        let n = self.n_frames();
        let mut best = 0;
        for k1 in 0..n {
            for k2 in 1..=n {
                if self.tsum_window(k1, k2) <= t {
                    best = best.max(self.nsum_window(k1, k2));
                } else {
                    break;
                }
            }
        }
        best
    }

    /// `NX(τ_j, N1, N2, t)` (eq. 13): upper bound on the number of Ethernet
    /// frames received from the flow in a window of length `t`, defined for
    /// all `t`.
    pub fn nx(&self, t: Time) -> u64 {
        if t <= Time::ZERO {
            return 0;
        }
        let cycles = t.div_floor(self.tsum);
        if cycles == u64::MAX {
            return u64::MAX;
        }
        let residual = t - self.tsum * cycles;
        // Saturating on the frame *count* keeps the bound conservative and,
        // under the `release-checked` profile, is what keeps a pathological
        // window from wrapping u64 silently.
        self.nsum
            .saturating_mul(cycles)
            .saturating_add(self.nxs(residual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSpec;
    use crate::units::Bits;

    /// A 3-frame flow on a 10 Mbit/s link, small enough to hand-check.
    ///
    /// Payloads 1000 / 2000 / 4000 bytes, inter-arrivals 10 / 20 / 30 ms.
    /// Under the paper's packetization (plain UDP, no minimum-frame floor):
    ///  * 1000 B -> 1008 B datagram -> 1 fragment,  8064 + 464  =  8528 bit
    ///  * 2000 B -> 2008 B datagram -> 2 fragments, 12304 + (16064-11840+464) = 12304 + 4688 = 16992 bit
    ///  * 4000 B -> 4008 B datagram -> 3 fragments, 2*12304 + 8848 = 33456 bit
    fn demand() -> LinkDemand {
        let flow = GmfFlow::new(
            "t",
            vec![
                FrameSpec::from_bytes_ms(1000, 10.0, 100.0),
                FrameSpec::from_bytes_ms(2000, 20.0, 100.0),
                FrameSpec::from_bytes_ms(4000, 30.0, 100.0),
            ],
        )
        .unwrap();
        LinkDemand::new(
            &flow,
            &EncapsulationConfig::paper(),
            BitRate::from_mbps(10.0),
        )
    }

    const S: f64 = 1e7; // link speed in bit/s for hand calculations

    #[test]
    fn per_frame_transmission_times() {
        let d = demand();
        assert_eq!(d.n_frames(), 3);
        assert!(d.c(0).approx_eq(Time::from_secs(8528.0 / S)));
        assert!(d.c(1).approx_eq(Time::from_secs(16992.0 / S)));
        assert!(d.c(2).approx_eq(Time::from_secs(33456.0 / S)));
        // Cyclic indexing.
        assert_eq!(d.c(3), d.c(0));
        assert_eq!(d.n_ethernet_frames(0), 1);
        assert_eq!(d.n_ethernet_frames(1), 2);
        assert_eq!(d.n_ethernet_frames(2), 3);
        assert_eq!(d.n_ethernet_frames(5), 3);
        assert_eq!(d.t(1), Time::from_millis(20.0));
        assert!(d.max_c().approx_eq(d.c(2)));
        assert_eq!(d.max_n_ethernet_frames(), 3);
    }

    #[test]
    fn aggregate_sums() {
        let d = demand();
        assert!(d
            .csum()
            .approx_eq(Time::from_secs((8528.0 + 16992.0 + 33456.0) / S)));
        assert_eq!(d.nsum(), 6);
        assert!(d.tsum().approx_eq(Time::from_millis(60.0)));
        assert!(d.mft().approx_eq(Time::from_millis(1.2304)));
        assert!((d.utilization() - d.csum().as_secs() / 0.060).abs() < 1e-12);
        assert_eq!(d.speed().as_bps(), S);
    }

    #[test]
    fn nsum_equals_ceil_c_over_mft() {
        // Equation (5) defines NSUM as the sum of ceil(C_k / MFT); our
        // implementation counts actual Ethernet fragments.  The two must
        // agree (and do, because a partial fragment always costs less wire
        // time than a full one).
        let d = demand();
        let by_ceil: u64 = (0..d.n_frames())
            .map(|k| (d.c(k).as_secs() / d.mft().as_secs()).ceil() as u64)
            .sum();
        assert_eq!(by_ceil, d.nsum());
    }

    #[test]
    fn windowed_sums_wrap_around() {
        let d = demand();
        assert!(d.csum_window(0, 0).approx_eq(Time::ZERO));
        assert!(d.csum_window(2, 2).approx_eq(d.c(2) + d.c(0)));
        assert_eq!(d.nsum_window(1, 3), 2 + 3 + 1);
        assert!(d.tsum_window(2, 2).approx_eq(Time::from_millis(30.0)));
        assert!(d.tsum_window(0, 3).approx_eq(Time::from_millis(30.0)));
        assert_eq!(d.tsum_window(0, 1), Time::ZERO);
    }

    #[test]
    fn mxs_small_windows() {
        let d = demand();
        // A window shorter than any single C is bounded by the window itself.
        let tiny = Time::from_micros(100.0);
        assert!(d.mxs(tiny).approx_eq(tiny));
        // A window of 1 ms fits no second arrival (smallest gap is 10 ms) so
        // the bound is the largest single-frame C capped at t; C_2 = 3.3456 ms
        // exceeds 1 ms so the cap applies.
        assert!(d
            .mxs(Time::from_millis(1.0))
            .approx_eq(Time::from_millis(1.0)));
        // A 5 ms window: the largest single C (3.3456 ms) fits uncapped.
        assert!(d.mxs(Time::from_millis(5.0)).approx_eq(d.c(2)));
        // Zero or negative windows contribute nothing.
        assert_eq!(d.mxs(Time::ZERO), Time::ZERO);
        assert_eq!(d.mxs(Time::from_millis(-3.0)), Time::ZERO);
    }

    #[test]
    fn mxs_multi_frame_windows() {
        let d = demand();
        // 25 ms window: the best placement is arrivals of frames {1, 2}
        // (span T_1 = 20 ms <= 25 ms), giving C_1 + C_2; the full cycle needs
        // a 30 ms span and does not fit.
        let expected = d.c(1) + d.c(2);
        assert!(d.mxs(Time::from_millis(25.0)).approx_eq(expected));
        // 30 ms window: arrivals of the whole cycle starting at frame 0 span
        // T_0 + T_1 = 30 ms <= 30 ms, so the bound is the full CSUM.
        assert!(d.mxs(Time::from_millis(30.0)).approx_eq(d.csum()));
        // 29 ms window: the whole cycle no longer fits; {1, 2} is best again.
        assert!(d.mxs(Time::from_millis(29.0)).approx_eq(expected));
    }

    #[test]
    fn mx_splices_whole_cycles() {
        let d = demand();
        // Exactly one cycle: CSUM + MXS(0) = CSUM.
        assert!(d.mx(d.tsum()).approx_eq(d.csum()));
        // One cycle plus 5 ms: CSUM + MXS(5 ms).
        let t = d.tsum() + Time::from_millis(5.0);
        assert!(d.mx(t).approx_eq(d.csum() + d.mxs(Time::from_millis(5.0))));
        // Ten cycles.
        assert!(d.mx(d.tsum() * 10u64).approx_eq(d.csum() * 10u64));
        // Sub-cycle windows fall through to MXS.
        assert!(d
            .mx(Time::from_millis(5.0))
            .approx_eq(d.mxs(Time::from_millis(5.0))));
        assert_eq!(d.mx(Time::ZERO), Time::ZERO);
    }

    #[test]
    fn nxs_and_nx() {
        let d = demand();
        // Any positive window catches at least the densest single frame.
        assert_eq!(d.nxs(Time::from_micros(1.0)), 3);
        // 25 ms window: frames {1, 2} -> 5 Ethernet frames.
        assert_eq!(d.nxs(Time::from_millis(25.0)), 5);
        // 30 ms window: the whole cycle fits -> 6.
        assert_eq!(d.nxs(Time::from_millis(30.0)), 6);
        assert_eq!(d.nxs(Time::ZERO), 0);
        // NX over two cycles plus a bit.
        let t = d.tsum() * 2u64 + Time::from_millis(1.0);
        assert_eq!(d.nx(t), 2 * 6 + d.nxs(Time::from_millis(1.0)));
        assert_eq!(d.nx(Time::ZERO), 0);
    }

    #[test]
    fn mx_is_monotone_in_t() {
        let d = demand();
        let mut prev = Time::ZERO;
        for i in 0..400 {
            let t = Time::from_millis(0.5 * i as f64);
            let v = d.mx(t);
            assert!(
                v + Time::from_nanos(1.0) >= prev,
                "MX must be monotone: MX({t}) = {v} < previous {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn nx_is_monotone_in_t() {
        let d = demand();
        let mut prev = 0;
        for i in 0..400 {
            let t = Time::from_millis(0.5 * i as f64);
            let v = d.nx(t);
            assert!(v >= prev, "NX must be monotone");
            prev = v;
        }
    }

    #[test]
    fn sporadic_flow_mx_matches_classic_request_bound() {
        // For a single-frame (sporadic) flow, NX(t) should match the classic
        // ceil(t / T) request bound for t that are not exact multiples of T,
        // and MX(t) = NX-like count * C capped by the window at the tail.
        let flow = GmfFlow::sporadic(
            "s",
            Bits::from_bytes(1000),
            Time::from_millis(10.0),
            Time::from_millis(10.0),
            Time::ZERO,
        )
        .unwrap();
        let d = LinkDemand::new(
            &flow,
            &EncapsulationConfig::paper(),
            BitRate::from_mbps(10.0),
        );
        let c = d.c(0);
        // t = 25 ms: floor(25/10) = 2 cycles + MXS(5ms) = 2C + C = 3C
        // (classic ceil(25/10) = 3 jobs).
        assert!(d.mx(Time::from_millis(25.0)).approx_eq(c * 3u64));
        assert_eq!(d.nx(Time::from_millis(25.0)), 3);
        // t barely above zero: the request bound still counts one job, MX is
        // capped by the window length.
        assert_eq!(d.nx(Time::from_micros(1.0)), 1);
    }
}
