//! MPEG group-of-pictures (GOP) flow builders.
//!
//! The paper motivates the GMF model with MPEG-encoded video: a movie is a
//! repetition of a GOP such as `IBBPBBPBB`, and the different frame types
//! have very different sizes (an I frame can easily be five times larger
//! than a B frame).  Figure 3 of the paper shows such a stream with one UDP
//! packet transmitted every 30 ms, the first packet of every GOP carrying
//! the I frame together with the first P frame (written `I+P`), because of
//! the MPEG transmission-order reordering of B frames.
//!
//! [`GopSpec`] turns a GOP description into a [`GmfFlow`];
//! [`paper_figure3_flow`] reconstructs the exact flow of the paper's worked
//! example (9 frames, 30 ms spacing, `TSUM = 270 ms`, 94 Ethernet frames per
//! GOP on any link — see DESIGN.md §4.5 for how the sizes were
//! reconstructed).

use crate::error::ModelError;
use crate::flow::GmfFlow;
use crate::frame::FrameSpec;
use crate::units::{Bits, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of one transmitted MPEG picture (one UDP packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GopFrameType {
    /// An intra-coded picture transmitted together with the first
    /// predicted picture of the GOP (the paper's `I+P` packet).
    IPlusP,
    /// An intra-coded picture on its own.
    I,
    /// A predicted picture.
    P,
    /// A bidirectionally predicted picture.
    B,
}

impl fmt::Display for GopFrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GopFrameType::IPlusP => write!(f, "I+P"),
            GopFrameType::I => write!(f, "I"),
            GopFrameType::P => write!(f, "P"),
            GopFrameType::B => write!(f, "B"),
        }
    }
}

/// Sizes (application payload) of each picture type, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GopSizes {
    /// Payload of an `I+P` packet.
    pub i_plus_p_bytes: u64,
    /// Payload of an `I` packet.
    pub i_bytes: u64,
    /// Payload of a `P` packet.
    pub p_bytes: u64,
    /// Payload of a `B` packet.
    pub b_bytes: u64,
}

impl GopSizes {
    /// The sizes reconstructed for the paper's Figure 3/4 example: they give
    /// exactly 30 + 2×14 + 6×6 = 94 Ethernet frames per GOP (the paper's
    /// `NSUM = 94`) under plain-UDP packetization.
    pub fn paper_example() -> Self {
        GopSizes {
            i_plus_p_bytes: 43_000,
            i_bytes: 30_000,
            p_bytes: 20_000,
            b_bytes: 8_000,
        }
    }

    /// A standard-definition profile (~1.5 Mbit/s at 30 ms frame spacing).
    pub fn sd_profile() -> Self {
        GopSizes {
            i_plus_p_bytes: 18_000,
            i_bytes: 14_000,
            p_bytes: 7_000,
            b_bytes: 3_000,
        }
    }

    /// A high-definition profile (~12 Mbit/s at 30 ms frame spacing).
    pub fn hd_profile() -> Self {
        GopSizes {
            i_plus_p_bytes: 130_000,
            i_bytes: 100_000,
            p_bytes: 60_000,
            b_bytes: 25_000,
        }
    }

    /// Payload of one packet of the given type.
    pub fn payload(&self, ty: GopFrameType) -> Bits {
        match ty {
            GopFrameType::IPlusP => Bits::from_bytes(self.i_plus_p_bytes),
            GopFrameType::I => Bits::from_bytes(self.i_bytes),
            GopFrameType::P => Bits::from_bytes(self.p_bytes),
            GopFrameType::B => Bits::from_bytes(self.b_bytes),
        }
    }

    /// Scale every size by `factor`, rounding to whole bytes (at least 1).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |b: u64| ((b as f64 * factor).round() as u64).max(1);
        GopSizes {
            i_plus_p_bytes: s(self.i_plus_p_bytes),
            i_bytes: s(self.i_bytes),
            p_bytes: s(self.p_bytes),
            b_bytes: s(self.b_bytes),
        }
    }
}

/// Complete description of a periodic MPEG stream as a GMF flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GopSpec {
    /// Name of the resulting flow.
    pub name: String,
    /// The transmitted packet sequence of one GOP (transmission order).
    pub pattern: Vec<GopFrameType>,
    /// Per-type payload sizes.
    pub sizes: GopSizes,
    /// Time between consecutive packet transmissions (the paper uses 30 ms).
    pub frame_period: Time,
    /// Relative end-to-end deadline of every packet.
    pub deadline: Time,
    /// Generalized jitter of every packet at the source.
    pub jitter: Time,
}

impl GopSpec {
    /// Parse a transmission-order pattern string such as `"IBBPBBPBB"` or
    /// `"(I+P)BBPBBPBB"`; `+` binds the `I` and following `P` into a single
    /// `I+P` packet, parentheses are ignored.
    pub fn parse_pattern(pattern: &str) -> Result<Vec<GopFrameType>, ModelError> {
        let chars: Vec<char> = pattern
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '(' && *c != ')')
            .collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                'I' | 'i' => {
                    if i + 2 < chars.len()
                        && chars[i + 1] == '+'
                        && (chars[i + 2] == 'P' || chars[i + 2] == 'p')
                    {
                        out.push(GopFrameType::IPlusP);
                        i += 3;
                    } else {
                        out.push(GopFrameType::I);
                        i += 1;
                    }
                }
                'P' | 'p' => {
                    out.push(GopFrameType::P);
                    i += 1;
                }
                'B' | 'b' => {
                    out.push(GopFrameType::B);
                    i += 1;
                }
                _ => {
                    return Err(ModelError::NonFinite {
                        what: "unrecognised character in GOP pattern",
                    })
                }
            }
        }
        if out.is_empty() {
            return Err(ModelError::EmptyFlow);
        }
        Ok(out)
    }

    /// Build the GMF flow described by this specification.
    pub fn build(&self) -> Result<GmfFlow, ModelError> {
        if self.pattern.is_empty() {
            return Err(ModelError::EmptyFlow);
        }
        let frames = self
            .pattern
            .iter()
            .map(|&ty| FrameSpec {
                payload: self.sizes.payload(ty),
                min_interarrival: self.frame_period,
                deadline: self.deadline,
                jitter: self.jitter,
            })
            .collect();
        GmfFlow::new(self.name.clone(), frames)
    }
}

/// The transmission-order pattern of the paper's Figure 3:
/// `I+P, B, B, P, B, B, P, B, B` (9 packets per GOP).
pub fn paper_figure3_pattern() -> Vec<GopFrameType> {
    use GopFrameType::*;
    vec![IPlusP, B, B, P, B, B, P, B, B]
}

/// The GMF flow of the paper's Figure 3/4 worked example: the
/// `IBBPBBPBB` MPEG stream with one packet every 30 ms
/// (`n = 9`, `TSUM = 270 ms`) and the reconstructed payload sizes that give
/// 94 Ethernet frames per GOP.  `jitter` is the generalized jitter of every
/// packet (the paper's Figure 4 uses 1 ms); `deadline` is the end-to-end
/// deadline assigned to every packet.
pub fn paper_figure3_flow(name: &str, deadline: Time, jitter: Time) -> GmfFlow {
    GopSpec {
        name: name.to_string(),
        pattern: paper_figure3_pattern(),
        sizes: GopSizes::paper_example(),
        frame_period: Time::from_millis(30.0),
        deadline,
        jitter,
    }
    .build()
    // tidy-allow: unwrap invariant: the paper example flow is always valid
    .expect("the paper example flow is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::LinkDemand;
    use crate::encapsulation::EncapsulationConfig;
    use crate::units::BitRate;

    #[test]
    fn parse_pattern_variants() {
        use GopFrameType::*;
        assert_eq!(
            GopSpec::parse_pattern("IBBPBBPBB").unwrap(),
            vec![I, B, B, P, B, B, P, B, B]
        );
        assert_eq!(
            GopSpec::parse_pattern("(I+P)BB PBB PBB").unwrap(),
            vec![IPlusP, B, B, P, B, B, P, B, B]
        );
        assert_eq!(GopSpec::parse_pattern("i+pbb").unwrap(), vec![IPlusP, B, B]);
        assert!(GopSpec::parse_pattern("").is_err());
        assert!(GopSpec::parse_pattern("IXP").is_err());
    }

    #[test]
    fn frame_type_display() {
        assert_eq!(GopFrameType::IPlusP.to_string(), "I+P");
        assert_eq!(GopFrameType::I.to_string(), "I");
        assert_eq!(GopFrameType::P.to_string(), "P");
        assert_eq!(GopFrameType::B.to_string(), "B");
    }

    #[test]
    fn paper_flow_structure() {
        let flow = paper_figure3_flow("mpeg", Time::from_millis(100.0), Time::from_millis(1.0));
        assert_eq!(flow.n_frames(), 9);
        assert!(flow.tsum().approx_eq(Time::from_millis(270.0)));
        assert_eq!(flow.max_jitter(), Time::from_millis(1.0));
        // The first packet (I+P) is the largest.
        assert_eq!(flow.frame(0).unwrap().payload, Bits::from_bytes(43_000));
        assert_eq!(flow.max_payload(), Bits::from_bytes(43_000));
    }

    #[test]
    fn paper_flow_has_94_ethernet_frames_per_gop() {
        // This is the paper's NSUM = 94 worked value (Figure 4).
        let flow = paper_figure3_flow("mpeg", Time::from_millis(100.0), Time::from_millis(1.0));
        let demand = LinkDemand::new(
            &flow,
            &EncapsulationConfig::paper(),
            BitRate::from_mbps(10.0),
        );
        assert_eq!(demand.nsum(), 94);
        // Per-frame fragment counts: 30 for I+P, 14 for each P, 6 for each B.
        assert_eq!(demand.n_ethernet_frames(0), 30);
        assert_eq!(demand.n_ethernet_frames(3), 14);
        assert_eq!(demand.n_ethernet_frames(6), 14);
        assert_eq!(demand.n_ethernet_frames(1), 6);
        assert_eq!(demand.n_ethernet_frames(8), 6);
    }

    #[test]
    fn gop_sizes_helpers() {
        let s = GopSizes::paper_example();
        assert_eq!(s.payload(GopFrameType::IPlusP), Bits::from_bytes(43_000));
        assert_eq!(s.payload(GopFrameType::I), Bits::from_bytes(30_000));
        assert_eq!(s.payload(GopFrameType::P), Bits::from_bytes(20_000));
        assert_eq!(s.payload(GopFrameType::B), Bits::from_bytes(8_000));
        let half = s.scaled(0.5);
        assert_eq!(half.b_bytes, 4_000);
        // Scaling never yields a zero size.
        let tiny = s.scaled(1e-9);
        assert!(tiny.b_bytes >= 1);
    }

    #[test]
    fn profiles_are_ordered_by_rate() {
        let period = Time::from_millis(30.0);
        let mk = |sizes: GopSizes| {
            GopSpec {
                name: "x".into(),
                pattern: paper_figure3_pattern(),
                sizes,
                frame_period: period,
                deadline: Time::from_millis(100.0),
                jitter: Time::ZERO,
            }
            .build()
            .unwrap()
        };
        let sd = mk(GopSizes::sd_profile());
        let paper = mk(GopSizes::paper_example());
        let hd = mk(GopSizes::hd_profile());
        assert!(sd.mean_payload_rate_bps() < paper.mean_payload_rate_bps());
        assert!(paper.mean_payload_rate_bps() < hd.mean_payload_rate_bps());
    }

    #[test]
    fn empty_pattern_build_fails() {
        let spec = GopSpec {
            name: "x".into(),
            pattern: vec![],
            sizes: GopSizes::sd_profile(),
            frame_period: Time::from_millis(30.0),
            deadline: Time::from_millis(100.0),
            jitter: Time::ZERO,
        };
        assert_eq!(spec.build(), Err(ModelError::EmptyFlow));
    }
}
