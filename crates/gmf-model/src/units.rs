//! Physical-quantity newtypes used throughout the workspace.
//!
//! The schedulability analysis in the paper manipulates three kinds of
//! quantities: *time* (busy periods, response times, inter-arrival times,
//! jitter), *data sizes* in bits (payloads, Ethernet frame sizes) and *link
//! speeds* in bits per second.  Mixing these up is a classic source of silent
//! errors (the paper itself switches between µs, ms and seconds), so each is
//! wrapped in a dedicated newtype with only the physically meaningful
//! arithmetic implemented.
//!
//! Times are stored as `f64` seconds.  The fixed-point iterations of the
//! analysis converge to within fractions of a nanosecond for realistic
//! parameters, far below the microsecond-scale quantities the paper deals
//! with, so `f64` is ample; see `Time::approx_eq` for the tolerance used by
//! convergence checks.

// tidy-allow-file: float Time and BitRate are *stored* as f64 (seconds, bit/s); this
// module is the sanctioned numeric boundary — every arithmetic operation, tolerance
// and overflow check on them lives behind the API defined here.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Relative tolerance used when comparing two [`Time`] values for
/// fixed-point convergence.
pub const TIME_RELATIVE_EPSILON: f64 = 1e-12;

/// Absolute tolerance (seconds) used when comparing two [`Time`] values that
/// are both very close to zero.
pub const TIME_ABSOLUTE_EPSILON: f64 = 1e-15;

/// A span of time, stored in seconds.
///
/// `Time` is used both for durations (transmission times, busy periods) and
/// for instants on the simulator timeline (where the origin is the start of
/// the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Time(f64);

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time(0.0);

    /// The largest representable time (~5.7e300 years): the saturation
    /// value of the `saturating_*` helpers.  Any analysis quantity that
    /// reaches it has long since exceeded every horizon.
    pub const MAX: Time = Time(f64::MAX);

    /// Construct a time from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite(), "Time must be finite, got {secs}");
        Time(secs)
    }

    /// Construct a time from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Time::from_secs(ms * 1e-3)
    }

    /// Construct a time from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Time::from_secs(us * 1e-6)
    }

    /// Construct a time from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Time::from_secs(ns * 1e-9)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// `true` if this time is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// `true` if this time is finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` if this time is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Clamp a possibly-negative time at zero.
    #[inline]
    pub fn clamp_non_negative(self) -> Time {
        if self.0 < 0.0 {
            Time::ZERO
        } else {
            self
        }
    }

    /// Checked addition: `None` if the sum is not representable (the f64
    /// overflowed to an infinity).
    ///
    /// For finite results this is bit-identical to `self + rhs`, so the
    /// checked helpers can be used on hot paths without perturbing the
    /// byte-identical-bounds guarantees.
    #[inline]
    #[must_use]
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        let sum = self.0 + rhs.0;
        if sum.is_finite() {
            Some(Time(sum))
        } else {
            None
        }
    }

    /// Checked subtraction: `None` if the difference is not representable.
    #[inline]
    #[must_use]
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        let diff = self.0 - rhs.0;
        if diff.is_finite() {
            Some(Time(diff))
        } else {
            None
        }
    }

    /// Checked multiplication by an instance/cycle count: `None` if the
    /// product is not representable.  This is the checked form of the
    /// `CSUM · q` / `TSUM · q` products of the response-time equations.
    #[inline]
    #[must_use]
    pub fn checked_mul(self, rhs: u64) -> Option<Time> {
        let product = self.0 * rhs as f64;
        if product.is_finite() {
            Some(Time(product))
        } else {
            None
        }
    }

    /// Saturating addition: clamps an overflowing sum at [`Time::MAX`]
    /// instead of producing an infinity.
    ///
    /// Saturating *upward* keeps interference accumulations sound (the
    /// result is still an upper bound) and keeps them monotone, so a
    /// saturated busy-period iterate deterministically trips the horizon
    /// check and surfaces as a loud `HorizonExceeded` instead of poisoning
    /// later arithmetic with non-finite values.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, rhs: Time) -> Time {
        let sum = self.0 + rhs.0;
        // Finite inputs cannot produce NaN, only ±inf; clamp restores the
        // nearest representable value.
        Time(sum.clamp(f64::MIN, f64::MAX))
    }

    /// Saturating multiplication by an instance/cycle count; clamps at
    /// [`Time::MAX`] (see [`Time::saturating_add`] for why saturating
    /// upward is sound).
    #[inline]
    #[must_use]
    pub fn saturating_mul(self, rhs: u64) -> Time {
        let product = self.0 * rhs as f64;
        Time(product.clamp(f64::MIN, f64::MAX))
    }

    /// Sum a sequence of times, debug-asserting that no partial sum
    /// overflows to a non-finite value.  The `Sum` impl (`iter.sum()`)
    /// delegates here, so every summation in the workspace is covered by
    /// the assertion in debug/test builds.
    pub fn sum<I: IntoIterator<Item = Time>>(times: I) -> Time {
        times.into_iter().fold(Time::ZERO, |acc, t| {
            let next = acc + t;
            debug_assert!(
                next.0.is_finite(),
                "Time::sum overflowed: {acc} + {t} is not representable"
            );
            next
        })
    }

    /// `true` if `self` and `other` are equal within the convergence
    /// tolerance used by the busy-period fixed-point iterations.
    #[inline]
    pub fn approx_eq(self, other: Time) -> bool {
        let diff = (self.0 - other.0).abs();
        if diff <= TIME_ABSOLUTE_EPSILON {
            return true;
        }
        let scale = self.0.abs().max(other.0.abs());
        diff <= scale * TIME_RELATIVE_EPSILON
    }

    /// Integer division of `self` by a strictly positive period: `floor(self / period)`.
    ///
    /// Used by the interference functions `MX`/`NX` which splice whole GMF
    /// cycles with a residual window.  Negative `self` returns 0 whole
    /// periods (the analysis never needs negative windows).
    ///
    /// Quotients within a relative 1e-9 of a whole number are snapped to
    /// that whole number so that windows which are *mathematically* an exact
    /// multiple of the period (e.g. `t = TSUM`) are not perturbed by
    /// floating-point round-off.
    #[inline]
    pub fn div_floor(self, period: Time) -> u64 {
        assert!(
            period.0 > 0.0,
            "div_floor requires a strictly positive period, got {period:?}"
        );
        if self.0 <= 0.0 {
            return 0;
        }
        let q = self.0 / period.0;
        // Quotients beyond u64 saturate explicitly; callers (e.g. the MX/NX
        // cycle splicing) treat a saturated count as "beyond any horizon".
        if q >= u64::MAX as f64 {
            return u64::MAX;
        }
        let nearest = q.round();
        if (q - nearest).abs() <= nearest.abs().max(1.0) * 1e-9 {
            nearest as u64
        } else {
            q.floor() as u64
        }
    }

    /// Ceiling division of `self` by a strictly positive period, with the
    /// same near-integer snapping as [`Time::div_floor`].
    #[inline]
    pub fn div_ceil(self, period: Time) -> u64 {
        assert!(
            period.0 > 0.0,
            "div_ceil requires a strictly positive period, got {period:?}"
        );
        if self.0 <= 0.0 {
            return 0;
        }
        let q = self.0 / period.0;
        if q >= u64::MAX as f64 {
            return u64::MAX;
        }
        let nearest = q.round();
        if (q - nearest).abs() <= nearest.abs().max(1.0) * 1e-9 {
            nearest as u64
        } else {
            q.ceil() as u64
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        if s == 0.0 {
            write!(f, "0 s")
        } else if s < 1e-6 {
            write!(f, "{:.3} ns", self.as_nanos())
        } else if s < 1e-3 {
            write!(f, "{:.3} µs", self.as_micros())
        } else if s < 1.0 {
            write!(f, "{:.4} ms", self.as_millis())
        } else {
            write!(f, "{:.6} s", self.0)
        }
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Times are always finite (enforced by the constructors in debug
        // builds and by construction in the analysis), so total ordering by
        // partial_cmp is safe; NaN would indicate a bug and panics loudly.
        self.0
            .partial_cmp(&other.0)
            // tidy-allow: unwrap invariant: Time comparison encountered NaN
            .expect("Time comparison encountered NaN")
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs as f64)
    }
}

impl Mul<Time> for f64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Div<Time> for Time {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time::sum(iter)
    }
}

/// A data size in bits.
///
/// Exact integer arithmetic: payload sizes, header sizes and Ethernet frame
/// sizes are all whole numbers of bits in the paper's model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bits(u64);

impl Bits {
    /// Zero bits.
    pub const ZERO: Bits = Bits(0);

    /// Construct from a number of bits.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        Bits(bits)
    }

    /// Construct from a number of bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        Bits(bytes * 8)
    }

    /// The value in bits.
    #[inline]
    pub const fn as_bits(self) -> u64 {
        self.0
    }

    /// The value in whole bytes, rounding up.
    #[inline]
    pub const fn as_bytes_ceil(self) -> u64 {
        self.0.div_ceil(8)
    }

    /// `true` if zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bits) -> Bits {
        Bits(self.0.saturating_sub(rhs.0))
    }

    /// The time needed to serialise this many bits on a link of the given
    /// speed.
    #[inline]
    pub fn transmission_time(self, speed: BitRate) -> Time {
        speed.transmission_time(self)
    }

    /// The larger of two sizes.
    #[inline]
    pub fn max(self, other: Bits) -> Bits {
        Bits(self.0.max(other.0))
    }

    /// The smaller of two sizes.
    #[inline]
    pub fn min(self, other: Bits) -> Bits {
        Bits(self.0.min(other.0))
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(8) {
            write!(f, "{} B", self.0 / 8)
        } else {
            write!(f, "{} bit", self.0)
        }
    }
}

impl Add for Bits {
    type Output = Bits;
    #[inline]
    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl AddAssign for Bits {
    #[inline]
    fn add_assign(&mut self, rhs: Bits) {
        self.0 += rhs.0;
    }
}

impl Sub for Bits {
    type Output = Bits;
    #[inline]
    fn sub(self, rhs: Bits) -> Bits {
        debug_assert!(self.0 >= rhs.0, "Bits subtraction underflow");
        Bits(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bits {
    type Output = Bits;
    #[inline]
    fn mul(self, rhs: u64) -> Bits {
        Bits(self.0 * rhs)
    }
}

impl Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, |acc, b| acc + b)
    }
}

/// A link bit rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BitRate(f64);

impl BitRate {
    /// Construct from bits per second.
    #[inline]
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps > 0.0,
            "link speed must be a positive finite bit rate, got {bps}"
        );
        BitRate(bps)
    }

    /// Construct from kilobits per second (10^3 bit/s).
    #[inline]
    pub fn from_kbps(kbps: f64) -> Self {
        BitRate::from_bps(kbps * 1e3)
    }

    /// Construct from megabits per second (10^6 bit/s).
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        BitRate::from_bps(mbps * 1e6)
    }

    /// Construct from gigabits per second (10^9 bit/s).
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        BitRate::from_bps(gbps * 1e9)
    }

    /// The value in bits per second.
    #[inline]
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// The value in megabits per second.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Time needed to serialise `bits` at this rate.
    #[inline]
    pub fn transmission_time(self, bits: Bits) -> Time {
        Time::from_secs(bits.as_bits() as f64 / self.0)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{} Gbit/s", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{} Mbit/s", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{} kbit/s", self.0 / 1e3)
        } else {
            write!(f, "{} bit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_roundtrip() {
        assert_eq!(Time::from_millis(30.0).as_secs(), 0.030);
        assert_eq!(Time::from_micros(2.7).as_nanos().round(), 2700.0);
        assert_eq!(Time::from_secs(1.5).as_millis(), 1500.0);
        assert!((Time::from_nanos(250.0).as_micros() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_millis(10.0);
        let b = Time::from_millis(4.0);
        assert!((a + b).approx_eq(Time::from_millis(14.0)));
        assert!((a - b).approx_eq(Time::from_millis(6.0)));
        assert!((a * 3.0).approx_eq(Time::from_millis(30.0)));
        assert!((a / 2.0).approx_eq(Time::from_millis(5.0)));
        assert!((a / b - 2.5).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn time_ordering_and_sum() {
        let mut v = vec![
            Time::from_millis(3.0),
            Time::from_millis(1.0),
            Time::from_millis(2.0),
        ];
        v.sort();
        assert_eq!(v[0], Time::from_millis(1.0));
        assert_eq!(v[2], Time::from_millis(3.0));
        let total: Time = v.into_iter().sum();
        assert!(total.approx_eq(Time::from_millis(6.0)));
    }

    #[test]
    fn time_div_floor_and_ceil() {
        let t = Time::from_millis(270.0);
        let p = Time::from_millis(30.0);
        assert_eq!(t.div_floor(p), 9);
        assert_eq!(t.div_ceil(p), 9);
        assert_eq!(Time::from_millis(271.0).div_floor(p), 9);
        assert_eq!(Time::from_millis(271.0).div_ceil(p), 10);
        assert_eq!(Time::ZERO.div_floor(p), 0);
        assert_eq!(Time::ZERO.div_ceil(p), 0);
        assert_eq!((-1.0 * p).div_floor(p), 0);
    }

    #[test]
    fn time_approx_eq_tolerances() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(1.0 + 1e-13);
        assert!(a.approx_eq(b));
        let c = Time::from_secs(1.0 + 1e-9);
        assert!(!a.approx_eq(c));
        assert!(Time::ZERO.approx_eq(Time::from_secs(1e-16)));
    }

    #[test]
    fn checked_arithmetic_agrees_with_plain_ops_when_finite() {
        let a = Time::from_millis(10.0);
        let b = Time::from_millis(4.0);
        assert_eq!(a.checked_add(b), Some(a + b));
        assert_eq!(a.checked_sub(b), Some(a - b));
        assert_eq!(a.checked_mul(7), Some(a * 7u64));
        assert_eq!(a.saturating_add(b), a + b);
        assert_eq!(a.saturating_mul(7), a * 7u64);
    }

    #[test]
    fn checked_arithmetic_detects_overflow() {
        assert_eq!(Time::MAX.checked_add(Time::MAX), None);
        assert_eq!(Time::MAX.checked_mul(2), None);
        assert_eq!((-Time::MAX).checked_sub(Time::MAX), None);
        assert_eq!(Time::MAX.checked_add(Time::ZERO), Some(Time::MAX));
        assert_eq!(Time::MAX.checked_mul(1), Some(Time::MAX));
    }

    #[test]
    fn saturating_arithmetic_clamps_at_max() {
        assert_eq!(Time::MAX.saturating_add(Time::MAX), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(u64::MAX), Time::MAX);
        assert_eq!((-Time::MAX).saturating_add(-Time::MAX), -Time::MAX);
        // Saturation keeps ordering: MAX stays the top element.
        assert!(Time::MAX.saturating_add(Time::from_secs(1.0)) >= Time::from_secs(1.0));
    }

    #[test]
    fn time_sum_matches_iterator_sum() {
        let v = [
            Time::from_millis(3.0),
            Time::from_millis(1.0),
            Time::from_millis(2.0),
        ];
        let by_assoc = Time::sum(v);
        let by_trait: Time = v.into_iter().sum();
        assert_eq!(by_assoc, by_trait);
        assert!(by_assoc.approx_eq(Time::from_millis(6.0)));
    }

    #[test]
    #[should_panic(expected = "Time::sum overflowed")]
    #[cfg(debug_assertions)]
    fn time_sum_panics_on_overflow_in_debug() {
        let _ = Time::sum([Time::MAX, Time::MAX]);
    }

    #[test]
    fn div_floor_saturates_on_astronomical_quotients() {
        let t = Time::from_secs(1e300);
        let p = Time::from_nanos(1.0);
        assert_eq!(t.div_floor(p), u64::MAX);
        assert_eq!(t.div_ceil(p), u64::MAX);
    }

    #[test]
    fn time_clamp_non_negative() {
        assert_eq!((-Time::from_millis(3.0)).clamp_non_negative(), Time::ZERO);
        assert_eq!(
            Time::from_millis(3.0).clamp_non_negative(),
            Time::from_millis(3.0)
        );
    }

    #[test]
    fn time_display_scales() {
        assert_eq!(format!("{}", Time::ZERO), "0 s");
        assert!(format!("{}", Time::from_micros(2.7)).contains("µs"));
        assert!(format!("{}", Time::from_millis(30.0)).contains("ms"));
        assert!(format!("{}", Time::from_secs(2.0)).contains("s"));
        assert!(format!("{}", Time::from_nanos(12.0)).contains("ns"));
    }

    #[test]
    fn bits_conversions() {
        assert_eq!(Bits::from_bytes(1500).as_bits(), 12000);
        assert_eq!(Bits::from_bits(12).as_bytes_ceil(), 2);
        assert_eq!(Bits::from_bits(16).as_bytes_ceil(), 2);
        assert_eq!(
            Bits::from_bytes(8) + Bits::from_bits(4),
            Bits::from_bits(68)
        );
        assert_eq!(
            Bits::from_bytes(10) - Bits::from_bytes(4),
            Bits::from_bytes(6)
        );
        assert_eq!(Bits::from_bytes(2) * 3, Bits::from_bytes(6));
        assert_eq!(
            Bits::from_bytes(10).saturating_sub(Bits::from_bytes(20)),
            Bits::ZERO
        );
    }

    #[test]
    fn bits_display() {
        assert_eq!(format!("{}", Bits::from_bytes(1500)), "1500 B");
        assert_eq!(format!("{}", Bits::from_bits(13)), "13 bit");
    }

    #[test]
    fn bitrate_transmission_time() {
        // The paper's MFT example: 12304 bits at 10^7 bit/s = 1.2304 ms.
        let speed = BitRate::from_bps(1e7);
        let mft = speed.transmission_time(Bits::from_bits(12304));
        assert!(mft.approx_eq(Time::from_millis(1.2304)));
        assert_eq!(BitRate::from_mbps(10.0).as_bps(), 1e7);
        assert_eq!(BitRate::from_gbps(1.0).as_bps(), 1e9);
        assert_eq!(BitRate::from_kbps(64.0).as_bps(), 64_000.0);
    }

    #[test]
    fn bitrate_display() {
        assert_eq!(format!("{}", BitRate::from_mbps(100.0)), "100 Mbit/s");
        assert_eq!(format!("{}", BitRate::from_gbps(1.0)), "1 Gbit/s");
        assert_eq!(format!("{}", BitRate::from_kbps(64.0)), "64 kbit/s");
        assert_eq!(format!("{}", BitRate::from_bps(500.0)), "500 bit/s");
    }

    #[test]
    #[should_panic]
    fn bitrate_rejects_zero() {
        let _ = BitRate::from_bps(0.0);
    }
}
