//! Packetization of UDP packets into Ethernet frames.
//!
//! The paper's "Basic parameters" section derives, for frame `k` of flow
//! `τ_i` and a link of known speed:
//!
//! * `nbits_i^k` — the size of the UDP datagram (application payload padded
//!   to whole bytes plus the 8-byte UDP header, plus a 16-byte RTP header if
//!   RTP is used),
//! * the fragmentation of that datagram into Ethernet frames: each Ethernet
//!   frame carries at most 1480 bytes of datagram data (1500-byte Ethernet
//!   payload minus the 20-byte IP header) and occupies 12304 bits on the
//!   wire (1500 B payload + 14 B header + 4 B CRC + 8 B preamble/SFD + 12 B
//!   inter-frame gap),
//! * `C_i^k,link(s,d)` — the total transmission time of the UDP packet on
//!   the link, and
//! * `MFT_link(s,d)` (eq. 1) — the Maximum-Frame-Transmission-Time of the
//!   link, i.e. the time to serialise one maximum-size Ethernet frame.
//!
//! The final (partial) fragment of a datagram occupies
//! `remaining-data-bits + 464` bits on the wire (20 B IP header + 38 B of
//! Ethernet framing overhead), optionally floored at the 64-byte minimum
//! Ethernet frame size (a refinement over the paper, see
//! [`EncapsulationConfig::enforce_min_frame`]).

use crate::units::{BitRate, Bits, Time};
use serde::{Deserialize, Serialize};

/// UDP header size.
pub const UDP_HEADER: Bits = Bits::from_bytes(8);
/// RTP header size (added when [`Encapsulation::RtpUdp`] is used).
pub const RTP_HEADER: Bits = Bits::from_bytes(16);
/// IPv4 header size (carried in every Ethernet frame of the datagram).
pub const IP_HEADER: Bits = Bits::from_bytes(20);
/// Maximum Ethernet payload (the MTU), including the IP header.
pub const ETHERNET_MTU: Bits = Bits::from_bytes(1500);
/// Ethernet MAC header (destination + source + EtherType).
pub const ETHERNET_HEADER: Bits = Bits::from_bytes(14);
/// Ethernet frame check sequence.
pub const ETHERNET_CRC: Bits = Bits::from_bytes(4);
/// Preamble plus start-frame delimiter.
pub const ETHERNET_PREAMBLE: Bits = Bits::from_bytes(8);
/// Minimum inter-frame gap.
pub const ETHERNET_IFG: Bits = Bits::from_bytes(12);
/// Minimum Ethernet frame size (header + payload + CRC), excluding preamble
/// and inter-frame gap.
pub const ETHERNET_MIN_FRAME: Bits = Bits::from_bytes(64);

/// Number of datagram data bits carried by one full Ethernet frame:
/// 1500-byte payload minus the 20-byte IP header = 1480 bytes = 11840 bits.
pub const DATA_BITS_PER_FULL_FRAME: u64 = (ETHERNET_MTU.as_bits() - IP_HEADER.as_bits()) / 8 * 8; // 11840

/// Wire size of a maximum-size Ethernet frame: 1538 bytes = 12304 bits
/// (payload + header + CRC + preamble/SFD + IFG).
pub const WIRE_BITS_PER_FULL_FRAME: u64 = ETHERNET_MTU.as_bits()
    + ETHERNET_HEADER.as_bits()
    + ETHERNET_CRC.as_bits()
    + ETHERNET_PREAMBLE.as_bits()
    + ETHERNET_IFG.as_bits(); // 12304

/// Per-fragment overhead on the wire beyond the datagram data it carries:
/// the IP header plus all Ethernet framing overhead = 58 bytes = 464 bits.
pub const WIRE_OVERHEAD_PER_FRAGMENT: u64 = IP_HEADER.as_bits()
    + ETHERNET_HEADER.as_bits()
    + ETHERNET_CRC.as_bits()
    + ETHERNET_PREAMBLE.as_bits()
    + ETHERNET_IFG.as_bits(); // 464

/// Wire size of a minimum-size Ethernet frame including preamble and IFG:
/// 64 + 8 + 12 = 84 bytes = 672 bits.
pub const WIRE_BITS_MIN_FRAME: u64 =
    ETHERNET_MIN_FRAME.as_bits() + ETHERNET_PREAMBLE.as_bits() + ETHERNET_IFG.as_bits(); // 672

/// Which transport headers wrap the application payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Encapsulation {
    /// Plain UDP: payload + 8-byte UDP header.
    #[default]
    Udp,
    /// RTP over UDP: payload + 16-byte RTP header + 8-byte UDP header
    /// (the usual case for the paper's motivating VoIP / video traffic).
    RtpUdp,
}

impl Encapsulation {
    /// Transport-layer header bits added on top of the application payload.
    pub fn header_bits(self) -> Bits {
        match self {
            Encapsulation::Udp => UDP_HEADER,
            Encapsulation::RtpUdp => Bits::from_bits(UDP_HEADER.as_bits() + RTP_HEADER.as_bits()),
        }
    }
}

/// Configuration of the packetization model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncapsulationConfig {
    /// Transport encapsulation of every UDP packet of the flow.
    pub encapsulation: Encapsulation,
    /// If `true`, a final fragment smaller than the 64-byte minimum Ethernet
    /// frame is padded up to the minimum (672 bits on the wire including
    /// preamble and IFG).  The paper does not model this; it is enabled by
    /// default because real switches behave this way and it only makes the
    /// bound safer.
    pub enforce_min_frame: bool,
}

impl Default for EncapsulationConfig {
    fn default() -> Self {
        EncapsulationConfig {
            encapsulation: Encapsulation::Udp,
            enforce_min_frame: true,
        }
    }
}

impl EncapsulationConfig {
    /// The configuration that matches the paper's equations exactly
    /// (plain UDP, no minimum-frame padding).
    pub fn paper() -> Self {
        EncapsulationConfig {
            encapsulation: Encapsulation::Udp,
            enforce_min_frame: false,
        }
    }

    /// RTP-over-UDP variant of [`EncapsulationConfig::paper`].
    pub fn paper_rtp() -> Self {
        EncapsulationConfig {
            encapsulation: Encapsulation::RtpUdp,
            enforce_min_frame: false,
        }
    }
}

/// The result of packetizing one UDP packet (one GMF frame) for
/// transmission over Ethernet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packetization {
    /// `nbits`: size of the UDP datagram (payload rounded up to whole bytes
    /// plus transport headers), before IP/Ethernet encapsulation.
    pub datagram_bits: Bits,
    /// Number of Ethernet frames the datagram is fragmented into.
    pub n_ethernet_frames: u64,
    /// Wire size of each Ethernet frame (including IP header, Ethernet
    /// header, CRC, preamble and inter-frame gap), in transmission order.
    /// All but the last entry are full 12304-bit frames.
    pub frame_wire_bits: Vec<Bits>,
    /// Total wire bits of the datagram (sum of `frame_wire_bits`).
    pub total_wire_bits: Bits,
}

impl Packetization {
    /// Total transmission time of the datagram on a link of speed `speed`
    /// — the paper's `C_i^k,link(s,d)`.
    pub fn transmission_time(&self, speed: BitRate) -> Time {
        speed.transmission_time(self.total_wire_bits)
    }

    /// Transmission time of the largest single Ethernet frame of the
    /// datagram on a link of speed `speed`.
    pub fn max_frame_transmission_time(&self, speed: BitRate) -> Time {
        self.frame_wire_bits
            .iter()
            .map(|&b| speed.transmission_time(b))
            .fold(Time::ZERO, Time::max)
    }
}

/// Compute `nbits_i^k`: the UDP datagram size for an application payload of
/// `payload` bits under the given encapsulation.
///
/// The payload is padded up to a whole number of bytes (the paper's
/// `ceil(S/8) * 8` term) and the transport header(s) are added.
pub fn datagram_bits(payload: Bits, encapsulation: Encapsulation) -> Bits {
    let padded_payload = Bits::from_bytes(payload.as_bytes_ceil());
    padded_payload + encapsulation.header_bits()
}

/// Packetize one UDP datagram into Ethernet frames.
///
/// `payload` is the application payload (`S_i^k`).  The returned
/// [`Packetization`] lists the wire size of every Ethernet frame; link-speed
/// dependent quantities are computed from it on demand.
pub fn packetize(payload: Bits, config: &EncapsulationConfig) -> Packetization {
    let datagram = datagram_bits(payload, config.encapsulation);
    let nbits = datagram.as_bits();

    let full_frames = nbits / DATA_BITS_PER_FULL_FRAME;
    let remainder = nbits % DATA_BITS_PER_FULL_FRAME;

    let mut frame_wire_bits =
        Vec::with_capacity(full_frames as usize + usize::from(remainder != 0));
    for _ in 0..full_frames {
        frame_wire_bits.push(Bits::from_bits(WIRE_BITS_PER_FULL_FRAME));
    }
    if remainder != 0 {
        let mut wire = remainder + WIRE_OVERHEAD_PER_FRAGMENT;
        if config.enforce_min_frame && wire < WIRE_BITS_MIN_FRAME {
            wire = WIRE_BITS_MIN_FRAME;
        }
        frame_wire_bits.push(Bits::from_bits(wire));
    }

    let total_wire_bits = frame_wire_bits.iter().copied().sum();
    Packetization {
        datagram_bits: datagram,
        n_ethernet_frames: frame_wire_bits.len() as u64,
        frame_wire_bits,
        total_wire_bits,
    }
}

/// `MFT_link` (eq. 1): the Maximum-Frame-Transmission-Time of a link — the
/// time needed to serialise one maximum-size Ethernet frame (12304 bits) at
/// the link speed.
pub fn max_frame_transmission_time(speed: BitRate) -> Time {
    speed.transmission_time(Bits::from_bits(WIRE_BITS_PER_FULL_FRAME))
}

/// Number of Ethernet frames needed for a payload under a configuration —
/// shorthand for `packetize(payload, config).n_ethernet_frames`.
pub fn n_ethernet_frames(payload: Bits, config: &EncapsulationConfig) -> u64 {
    let nbits = datagram_bits(payload, config.encapsulation).as_bits();
    nbits.div_ceil(DATA_BITS_PER_FULL_FRAME)
}

/// Transmission time of a payload on a link — shorthand for
/// `packetize(payload, config).transmission_time(speed)`.
pub fn transmission_time(payload: Bits, config: &EncapsulationConfig, speed: BitRate) -> Time {
    packetize(payload, config).transmission_time(speed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(DATA_BITS_PER_FULL_FRAME, 11840);
        assert_eq!(WIRE_BITS_PER_FULL_FRAME, 12304);
        assert_eq!(WIRE_OVERHEAD_PER_FRAGMENT, 464);
        assert_eq!(WIRE_BITS_MIN_FRAME, 672);
    }

    #[test]
    fn datagram_bits_pads_and_adds_headers() {
        // 100 bytes of payload + 8 bytes UDP header.
        assert_eq!(
            datagram_bits(Bits::from_bytes(100), Encapsulation::Udp),
            Bits::from_bytes(108)
        );
        // Payload of 9 bits pads to 2 bytes.
        assert_eq!(
            datagram_bits(Bits::from_bits(9), Encapsulation::Udp),
            Bits::from_bytes(10)
        );
        // RTP adds 16 more bytes.
        assert_eq!(
            datagram_bits(Bits::from_bytes(100), Encapsulation::RtpUdp),
            Bits::from_bytes(124)
        );
    }

    #[test]
    fn single_small_fragment() {
        let cfg = EncapsulationConfig::paper();
        let p = packetize(Bits::from_bytes(160), &cfg);
        assert_eq!(p.n_ethernet_frames, 1);
        // 168 bytes datagram + 58 bytes of IP+Ethernet overhead on the wire.
        assert_eq!(p.total_wire_bits, Bits::from_bytes(168 + 58));
        assert_eq!(p.frame_wire_bits.len(), 1);
    }

    #[test]
    fn min_frame_padding_applies_only_when_enabled() {
        // A 10-byte payload gives an 18-byte datagram: far below the 64-byte
        // minimum Ethernet frame.
        let paper = packetize(Bits::from_bytes(10), &EncapsulationConfig::paper());
        assert_eq!(paper.total_wire_bits, Bits::from_bits(18 * 8 + 464));

        let real = packetize(Bits::from_bytes(10), &EncapsulationConfig::default());
        assert_eq!(real.total_wire_bits, Bits::from_bits(WIRE_BITS_MIN_FRAME));
        assert!(real.total_wire_bits > paper.total_wire_bits);
    }

    #[test]
    fn exact_multiple_of_data_bits_has_no_partial_fragment() {
        // Choose a payload such that the datagram is exactly 2 * 1480 bytes:
        // payload = 2960 - 8 = 2952 bytes.
        let cfg = EncapsulationConfig::paper();
        let p = packetize(Bits::from_bytes(2952), &cfg);
        assert_eq!(p.datagram_bits, Bits::from_bytes(2960));
        assert_eq!(p.n_ethernet_frames, 2);
        assert_eq!(
            p.total_wire_bits,
            Bits::from_bits(2 * WIRE_BITS_PER_FULL_FRAME)
        );
    }

    #[test]
    fn fragmentation_counts_and_sizes() {
        let cfg = EncapsulationConfig::paper();
        // 4000-byte payload -> 4008-byte datagram = 32064 bits
        // = 2 full frames (23680 bits) + 8384 bits remainder.
        let p = packetize(Bits::from_bytes(4000), &cfg);
        assert_eq!(p.n_ethernet_frames, 3);
        assert_eq!(p.frame_wire_bits[0], Bits::from_bits(12304));
        assert_eq!(p.frame_wire_bits[1], Bits::from_bits(12304));
        assert_eq!(p.frame_wire_bits[2], Bits::from_bits(8384 + 464));
        assert_eq!(p.total_wire_bits, Bits::from_bits(2 * 12304 + 8384 + 464));
        assert_eq!(n_ethernet_frames(Bits::from_bytes(4000), &cfg), 3);
    }

    #[test]
    fn transmission_time_matches_hand_calculation() {
        let cfg = EncapsulationConfig::paper();
        let speed = BitRate::from_bps(1e7);
        // Single full frame: exactly MFT.
        let mft = max_frame_transmission_time(speed);
        assert!(mft.approx_eq(Time::from_millis(1.2304)));
        // The 4000-byte example above: (2*12304 + 8848) bits at 10 Mbit/s.
        let t = transmission_time(Bits::from_bytes(4000), &cfg, speed);
        assert!(t.approx_eq(Time::from_secs((2.0 * 12304.0 + 8848.0) / 1e7)));
        // Max single-frame time of the same packetization is the MFT.
        let p = packetize(Bits::from_bytes(4000), &cfg);
        assert!(p.max_frame_transmission_time(speed).approx_eq(mft));
    }

    #[test]
    fn mft_scales_inversely_with_speed() {
        let m10 = max_frame_transmission_time(BitRate::from_mbps(10.0));
        let m100 = max_frame_transmission_time(BitRate::from_mbps(100.0));
        let m1000 = max_frame_transmission_time(BitRate::from_gbps(1.0));
        assert!((m10.as_secs() / m100.as_secs() - 10.0).abs() < 1e-9);
        assert!((m100.as_secs() / m1000.as_secs() - 10.0).abs() < 1e-9);
        assert!(m1000.approx_eq(Time::from_micros(12.304)));
    }

    #[test]
    fn rtp_encapsulation_increases_size() {
        let udp = packetize(Bits::from_bytes(1472), &EncapsulationConfig::paper());
        let rtp = packetize(Bits::from_bytes(1472), &EncapsulationConfig::paper_rtp());
        // 1472 + 8 = 1480 bytes fits a single frame under UDP but spills into
        // a second fragment once the RTP header is added.
        assert_eq!(udp.n_ethernet_frames, 1);
        assert_eq!(rtp.n_ethernet_frames, 2);
        assert!(rtp.total_wire_bits > udp.total_wire_bits);
    }

    #[test]
    fn header_bits_by_encapsulation() {
        assert_eq!(Encapsulation::Udp.header_bits(), Bits::from_bytes(8));
        assert_eq!(Encapsulation::RtpUdp.header_bits(), Bits::from_bytes(24));
    }
}
