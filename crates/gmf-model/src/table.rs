//! Precompiled demand tables: the `MX`/`NX` request bounds as flat,
//! cycle-periodic prefix-maximum tables.
//!
//! [`LinkDemand::mxs`]/[`LinkDemand::nxs`] evaluate the paper's eq. 10/12
//! by enumerating every `(k1, k2)` window of the GMF cycle and re-summing
//! its `CSUM`/`NSUM`/`TSUM` on every call — `O(n³)` work per query, paid
//! inside every iteration of every busy-period fixed point.  A
//! [`DemandTable`] hoists that enumeration out of the hot path: it is
//! built once per `LinkDemand`, stores the windows sorted by their
//! minimum span `TSUM(k1, k2)` together with running maxima of
//! `CSUM(k1, k2)` and `NSUM(k1, k2)`, and answers each query with one
//! binary search.
//!
//! ## Why the table is byte-identical to the closed forms
//!
//! For a window length `t > 0` the closed-form `MXS` maximises
//! `min(CSUM(k1,k2), t)` over all windows with `TSUM(k1,k2) <= t`.  The
//! eligible set is exactly a prefix of the span-sorted table, and for a
//! totally ordered domain `max_i min(c_i, t) = min(max_i c_i, t)`, so the
//! stored prefix maximum capped at `t` reproduces the double loop's
//! result.  Only comparisons are involved — no arithmetic — so the
//! equality is bit-exact, not approximate.  The whole-cycle splice of
//! `MX`/`NX` (eq. 11/13) is recomputed here with the very same
//! `div_floor` / saturating operations (including the `u64::MAX` cycle
//! sentinel mapping to [`Time::MAX`]) as [`LinkDemand::mx`] /
//! [`LinkDemand::nx`].  The property test
//! `tests/demand_table_properties.rs` pins this equality over random
//! flows, horizons and saturation cases.

use crate::demand::LinkDemand;
use crate::units::Time;
use serde::{Deserialize, Serialize};

/// Flat prefix-maximum table answering `mxs`/`nxs`/`mx`/`nx` queries for
/// one [`LinkDemand`] in `O(log n²)` instead of `O(n³)`.
///
/// Built once per (flow, link) pair and shared via the analysis context's
/// demand interner; the per-frame kernels only ever touch this table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandTable {
    /// Collapsed windows sorted ascending by span — one contiguous block
    /// so a lookup touches a single cache line for the small tables real
    /// GMF flows produce.
    windows: Vec<WindowRow>,
    /// `CSUM` of one whole GMF cycle (eq. 4).
    csum: Time,
    /// `NSUM` of one whole GMF cycle (eq. 5).
    nsum: u64,
    /// `TSUM` of one whole GMF cycle (eq. 6).
    tsum: Time,
}

/// One collapsed table row: a distinct window span plus the running maxima
/// over every window at most that long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct WindowRow {
    /// Distinct window span `TSUM(k1, k2)`.
    span: Time,
    /// Largest `CSUM(k1, k2)` over every window whose span is `<= span`
    /// (running maximum, seeded at [`Time::ZERO`] like the closed form's
    /// accumulator).
    csum_max: Time,
    /// Largest `NSUM(k1, k2)` over every window whose span is `<= span`.
    nsum_max: u64,
}

impl DemandTable {
    /// Compile `demand`'s request bounds into a flat table.
    ///
    /// Enumerates all `n²` cyclic windows, sorts them by span, and
    /// collapses equal spans into one entry carrying the running maxima.
    ///
    /// The enumeration extends each window by one frame at a time, so a
    /// whole start row costs `O(n)` instead of the `O(n²)` of calling
    /// `tsum_window`/`csum_window`/`nsum_window` per `(k1, k2)` — the
    /// build is `O(n² log n)` total, cheap enough to pay inside every
    /// admission-trial context build.  The running sums add frame
    /// contributions left to right, exactly the order the closed-form
    /// window loops use, so every stored value is bit-identical to the
    /// accessor it replaces (floating-point addition is order-sensitive;
    /// the order is preserved, not just the operand set).
    pub fn new(demand: &LinkDemand) -> Self {
        let n = demand.n_frames();
        let per_frame: Vec<(Time, Time, u64)> = (0..n)
            .map(|k| (demand.t(k), demand.c(k), demand.n_ethernet_frames(k)))
            .collect();
        let mut windows: Vec<(Time, Time, u64)> = Vec::with_capacity(n.saturating_mul(n));
        for k1 in 0..n {
            let mut span = Time::ZERO;
            let mut csum = Time::ZERO;
            let mut nsum = 0u64;
            for k2 in 1..=n {
                let (_, c, n_eth) = per_frame[(k1 + k2 - 1) % n];
                // `tsum_window(k1, k2)` sums the k2-1 gaps *between* the
                // frames: the gap after the window's last frame joins the
                // span only once the next frame extends the window.
                if k2 > 1 {
                    let (prev_gap, _, _) = per_frame[(k1 + k2 - 2) % n];
                    span = span.saturating_add(prev_gap);
                }
                csum = csum.saturating_add(c);
                nsum = nsum.saturating_add(n_eth);
                windows.push((span, csum, nsum));
            }
        }
        windows.sort_unstable_by_key(|w| w.0);

        let mut rows: Vec<WindowRow> = Vec::with_capacity(windows.len());
        let mut best_c = Time::ZERO;
        let mut best_n = 0u64;
        for (span, c, n_eth) in windows {
            best_c = best_c.max(c);
            best_n = best_n.max(n_eth);
            match rows.last_mut() {
                Some(last) if last.span == span => {
                    last.csum_max = best_c;
                    last.nsum_max = best_n;
                }
                _ => rows.push(WindowRow {
                    span,
                    csum_max: best_c,
                    nsum_max: best_n,
                }),
            }
        }

        DemandTable {
            windows: rows,
            csum: demand.csum(),
            nsum: demand.nsum(),
            tsum: demand.tsum(),
        }
    }

    /// Number of distinct window spans stored (after collapsing ties) —
    /// the `kernel/windows` telemetry counter.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// `CSUM` of one whole GMF cycle (eq. 4), as captured at build time.
    pub fn csum(&self) -> Time {
        self.csum
    }

    /// `NSUM` of one whole GMF cycle (eq. 5), as captured at build time.
    pub fn nsum(&self) -> u64 {
        self.nsum
    }

    /// `TSUM` of one whole GMF cycle (eq. 6), as captured at build time.
    pub fn tsum(&self) -> Time {
        self.tsum
    }

    /// Index of the first stored span strictly greater than `t`, i.e. the
    /// number of eligible table entries for a window of length `t`.
    ///
    /// Real GMF tables are tiny (`n²` windows collapse hard), so a
    /// predictable linear scan beats binary search until well past the
    /// sizes the generators produce; larger tables fall back to
    /// `partition_point`.
    #[inline]
    fn eligible(&self, t: Time) -> usize {
        let windows = self.windows.as_slice();
        if windows.len() <= 32 {
            windows.iter().take_while(|row| row.span <= t).count()
        } else {
            windows.partition_point(|row| row.span <= t)
        }
    }

    /// `MXS` (eq. 10) — bit-identical to [`LinkDemand::mxs`].
    #[inline]
    pub fn mxs(&self, t: Time) -> Time {
        if t <= Time::ZERO {
            return Time::ZERO;
        }
        let idx = self.eligible(t);
        if idx == 0 {
            return Time::ZERO;
        }
        self.windows[idx - 1].csum_max.min(t)
    }

    /// `MX` (eq. 11) — bit-identical to [`LinkDemand::mx`], including the
    /// saturated-cycle sentinel returning [`Time::MAX`].
    #[inline]
    pub fn mx(&self, t: Time) -> Time {
        if t <= Time::ZERO {
            return Time::ZERO;
        }
        let cycles = t.div_floor(self.tsum);
        if cycles == u64::MAX {
            return Time::MAX;
        }
        let residual = t - self.tsum * cycles;
        self.csum
            .saturating_mul(cycles)
            .saturating_add(self.mxs(residual))
    }

    /// `NXS` (eq. 12) — bit-identical to [`LinkDemand::nxs`].
    #[inline]
    pub fn nxs(&self, t: Time) -> u64 {
        if t <= Time::ZERO {
            return 0;
        }
        let idx = self.eligible(t);
        if idx == 0 {
            return 0;
        }
        self.windows[idx - 1].nsum_max
    }

    /// `NX` (eq. 13) — bit-identical to [`LinkDemand::nx`], including the
    /// saturated-cycle sentinel returning `u64::MAX`.
    #[inline]
    pub fn nx(&self, t: Time) -> u64 {
        if t <= Time::ZERO {
            return 0;
        }
        let cycles = t.div_floor(self.tsum);
        if cycles == u64::MAX {
            return u64::MAX;
        }
        let residual = t - self.tsum * cycles;
        self.nsum
            .saturating_mul(cycles)
            .saturating_add(self.nxs(residual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encapsulation::EncapsulationConfig;
    use crate::flow::GmfFlow;
    use crate::frame::FrameSpec;
    use crate::units::BitRate;

    /// The hand-checkable 3-frame flow from `demand.rs`'s tests.
    fn demand() -> LinkDemand {
        let flow = GmfFlow::new(
            "t",
            vec![
                FrameSpec::from_bytes_ms(1000, 10.0, 100.0),
                FrameSpec::from_bytes_ms(2000, 20.0, 100.0),
                FrameSpec::from_bytes_ms(4000, 30.0, 100.0),
            ],
        )
        .unwrap();
        LinkDemand::new(
            &flow,
            &EncapsulationConfig::paper(),
            BitRate::from_mbps(10.0),
        )
    }

    /// Dense sweep: the table must agree with the closed forms bit-for-bit
    /// on every probe, including points exactly on window-span boundaries.
    #[test]
    fn table_matches_closed_forms_on_dense_sweep() {
        let d = demand();
        let table = DemandTable::new(&d);
        let mut probes: Vec<Time> = Vec::new();
        // Exact span boundaries and their neighbourhoods.
        for k1 in 0..d.n_frames() {
            for k2 in 1..=d.n_frames() {
                let span = d.tsum_window(k1, k2);
                probes.push(span);
                probes.push(span + Time::from_micros(1.0));
                probes.push(span - Time::from_micros(1.0));
            }
        }
        // A fine sweep over several cycles.
        for i in 0..4000 {
            probes.push(Time::from_micros(50.0) * i);
        }
        probes.push(Time::ZERO);
        probes.push(Time::from_millis(-3.0));
        for t in probes {
            assert_eq!(table.mxs(t), d.mxs(t), "mxs at {t:?}");
            assert_eq!(table.nxs(t), d.nxs(t), "nxs at {t:?}");
            assert_eq!(table.mx(t), d.mx(t), "mx at {t:?}");
            assert_eq!(table.nx(t), d.nx(t), "nx at {t:?}");
        }
    }

    /// The saturation sentinels survive the table translation: a window
    /// beyond any representable horizon returns the conservative top.
    #[test]
    fn saturation_sentinels_match() {
        let d = demand();
        let table = DemandTable::new(&d);
        assert_eq!(table.mx(Time::MAX), d.mx(Time::MAX));
        assert_eq!(table.nx(Time::MAX), d.nx(Time::MAX));
        assert_eq!(table.mx(Time::MAX), Time::MAX);
        assert_eq!(table.nx(Time::MAX), u64::MAX);
    }

    /// Aggregate constants are copied bit-exactly from the demand.
    #[test]
    fn aggregates_are_copied() {
        let d = demand();
        let table = DemandTable::new(&d);
        assert_eq!(table.csum(), d.csum());
        assert_eq!(table.nsum(), d.nsum());
        assert_eq!(table.tsum(), d.tsum());
        // 3 frames -> at most 9 windows; ties collapse.
        assert!(table.n_windows() <= 9);
        assert!(table.n_windows() >= 1);
    }
}
