//! Property-based tests of the GMF model crate in isolation.

// Test code may unwrap freely; the workspace lint targets library code.
#![allow(clippy::unwrap_used)]

use gmf_model::prelude::*;
use gmf_model::{packetize, LinkDemand};
use proptest::prelude::*;

fn arb_frames() -> impl Strategy<Value = Vec<FrameSpec>> {
    prop::collection::vec(
        (64u64..40_000, 1.0f64..200.0, 1.0f64..500.0, 0.0f64..10.0),
        1..=12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(payload, t, d, j)| FrameSpec {
                payload: Bits::from_bytes(payload),
                min_interarrival: Time::from_millis(t),
                deadline: Time::from_millis(d),
                jitter: Time::from_millis(j),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any frame vector drawn from the strategy builds a valid flow whose
    /// aggregates are consistent with the per-frame values.
    #[test]
    fn flow_aggregates_are_consistent(frames in arb_frames()) {
        let n = frames.len();
        let flow = GmfFlow::new("f", frames.clone()).unwrap();
        prop_assert_eq!(flow.n_frames(), n);
        let tsum: Time = frames.iter().map(|f| f.min_interarrival).sum();
        prop_assert!(flow.tsum().approx_eq(tsum));
        prop_assert!(frames.iter().any(|f| f.payload == flow.max_payload()));
        prop_assert!(flow.min_interarrival() <= frames[0].min_interarrival);
        // Cyclic indexing wraps exactly.
        for k in 0..3 * n {
            prop_assert_eq!(flow.frame_cyclic(k), &frames[k % n]);
        }
        // Windowed TSUM over a full cycle equals TSUM minus the last gap...
        // more robustly: spanning n+1 arrivals covers at least one full cycle.
        prop_assert!(flow.tsum_window(0, n + 1) + Time::from_nanos(1.0) >= flow.tsum());
    }

    /// The windowed sums of the demand are consistent: a window of k2 frames
    /// equals the sum of the individual frames, and MXS never exceeds both
    /// the window and the total cycle demand plus one window.
    #[test]
    fn windowed_sums_and_mxs(frames in arb_frames(), t_ms in 0.0f64..1_000.0) {
        let flow = GmfFlow::new("f", frames).unwrap();
        let demand = LinkDemand::new(&flow, &EncapsulationConfig::paper(), BitRate::from_mbps(10.0));
        let n = demand.n_frames();
        for k1 in 0..n {
            let mut acc = Time::ZERO;
            let mut eth = 0;
            for k2 in 0..=n {
                prop_assert!(demand.csum_window(k1, k2).approx_eq(acc));
                prop_assert_eq!(demand.nsum_window(k1, k2), eth);
                acc += demand.c(k1 + k2);
                eth += demand.n_ethernet_frames(k1 + k2);
            }
            prop_assert!(demand.csum_window(k1, n).approx_eq(demand.csum()));
            prop_assert_eq!(demand.nsum_window(k1, n), demand.nsum());
        }
        let t = Time::from_millis(t_ms);
        prop_assert!(demand.mxs(t) <= t.max(Time::ZERO) + Time::from_nanos(1.0) || demand.mxs(t) <= demand.csum());
        // One nanosecond of slack absorbs floating-point non-associativity
        // when the residual window covers exactly one whole cycle.
        prop_assert!(
            demand.mx(t) <= demand.csum() * (t.div_floor(demand.tsum()) + 1) + Time::from_nanos(1.0)
        );
    }

    /// Packetization transmission time equals wire bits divided by speed and
    /// scales inversely with the link speed.
    #[test]
    fn transmission_time_scales_with_speed(payload in 1u64..100_000) {
        let p = packetize(Bits::from_bytes(payload), &EncapsulationConfig::paper());
        let slow = p.transmission_time(BitRate::from_mbps(10.0));
        let fast = p.transmission_time(BitRate::from_mbps(100.0));
        prop_assert!((slow.as_secs() / fast.as_secs() - 10.0).abs() < 1e-9);
        let expected = p.total_wire_bits.as_bits() as f64 / 1.0e7;
        prop_assert!((slow.as_secs() - expected).abs() < 1e-12);
    }

    /// Dense arrival traces respect the declared minimum inter-arrival times
    /// and cycle through the frame indices in order.
    #[test]
    fn dense_trace_respects_min_interarrivals(frames in arb_frames(), horizon_ms in 1.0f64..2_000.0) {
        let flow = GmfFlow::new("f", frames).unwrap();
        let trace = gmf_model::dense_trace(&flow, Time::from_millis(horizon_ms));
        for pair in trace.arrivals().windows(2) {
            let expected_gap = flow.frame_cyclic(pair[0].frame_index).min_interarrival;
            let gap = pair[1].release - pair[0].release;
            prop_assert!(gap + Time::from_nanos(1.0) >= expected_gap);
            prop_assert_eq!(pair[1].frame_index, (pair[0].frame_index + 1) % flow.n_frames());
            prop_assert_eq!(pair[1].sequence, pair[0].sequence + 1);
        }
        for arrival in trace.arrivals() {
            prop_assert!(arrival.release < Time::from_millis(horizon_ms));
        }
    }
}
