//! # gmf-par
//!
//! A minimal, deterministic fork-join parallel map for the workspace's
//! analysis hot paths.
//!
//! The build environment has no registry access, so rayon (with its global
//! thread pool, work stealing and nondeterministic reduction order) is not
//! available.  This crate provides the one primitive the holistic analysis
//! and the workload sweeps actually need: apply a function to every element
//! of a slice, possibly on several OS threads, and return the results **in
//! input order** — bit-for-bit identical to the sequential loop at any
//! thread count.
//!
//! Design constraints:
//!
//! * **Determinism.** Each item's result is written to its own pre-allocated
//!   slot, so the output order never depends on scheduling.  The function is
//!   applied exactly once per item with no shared mutable state.
//! * **No persistent pool.** [`std::thread::scope`] forks and joins within
//!   the call.  The analysis rounds take milliseconds; thread spawn overhead
//!   (~10 µs) is negligible at that granularity, and no state leaks between
//!   calls.
//! * **Static chunking.** Items are dealt to workers in contiguous chunks
//!   (worker `w` gets items `[w·⌈n/t⌉, (w+1)·⌈n/t⌉)`).  The per-flow cost in
//!   a holistic round is uneven but the flow counts are small, so chunking
//!   beats a shared atomic cursor in simplicity and is still deterministic
//!   in *work assignment*, which keeps per-thread behaviour reproducible
//!   under profiling.
//!
//! Panics in the mapped function propagate: if any worker panics, the join
//! re-raises the panic on the caller's thread.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::num::NonZeroUsize;

/// Number of worker threads to use for a parallel map.
///
/// `Threads(1)` (the default) means "run inline on the caller's thread" —
/// no threads are spawned at all, so single-threaded callers pay nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(pub NonZeroUsize);

impl Threads {
    /// Exactly one thread: the sequential path.
    pub const ONE: Threads = Threads(NonZeroUsize::MIN);

    /// Build from a plain count, treating `0` as 1.
    pub fn new(n: usize) -> Threads {
        // tidy-allow: unwrap invariant: max(1) is non-zero
        Threads(NonZeroUsize::new(n.max(1)).expect("max(1) is non-zero"))
    }

    /// The available hardware parallelism, falling back to 1 when the
    /// platform cannot report it.
    pub fn available() -> Threads {
        Threads(
            std::thread::available_parallelism()
                // tidy-allow: unwrap invariant: 1 is non-zero
                .unwrap_or_else(|_| NonZeroUsize::new(1).expect("1 is non-zero")),
        )
    }

    /// The worker count as a plain `usize` (always ≥ 1).
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::ONE
    }
}

/// Derive a well-spread 64-bit stream seed from a master `seed` and a
/// stream `index` (splitmix64 of their combination).
///
/// Deterministic parallel sweeps give every work item its own RNG stream so
/// the result depends only on `(seed, index)` and never on the thread
/// count or evaluation order.  Nearby indices (0, 1, 2, …) and nearby
/// master seeds produce statistically unrelated outputs, so the streams
/// can be fed straight into a cheap seedable generator.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Apply `f` to every element of `items`, using up to `threads` worker
/// threads, and return the results in input order.
///
/// The output is identical to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` at any thread
/// count; `f` receives the item's index so callers can key per-item state
/// (e.g. a flow id) off it.
///
/// With `threads == 1`, or when `items` has at most one element, everything
/// runs inline on the caller's thread.
pub fn par_map<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // One pre-sized slot per item; each worker fills a disjoint contiguous
    // range, so the output order is the input order by construction.  The
    // caller's thread is one of the workers: it takes the last chunk inline
    // instead of idling in join, so `workers` threads means `workers - 1`
    // spawns.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(workers);

    std::thread::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let mut start = 0usize;
        let mut handles = Vec::with_capacity(workers);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let last_chunk = tail.is_empty();
            rest = tail;
            let base = start;
            start += take;
            let f = &f;
            let mut fill = move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    let index = base + offset;
                    *slot = Some(f(index, &items[index]));
                }
            };
            if last_chunk {
                fill();
            } else {
                handles.push(scope.spawn(fill));
            }
        }
        // Propagate the first worker panic, if any, on the caller's thread.
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    slots
        .into_iter()
        // tidy-allow: unwrap invariant: every slot is filled by exactly one worker
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// [`par_map`] with an *interleaved* (strided) work assignment: worker `w`
/// of `T` takes items `w, w+T, w+2T, …` instead of one contiguous chunk.
///
/// The output is still exactly
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` at any thread
/// count — each worker's results are dealt back into the positions of its
/// stride, so ordering never depends on scheduling.  Prefer this variant
/// when per-item costs are *systematically uneven along the input order*
/// (the holistic rounds map flows whose cycle lengths and route depths
/// vary several-fold): contiguous chunking can hand one worker all the
/// expensive items, while striding spreads them `1/T` apiece within a
/// factor of one item's cost.
pub fn par_map_interleaved<T, R, F>(threads: Threads, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_interleaved_with(threads, items, || (), |(), index, item| f(index, item))
}

/// [`par_map_interleaved`] with per-worker mutable state: every worker
/// builds one `S` via `init` and threads it through each item of its
/// stride (the caller's inline path builds exactly one).
///
/// The motivating use is pooling scratch arenas — the analysis rounds hand
/// each worker one reusable kernel arena instead of allocating per flow.
/// Determinism is preserved as long as `f`'s *result* does not depend on
/// the state's content (the state is storage, not an accumulator): the
/// stride assignment and the deal back into input order are exactly those
/// of [`par_map_interleaved`].
pub fn par_map_interleaved_with<T, R, S, I, F>(
    threads: Threads,
    items: &[T],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, x)| f(&mut state, i, x))
            .collect();
    }

    // Each worker produces its stride's results in stride order; the deal
    // below puts result `k` of worker `w` at index `w + k·workers`.  The
    // caller's thread takes the last stride inline instead of idling in
    // join, so `workers` threads means `workers - 1` spawns.
    let mut strides: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let init = &init;
        let handles: Vec<_> = (0..workers - 1)
            .map(|w| {
                scope.spawn(move || {
                    let mut state = init();
                    (w..n)
                        .step_by(workers)
                        .map(|index| f(&mut state, index, &items[index]))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let mut state = init();
        let last: Vec<R> = (workers - 1..n)
            .step_by(workers)
            .map(|index| f(&mut state, index, &items[index]))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(stride) => strides.push(stride),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        strides.push(last);
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (w, stride) in strides.into_iter().enumerate() {
        for (k, result) in stride.into_iter().enumerate() {
            slots[w + k * workers] = Some(result);
        }
    }
    slots
        .into_iter()
        // tidy-allow: unwrap invariant: every slot is filled by exactly one stride
        .map(|slot| slot.expect("every slot is filled by exactly one stride"))
        .collect()
}

/// [`par_map`] with a *weighted* longest-processing-time work assignment:
/// items are dealt to workers in descending `weight` order (ties broken by
/// input index), each landing on the stride of its rank — the classic LPT
/// round-robin that keeps a few heavy items from serialising a batch.
///
/// The output is still exactly
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` at any thread
/// count: the assignment depends only on the weights and indices, never on
/// scheduling, and each result is dealt back to its item's input position.
/// Prefer this variant when per-item costs are *known in advance and
/// heavy-tailed* — the admission plane's shard lanes, whose costs scale
/// with lane flow counts spanning orders of magnitude, are the motivating
/// case.
pub fn par_map_weighted<T, R, F, W>(threads: Threads, items: &[T], weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    W: Fn(&T) -> u64,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Rank the items heaviest-first (stable on input index), then give
    // worker `w` the ranks `w, w+T, w+2T, …`.  Worker loads are balanced
    // within one heavy item's cost and the assignment is a pure function
    // of the inputs.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(&items[i])), i));
    let assignment = &order;

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut by_rank: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let f = &f;
        // The caller's thread takes the last stride inline instead of
        // idling in join, so `workers` threads means `workers - 1` spawns.
        let handles: Vec<_> = (0..workers - 1)
            .map(|w| {
                scope.spawn(move || {
                    (w..n)
                        .step_by(workers)
                        .map(|rank| f(assignment[rank], &items[assignment[rank]]))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        let last: Vec<R> = (workers - 1..n)
            .step_by(workers)
            .map(|rank| f(assignment[rank], &items[assignment[rank]]))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(stride) => by_rank.push(stride),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        by_rank.push(last);
    });

    for (w, stride) in by_rank.into_iter().enumerate() {
        for (k, result) in stride.into_iter().enumerate() {
            slots[assignment[w + k * workers]] = Some(result);
        }
    }
    slots
        .into_iter()
        // tidy-allow: unwrap invariant: every slot is filled by exactly one stride
        .map(|slot| slot.expect("every slot is filled by exactly one stride"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_constructors() {
        assert_eq!(Threads::default(), Threads::ONE);
        assert_eq!(Threads::new(0).get(), 1);
        assert_eq!(Threads::new(4).get(), 4);
        assert!(Threads::available().get() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out = par_map(Threads::new(8), &empty, |_, x: &i32| *x * 2);
        assert!(out.is_empty());
        let out = par_map(Threads::new(8), &[21], |_, x| *x * 2);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_are_in_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 16, 200] {
            let out = par_map(Threads::new(threads), &items, |_, x| x * x);
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = par_map(Threads::new(3), &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = par_map(Threads::new(64), &items, |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn interleaved_map_matches_sequential_at_any_thread_count() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<String> = items.iter().map(|x| format!("{x}:{}", x * x)).collect();
        for threads in [1, 2, 3, 4, 8, 16, 200] {
            let out = par_map_interleaved(Threads::new(threads), &items, |i, x| {
                format!("{i}:{}", x * x)
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
        let empty: Vec<i32> = Vec::new();
        assert!(par_map_interleaved(Threads::new(8), &empty, |_, x: &i32| *x).is_empty());
        assert_eq!(
            par_map_interleaved(Threads::new(8), &[21], |_, x| *x * 2),
            vec![42]
        );
    }

    #[test]
    fn stateful_interleaved_map_matches_sequential_at_any_thread_count() {
        // The state is a reusable scratch buffer: correctness must not
        // depend on which worker (and hence which buffer) serves an item.
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 16, 200] {
            let out = par_map_interleaved_with(
                Threads::new(threads),
                &items,
                Vec::<usize>::new,
                |scratch, _, &x| {
                    scratch.clear();
                    scratch.extend((0..x.min(7)).map(|_| x));
                    x * x
                },
            );
            assert_eq!(out, expected, "threads = {threads}");
        }
        let empty: Vec<i32> = Vec::new();
        assert!(
            par_map_interleaved_with(Threads::new(8), &empty, || (), |(), _, x: &i32| *x)
                .is_empty()
        );
    }

    #[test]
    fn weighted_map_matches_sequential_at_any_thread_count() {
        // Heavy-tailed weights: item i costs i², so the tail dominates.
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16, 200] {
            let out = par_map_weighted(Threads::new(threads), &items, |x| x * x, |_, x| x * x + 1);
            assert_eq!(out, expected, "threads = {threads}");
        }
        // Constant weights degrade to a plain strided map; empty and
        // singleton inputs run inline.
        let out = par_map_weighted(Threads::new(4), &items, |_| 1, |i, _| i);
        assert_eq!(out, (0..103).collect::<Vec<usize>>());
        let empty: Vec<i32> = Vec::new();
        assert!(par_map_weighted(Threads::new(8), &empty, |_| 0, |_, x: &i32| *x).is_empty());
        assert_eq!(
            par_map_weighted(Threads::new(8), &[21], |_| 0, |_, x| *x * 2),
            vec![42]
        );
    }

    #[test]
    fn weighted_map_panic_propagates() {
        let items: Vec<i32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_weighted(
                Threads::new(4),
                &items,
                |&x| x as u64, // tidy-allow: cast test weight, not a bound
                |_, &x| {
                    if x == 5 {
                        panic!("boom");
                    }
                    x
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn fallible_results_keep_order() {
        let items: Vec<i32> = (0..20).collect();
        let out: Vec<Result<i32, String>> = par_map(Threads::new(4), &items, |_, &x| {
            if x % 7 == 3 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(out.len(), 20);
        assert_eq!(out[3], Err("bad 3".to_string()));
        assert_eq!(out[10], Err("bad 10".to_string()));
        assert_eq!(out[4], Ok(4));
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        // Same inputs, same output.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        // Distinct indices and distinct master seeds give distinct streams;
        // check a block exhaustively.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..8u64 {
            for index in 0..64u64 {
                seen.insert(derive_seed(seed, index));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "no collisions in a small block");
        // Consecutive indices differ in many bits (avalanche), not just one.
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        assert!((a ^ b).count_ones() > 10, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn derive_seed_matches_the_splitmix64_reference() {
        // Reference value computed with the canonical splitmix64 sequence:
        // state = seed + (index+1)·golden-gamma, then one finalizer pass.
        // Pinning it here keeps historic sweep outputs reproducible.
        let mut z = 3u64.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(5));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        assert_eq!(derive_seed(3, 4), z);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<i32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Threads::new(4), &items, |_, &x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
