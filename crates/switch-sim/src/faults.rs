//! Scripted fault injection: [`TransientEvent`] and [`FaultScript`].
//!
//! A fault script is a deterministic, time-ordered list of infrastructure
//! events injected into a running simulation — the dynamic counterpart of
//! the static failure overlay on [`gmf_net::Topology`]:
//!
//! * [`FaultKind::LinkDown`] — the full-duplex cable stops accepting *new*
//!   transmissions in both directions.  Frames already handed to a NIC (or
//!   already on the wire) complete normally — store-and-forward hardware
//!   cannot recall a frame mid-serialisation — but blocked frames stay in
//!   their output queues until the cable comes back;
//! * [`FaultKind::LinkUp`] — the cable is repaired; blocked output queues
//!   drain from this instant on;
//! * [`FaultKind::CpuDegrade`] — the switch CPU slows down: its current
//!   per-frame `CROUTE`/`CSEND` are multiplied by an integer factor, the
//!   simulation-side twin of
//!   `gmf_net::Topology::degrade_switch` with the analysis's
//!   `SwitchDegrade` scenario (a single degrade event by factor `k` leaves
//!   the switch running at exactly the configuration the survivor analysis
//!   bounds).
//!
//! Scripts are validated against the topology before the simulation starts
//! (cables must exist, degraded nodes must be switches, link state must
//! toggle consistently), and the whole mechanism is deterministic: fault
//! events go through the same tie-broken event queue as traffic, so a run
//! with a script is exactly reproducible for a given seed.

use crate::sim::SimError;
use gmf_model::Time;
use gmf_net::{NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Normalised unordered cable key (both directions of a duplex link).
pub(crate) fn cable(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// What a transient fault does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The cable between the two nodes goes down (both directions).
    LinkDown {
        /// One cable endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The cable between the two nodes is repaired.
    LinkUp {
        /// One cable endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The switch's current `CROUTE`/`CSEND` are multiplied by `factor`.
    CpuDegrade {
        /// The degraded switch.
        switch: NodeId,
        /// Integer slowdown factor (≥ 1; 1 is a no-op).
        factor: u64,
    },
}

/// One scripted fault at a point on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientEvent {
    /// When the fault fires (simulated time).
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault script.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultScript {
    events: Vec<TransientEvent>,
}

impl FaultScript {
    /// An empty script (no faults).
    pub fn empty() -> Self {
        FaultScript::default()
    }

    /// Build a script; events are stably sorted by firing time, so
    /// same-instant events keep the order they were given in.
    pub fn new(mut events: Vec<TransientEvent>) -> Self {
        events.sort_by_key(|x| x.at);
        FaultScript { events }
    }

    /// The events, ascending by time.
    pub fn events(&self) -> &[TransientEvent] {
        &self.events
    }

    /// `true` if the script contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the script against a topology: every event references
    /// existing hardware, degrade factors are ≥ 1, and cable state toggles
    /// consistently (no `LinkDown` of an already-down cable, no `LinkUp`
    /// of a cable that is up).
    ///
    /// Firing times are *not* checked here: an event before the simulation
    /// starts (negative `at`) is rejected by the event queue itself when
    /// the script is scheduled, surfacing as a hard
    /// [`SimError::EventInPast`] in every build profile.
    pub fn validate(&self, topology: &Topology) -> Result<(), SimError> {
        let mut down: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for event in &self.events {
            match event.kind {
                FaultKind::LinkDown { a, b } => {
                    if !topology.has_link(a, b) && !topology.has_link(b, a) {
                        return Err(SimError::InvalidFaultScript(format!(
                            "no cable between {a} and {b}"
                        )));
                    }
                    if !down.insert(cable(a, b)) {
                        return Err(SimError::InvalidFaultScript(format!(
                            "cable between {a} and {b} is already down"
                        )));
                    }
                }
                FaultKind::LinkUp { a, b } => {
                    if !down.remove(&cable(a, b)) {
                        return Err(SimError::InvalidFaultScript(format!(
                            "cable between {a} and {b} is not down"
                        )));
                    }
                }
                FaultKind::CpuDegrade { switch, factor } => {
                    match topology.node(switch) {
                        Ok(node) if node.is_switch() => {}
                        _ => {
                            return Err(SimError::InvalidFaultScript(format!(
                                "{switch} is not an Ethernet switch"
                            )))
                        }
                    }
                    if factor == 0 {
                        return Err(SimError::InvalidFaultScript(format!(
                            "degrade factor of {switch} must be at least 1"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmf_net::{LinkProfile, SwitchConfig};

    fn topo() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let h0 = t.add_end_host("h0");
        let s1 = t.add_switch(SwitchConfig::paper(), "s1");
        let h2 = t.add_end_host("h2");
        t.add_duplex_link(h0, s1, LinkProfile::ethernet_100m())
            .unwrap();
        t.add_duplex_link(s1, h2, LinkProfile::ethernet_100m())
            .unwrap();
        (t, vec![h0, s1, h2])
    }

    fn down(at_ms: f64, a: NodeId, b: NodeId) -> TransientEvent {
        TransientEvent {
            at: Time::from_millis(at_ms),
            kind: FaultKind::LinkDown { a, b },
        }
    }

    fn up(at_ms: f64, a: NodeId, b: NodeId) -> TransientEvent {
        TransientEvent {
            at: Time::from_millis(at_ms),
            kind: FaultKind::LinkUp { a, b },
        }
    }

    #[test]
    fn script_sorts_stably_by_time() {
        let (_, n) = topo();
        let script = FaultScript::new(vec![
            up(30.0, n[0], n[1]),
            down(10.0, n[0], n[1]),
            down(30.0, n[1], n[2]),
        ]);
        let times: Vec<Time> = script.events().iter().map(|e| e.at).collect();
        assert_eq!(
            times,
            vec![
                Time::from_millis(10.0),
                Time::from_millis(30.0),
                Time::from_millis(30.0)
            ]
        );
        // Same-instant events keep input order: the LinkUp came first.
        assert!(matches!(script.events()[1].kind, FaultKind::LinkUp { .. }));
        assert!(!script.is_empty());
        assert!(FaultScript::empty().is_empty());
    }

    #[test]
    fn validation_catches_bad_references_and_inconsistent_toggles() {
        let (t, n) = topo();
        // Direction-insensitive cable references are fine.
        FaultScript::new(vec![down(1.0, n[1], n[0]), up(2.0, n[0], n[1])])
            .validate(&t)
            .unwrap();
        // No such cable.
        let e = FaultScript::new(vec![down(1.0, n[0], n[2])])
            .validate(&t)
            .unwrap_err();
        assert!(e.to_string().contains("no cable"));
        // Double LinkDown.
        let e = FaultScript::new(vec![down(1.0, n[0], n[1]), down(2.0, n[1], n[0])])
            .validate(&t)
            .unwrap_err();
        assert!(e.to_string().contains("already down"));
        // LinkUp of a healthy cable.
        let e = FaultScript::new(vec![up(1.0, n[0], n[1])])
            .validate(&t)
            .unwrap_err();
        assert!(e.to_string().contains("not down"));
        // Degrading an end host.
        let e = FaultScript::new(vec![TransientEvent {
            at: Time::ZERO,
            kind: FaultKind::CpuDegrade {
                switch: n[0],
                factor: 2,
            },
        }])
        .validate(&t)
        .unwrap_err();
        assert!(e.to_string().contains("not an Ethernet switch"));
        // Zero factor.
        let e = FaultScript::new(vec![TransientEvent {
            at: Time::ZERO,
            kind: FaultKind::CpuDegrade {
                switch: n[1],
                factor: 0,
            },
        }])
        .validate(&t)
        .unwrap_err();
        assert!(e.to_string().contains("at least 1"));
    }

    #[test]
    fn script_roundtrips_through_serde() {
        let (_, n) = topo();
        let script = FaultScript::new(vec![
            down(5.0, n[0], n[1]),
            TransientEvent {
                at: Time::from_millis(7.0),
                kind: FaultKind::CpuDegrade {
                    switch: n[1],
                    factor: 3,
                },
            },
            up(9.0, n[0], n[1]),
        ]);
        let json = serde_json::to_string(&script).unwrap();
        let back: FaultScript = serde_json::from_str(&json).unwrap();
        assert_eq!(script, back);
    }
}
