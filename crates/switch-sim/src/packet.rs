//! Packets and Ethernet frames as they travel through the simulator.

use gmf_model::{Bits, FlowId, Time};
use gmf_net::Priority;
use serde::{Deserialize, Serialize};

/// Identifier of one UDP packet instance: the flow it belongs to and its
/// sequence number within the flow's arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId {
    /// The flow the packet belongs to.
    pub flow: FlowId,
    /// Sequence number of the packet within the flow (0, 1, 2, …).
    pub sequence: u64,
}

/// One Ethernet frame in flight.
///
/// The simulator clones frames as they move between queues and embeds them
/// in events, so they are small plain-old-data values: the index fields
/// use narrow integers (a flow cycle has far fewer than 2³² frames, a
/// packet far fewer than 2¹⁶ fragments) to keep the event queue's working
/// set compact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthFrame {
    /// The UDP packet this frame is a fragment of.
    pub packet: PacketId,
    /// Index of the GMF frame (of the flow's cycle) the packet instantiates.
    pub gmf_frame: u32,
    /// Fragment index within the packet (0-based).
    pub fragment: u16,
    /// Total number of fragments of the packet.
    pub n_fragments: u16,
    /// Size on the wire (including all per-frame overhead).
    pub wire_bits: Bits,
    /// 802.1p priority of the flow.
    pub priority: Priority,
    /// Time at which the UDP packet arrived (was enqueued) at the source —
    /// the reference point for its response time and deadline.
    pub packet_arrival: Time,
}

impl EthFrame {
    /// `true` if this is the last fragment of its packet.
    pub fn is_last_fragment(&self) -> bool {
        self.fragment + 1 == self.n_fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_id_ordering() {
        let a = PacketId {
            flow: FlowId(0),
            sequence: 1,
        };
        let b = PacketId {
            flow: FlowId(0),
            sequence: 2,
        };
        let c = PacketId {
            flow: FlowId(1),
            sequence: 0,
        };
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a, a);
    }

    #[test]
    fn last_fragment_detection() {
        let mut f = EthFrame {
            packet: PacketId {
                flow: FlowId(3),
                sequence: 7,
            },
            gmf_frame: 2,
            fragment: 0,
            n_fragments: 3,
            wire_bits: Bits::from_bits(12304),
            priority: Priority(5),
            packet_arrival: Time::from_millis(10.0),
        };
        assert!(!f.is_last_fragment());
        f.fragment = 2;
        assert!(f.is_last_fragment());
    }
}
