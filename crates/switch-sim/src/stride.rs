//! Stride scheduling (Waldspurger & Weihl), as used by Click to schedule
//! the software tasks inside an Ethernet switch.
//!
//! Each task has a number of *tickets*; its *stride* is a large constant
//! divided by its tickets, and its *pass* counter starts at its stride.
//! The dispatcher always runs the task with the smallest pass and then
//! advances that task's pass by its stride, so a task with twice the
//! tickets is dispatched twice as often.  With one ticket per task the
//! policy degenerates to round-robin, which is Click's default and the
//! configuration assumed by the paper's analysis.

use serde::{Deserialize, Serialize};

/// The large constant whose quotient by the ticket count gives the stride.
pub const STRIDE1: u64 = 1 << 20;

/// One schedulable task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct TaskState {
    tickets: u64,
    stride: u64,
    pass: u64,
}

/// A stride scheduler over a fixed set of tasks, identified by their index
/// at registration time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrideScheduler {
    tasks: Vec<TaskState>,
    /// Cached next-dispatch index, valid only while the pass counters are
    /// in the canonical round-robin profile (see `round_robin_front`).
    /// Purely an acceleration: never part of equality or serialization.
    #[serde(skip)]
    rr_front: Option<usize>,
}

impl PartialEq for StrideScheduler {
    fn eq(&self, other: &Self) -> bool {
        self.tasks == other.tasks
    }
}

impl Eq for StrideScheduler {}

impl StrideScheduler {
    /// Create an empty scheduler.
    pub fn new() -> Self {
        StrideScheduler {
            tasks: Vec::new(),
            rr_front: None,
        }
    }

    /// Create a round-robin scheduler over `n` tasks (one ticket each).
    pub fn round_robin(n: usize) -> Self {
        let mut s = StrideScheduler::new();
        for _ in 0..n {
            s.add_task(1);
        }
        s
    }

    /// Register a task with the given ticket count; returns its index.
    pub fn add_task(&mut self, tickets: u64) -> usize {
        assert!(tickets >= 1, "a task needs at least one ticket");
        self.rr_front = None;
        let stride = STRIDE1 / tickets;
        self.tasks.push(TaskState {
            tickets,
            stride,
            // The paper: "when the system boots, the pass of a task is
            // initialized to its stride".
            pass: stride,
        });
        self.tasks.len() - 1
    }

    /// Number of registered tasks.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The ticket count of a task.
    pub fn tickets(&self, task: usize) -> u64 {
        self.tasks[task].tickets
    }

    /// Index of the task that would be dispatched next (smallest pass, ties
    /// broken towards the lowest index), without advancing it.
    pub fn peek(&self) -> Option<usize> {
        self.tasks
            .iter()
            .enumerate()
            .min_by_key(|(idx, t)| (t.pass, *idx))
            .map(|(idx, _)| idx)
    }

    /// Dispatch the next task: returns its index and advances its pass by
    /// its stride.
    pub fn dispatch(&mut self) -> Option<usize> {
        self.rr_front = None;
        let idx = self.peek()?;
        let task = &mut self.tasks[idx];
        task.pass += task.stride;
        Some(idx)
    }

    /// Allocation-free variant of [`dispatch_until`](Self::dispatch_until)
    /// for the simulator's hot path: dispatch until a task satisfying
    /// `wanted` is selected and return `(selected, skipped)`, where
    /// `skipped` counts the idle tasks whose turns were consumed along the
    /// way.  Returns `None` — with the scheduler left untouched — if no
    /// task satisfies the predicate, so an idle CPU can go back to sleep
    /// without consuming anyone's turn.
    pub fn dispatch_scan(&mut self, mut wanted: impl FnMut(usize) -> bool) -> Option<(usize, u64)> {
        let start = match self.rr_front {
            Some(front) => Some(front),
            None => self.round_robin_front(),
        };
        if let Some(start) = start {
            // Fast path: uniform strides in the canonical round-robin
            // profile dispatch cyclically, so each step is O(1) instead
            // of `dispatch`'s O(n) min-scan.
            let n = self.tasks.len();
            for step in 0..n {
                let idx = (start + step) % n;
                let task = &mut self.tasks[idx];
                task.pass += task.stride;
                if wanted(idx) {
                    // The walk preserved the canonical profile; the next
                    // dispatch continues right after the selected task.
                    // `step` tasks were offered a turn and declined.
                    self.rr_front = Some((idx + 1) % n);
                    return Some((idx, step as u64));
                }
            }
            // Nothing ready: undo the advances (each task was offered
            // exactly one turn above) so the scan had no effect.
            for task in &mut self.tasks {
                task.pass -= task.stride;
            }
            self.rr_front = Some(start);
            return None;
        }
        // General strides: probe the predicate first so an all-idle scan
        // leaves the pass counters untouched, then dispatch for real.
        if !(0..self.tasks.len()).any(&mut wanted) {
            return None;
        }
        for skipped in 0..self.tasks.len() {
            let idx = self.dispatch()?;
            if wanted(idx) {
                return Some((idx, skipped as u64));
            }
        }
        None
    }

    /// If every task has the same stride and the pass counters form the
    /// canonical round-robin profile — a (possibly empty) high prefix one
    /// stride above a low suffix, which is invariant under dispatching —
    /// return the index of the next task to dispatch (the first task of
    /// the low suffix).  Any other profile returns `None` and callers use
    /// the general min-scan.
    fn round_robin_front(&self) -> Option<usize> {
        let first = self.tasks.first()?;
        let (stride, high) = (first.stride, first.pass);
        let mut front = 0;
        let mut low = high;
        for (idx, t) in self.tasks.iter().enumerate().skip(1) {
            if t.stride != stride {
                return None;
            }
            if t.pass == low {
                continue;
            }
            if low == high && t.pass + stride == low {
                // The single step down from the high prefix.
                low = t.pass;
                front = idx;
            } else {
                return None;
            }
        }
        Some(front)
    }

    /// Dispatch repeatedly until a task satisfying `wanted` is selected, or
    /// every task has been offered one turn in this round.  Returns the
    /// sequence of task indices dispatched (the last one, if any, satisfies
    /// the predicate).  Useful for skipping idle tasks cheaply while still
    /// consuming their turns.
    pub fn dispatch_until(&mut self, mut wanted: impl FnMut(usize) -> bool) -> Vec<usize> {
        let mut dispatched = Vec::new();
        for _ in 0..self.tasks.len() {
            match self.dispatch() {
                Some(idx) => {
                    dispatched.push(idx);
                    if wanted(idx) {
                        break;
                    }
                }
                None => break,
            }
        }
        dispatched
    }
}

impl Default for StrideScheduler {
    fn default() -> Self {
        StrideScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_through_all_tasks() {
        let mut s = StrideScheduler::round_robin(4);
        assert_eq!(s.n_tasks(), 4);
        let order: Vec<usize> = (0..8).map(|_| s.dispatch().unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = StrideScheduler::round_robin(2);
        assert_eq!(s.peek(), Some(0));
        assert_eq!(s.peek(), Some(0));
        assert_eq!(s.dispatch(), Some(0));
        assert_eq!(s.peek(), Some(1));
    }

    #[test]
    fn tickets_bias_dispatch_frequency() {
        // A task with 2 tickets runs twice as often as tasks with 1.
        let mut s = StrideScheduler::new();
        let heavy = s.add_task(2);
        let light = s.add_task(1);
        let mut counts = [0usize; 2];
        for _ in 0..300 {
            let idx = s.dispatch().unwrap();
            counts[idx] += 1;
        }
        assert_eq!(s.tickets(heavy), 2);
        assert_eq!(s.tickets(light), 1);
        let ratio = counts[heavy] as f64 / counts[light] as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn empty_scheduler_dispatches_nothing() {
        let mut s = StrideScheduler::new();
        assert_eq!(s.peek(), None);
        assert_eq!(s.dispatch(), None);
        assert!(s.dispatch_until(|_| true).is_empty());
    }

    #[test]
    fn dispatch_until_skips_unwanted_tasks_but_consumes_their_turn() {
        let mut s = StrideScheduler::round_robin(3);
        // Only task 2 is "wanted" (has work).
        let dispatched = s.dispatch_until(|idx| idx == 2);
        assert_eq!(dispatched, vec![0, 1, 2]);
        // The next dispatch continues the round-robin cycle after task 2.
        assert_eq!(s.dispatch(), Some(0));
    }

    #[test]
    fn dispatch_scan_matches_dispatch_until() {
        let mut a = StrideScheduler::round_robin(3);
        let mut b = StrideScheduler::round_robin(3);
        // Same predicate: dispatch_scan's (selected, skipped) must agree
        // with dispatch_until's trace, and both advance the round
        // identically.
        let trace = a.dispatch_until(|idx| idx == 2);
        let (selected, skipped) = b.dispatch_scan(|idx| idx == 2).unwrap();
        assert_eq!(*trace.last().unwrap(), selected);
        assert_eq!(trace.len() as u64 - 1, skipped);
        assert_eq!(a.dispatch(), b.dispatch());
        // No wanted task: the scan reports None and leaves the scheduler
        // exactly as it was (no turns consumed).
        let before = b.clone();
        assert!(b.dispatch_scan(|_| false).is_none());
        assert_eq!(b, before);
        assert!(StrideScheduler::new().dispatch_scan(|_| true).is_none());
    }

    #[test]
    fn dispatch_until_gives_up_after_one_full_round() {
        let mut s = StrideScheduler::round_robin(3);
        let dispatched = s.dispatch_until(|_| false);
        assert_eq!(dispatched.len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_tickets_rejected() {
        let mut s = StrideScheduler::new();
        s.add_task(0);
    }
}
