//! # switch-sim
//!
//! A **discrete-event simulator of software-implemented Ethernet switches**
//! (Click-style), the experimental substrate of the reproduction: the paper
//! measured its constants on a real Click switch, which we replace by this
//! simulator (see DESIGN.md §2).
//!
//! The simulated system matches the structure the analysis reasons about:
//!
//! * sources release GMF traffic (dense or randomised arrivals, generalized
//!   jitter spreads) from work-conserving FIFO output queues;
//! * switches run one routing task per input interface and one send task
//!   per output interface on a single CPU under non-preemptive round-robin
//!   [`stride`] scheduling with the measured costs `CROUTE`/`CSEND`;
//! * output queues are 802.1p static-priority queues;
//! * links add serialisation and propagation delay;
//! * destinations reassemble UDP packets and record end-to-end response
//!   times;
//! * scripted [`faults`] deterministically take cables down and up and
//!   degrade switch CPUs mid-run, for failure-and-recovery experiments.
//!
//! ```
//! use switch_sim::prelude::*;
//! use gmf_model::prelude::*;
//! use gmf_net::prelude::*;
//!
//! let (topology, net) = paper_figure1();
//! let mut flows = FlowSet::new();
//! let voice = voip_flow("voice", VoiceCodec::G711, Time::from_millis(20.0), Time::ZERO);
//! let route = shortest_path(&topology, net.hosts[1], net.hosts[3]).unwrap();
//! flows.add(voice, route, Priority::HIGHEST);
//!
//! let sim = Simulator::new(&topology, &flows, SimConfig::quick()).unwrap();
//! let result = sim.run().unwrap();
//! assert!(result.stats.packets_completed > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod config;
pub mod event;
pub mod faults;
pub mod nodes;
pub mod packet;
pub mod sim;
pub mod stats;
pub mod stride;

pub use config::{ArrivalPolicy, JitterSpread, SimConfig};
pub use event::{Event, EventInPast, EventKind, EventQueue, QueueShape, ReferenceEventQueue};
pub use faults::{FaultKind, FaultScript, TransientEvent};
pub use nodes::{EndpointState, PriorityQueue, SwitchState, SwitchTask};
pub use packet::{EthFrame, PacketId};
pub use sim::{SimError, SimulationResult, Simulator};
pub use stats::{PacketSample, ResponseHistogram, ResponseStats, SimStats, MAX_KEPT_SAMPLES};
pub use stride::StrideScheduler;

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::config::{ArrivalPolicy, JitterSpread, SimConfig};
    pub use crate::event::QueueShape;
    pub use crate::faults::{FaultKind, FaultScript, TransientEvent};
    pub use crate::sim::{SimError, SimulationResult, Simulator};
    pub use crate::stats::{PacketSample, ResponseHistogram, ResponseStats, SimStats};
    pub use crate::stride::StrideScheduler;
}
