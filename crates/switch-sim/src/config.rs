//! Simulation configuration.

use gmf_model::Time;
use serde::{Deserialize, Serialize};

/// How the Ethernet frames of one UDP packet are spread over the packet's
/// generalized-jitter window `[arrival, arrival + GJ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum JitterSpread {
    /// All Ethernet frames are released at the start of the window
    /// (equivalent to no jitter).
    AtStart,
    /// Frames are spread uniformly over the window (the last one is released
    /// just before `arrival + GJ`).
    #[default]
    Uniform,
    /// All frames are released at the very end of the window — the
    /// worst-case spread the generalized-jitter model permits.
    AtEnd,
}

/// How packet inter-arrival times are chosen relative to the GMF minimums.
///
/// The three adversarial policies (`CriticalInstant`, `MaxReleaseJitter`,
/// `BurstyGops`) generate *legal* traffic — every gap still respects the
/// flow's minimum inter-arrival times and every Ethernet frame is released
/// within its generalized-jitter window — while actively pushing the
/// observed response times toward the analytical bound.  The conformance
/// harness (E13) runs every scenario under all of them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalPolicy {
    /// Every frame arrives exactly its minimum inter-arrival time after the
    /// previous one — the densest (worst-case) legal arrival pattern.
    #[default]
    Dense,
    /// Each gap is stretched by a uniformly random factor in
    /// `[1, 1 + slack]`; models sources that are not maximally bursty.
    RandomSlack {
        /// Maximum relative slack added to every inter-arrival gap.
        slack: f64,
    },
    /// Critical-instant phasing: dense minimum gaps *and* every flow's
    /// first packet arrives at time zero, overriding
    /// [`SimConfig::aligned_start`].  All flows hit every shared resource
    /// together — the alignment the response-time analysis charges for.
    CriticalInstant,
    /// Dense minimum gaps in which the *first* packet of every flow holds
    /// all of its Ethernet frames to the very end of the generalized-jitter
    /// window while every later packet releases immediately: the spacing
    /// between the first and second packet, as seen by the network, shrinks
    /// by almost the full `GJ` — the classical worst case of jitter
    /// analysis.
    MaxReleaseJitter,
    /// Dense minimum gaps *within* each GMF cycle, with a random idle pause
    /// of up to `max_pause × TSUM` inserted between cycles.  Each GOP is a
    /// maximal back-to-back burst, and every cycle re-randomises the flows'
    /// relative phasing — one run samples many alignments in its search for
    /// a bad one.
    BurstyGops {
        /// Upper bound of the inter-cycle pause, as a fraction of the
        /// flow's cycle length `TSUM` (drawn uniformly per cycle).
        max_pause: f64,
    },
}

impl ArrivalPolicy {
    /// `true` for the policies that force every flow to start at time zero
    /// regardless of [`SimConfig::aligned_start`].
    pub fn forces_aligned_start(&self) -> bool {
        matches!(self, ArrivalPolicy::CriticalInstant)
    }

    /// Short stable label used in conformance reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalPolicy::Dense => "dense",
            ArrivalPolicy::RandomSlack { .. } => "random-slack",
            ArrivalPolicy::CriticalInstant => "critical-instant",
            ArrivalPolicy::MaxReleaseJitter => "max-release-jitter",
            ArrivalPolicy::BurstyGops { .. } => "bursty-gops",
        }
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated time horizon; packet arrivals are generated up to this
    /// time and the simulation drains all in-flight traffic afterwards.
    pub horizon: Time,
    /// How Ethernet frames are spread over each packet's jitter window.
    pub jitter_spread: JitterSpread,
    /// How packet inter-arrival times are generated.
    pub arrival: ArrivalPolicy,
    /// Per-flow initial phase: if `true`, every flow starts at time zero
    /// (the critical-instant-like alignment); if `false`, each flow gets a
    /// random initial phase within its first inter-arrival time.
    pub aligned_start: bool,
    /// CPU cost of offering a turn to a task that has nothing to do
    /// (Click's cost of a task returning immediately).
    pub idle_poll_cost: Time,
    /// Seed for all randomness (arrival slack, jitter placement, phases).
    pub seed: u64,
    /// Packets that *arrive at their source* before this instant are
    /// excluded from the per-frame response-time aggregates (they still
    /// count towards `packets_completed`).  Fault-recovery conformance runs
    /// use this to measure only traffic released after the network settled
    /// back into the analysed state.
    #[serde(default)]
    pub measure_from: Time,
    /// Debug-only: retain per-packet [`PacketSample`]s on the run's
    /// `SimStats` (capped at `MAX_KEPT_SAMPLES`, truncation counted and
    /// warned about).  Percentiles come from the streaming histograms and
    /// never need retention — this exists to reconstruct the critical
    /// window of a conformance violation.  The `GMF_SIM_KEEP_SAMPLES`
    /// environment variable (any value other than empty or `0`) turns it
    /// on without touching code.
    ///
    /// [`PacketSample`]: crate::PacketSample
    #[serde(default)]
    pub keep_samples: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Time::from_secs(2.0),
            jitter_spread: JitterSpread::Uniform,
            arrival: ArrivalPolicy::Dense,
            aligned_start: true,
            idle_poll_cost: Time::from_micros(0.1),
            seed: 0xC0FFEE,
            measure_from: Time::ZERO,
            keep_samples: false,
        }
    }
}

impl SimConfig {
    /// A short smoke-test configuration (200 ms horizon).
    pub fn quick() -> Self {
        SimConfig {
            horizon: Time::from_millis(200.0),
            ..SimConfig::default()
        }
    }

    /// Override the horizon.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the measurement start (see [`SimConfig::measure_from`]).
    pub fn with_measure_from(mut self, measure_from: Time) -> Self {
        self.measure_from = measure_from;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SimConfig::default();
        assert!(c.horizon >= Time::from_secs(1.0));
        assert!(c.aligned_start);
        assert_eq!(c.arrival, ArrivalPolicy::Dense);
        assert_eq!(c.jitter_spread, JitterSpread::Uniform);
        assert!(c.idle_poll_cost < Time::from_micros(1.0));
    }

    #[test]
    fn builders() {
        let c = SimConfig::quick()
            .with_horizon(Time::from_millis(500.0))
            .with_seed(42);
        assert_eq!(c.horizon, Time::from_millis(500.0));
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn policy_labels_are_stable_and_distinct() {
        let policies = [
            ArrivalPolicy::Dense,
            ArrivalPolicy::RandomSlack { slack: 0.5 },
            ArrivalPolicy::CriticalInstant,
            ArrivalPolicy::MaxReleaseJitter,
            ArrivalPolicy::BurstyGops { max_pause: 1.0 },
        ];
        let labels: Vec<&str> = policies.iter().map(|p| p.label()).collect();
        let mut unique = labels.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "labels must be distinct");
        assert_eq!(ArrivalPolicy::CriticalInstant.label(), "critical-instant");
    }

    #[test]
    fn only_critical_instant_forces_alignment() {
        assert!(ArrivalPolicy::CriticalInstant.forces_aligned_start());
        assert!(!ArrivalPolicy::Dense.forces_aligned_start());
        assert!(!ArrivalPolicy::MaxReleaseJitter.forces_aligned_start());
        assert!(!ArrivalPolicy::BurstyGops { max_pause: 0.5 }.forces_aligned_start());
        assert!(!ArrivalPolicy::RandomSlack { slack: 0.1 }.forces_aligned_start());
    }

    #[test]
    fn adversarial_policies_roundtrip_through_serde() {
        for policy in [
            ArrivalPolicy::CriticalInstant,
            ArrivalPolicy::MaxReleaseJitter,
            ArrivalPolicy::BurstyGops { max_pause: 0.75 },
        ] {
            let cfg = SimConfig {
                arrival: policy,
                ..SimConfig::quick()
            };
            let json = serde_json::to_string(&cfg).unwrap();
            let back: SimConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }
}
