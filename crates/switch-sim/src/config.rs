//! Simulation configuration.

use gmf_model::Time;
use serde::{Deserialize, Serialize};

/// How the Ethernet frames of one UDP packet are spread over the packet's
/// generalized-jitter window `[arrival, arrival + GJ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum JitterSpread {
    /// All Ethernet frames are released at the start of the window
    /// (equivalent to no jitter).
    AtStart,
    /// Frames are spread uniformly over the window (the last one is released
    /// just before `arrival + GJ`).
    #[default]
    Uniform,
    /// All frames are released at the very end of the window — the
    /// worst-case spread the generalized-jitter model permits.
    AtEnd,
}

/// How packet inter-arrival times are chosen relative to the GMF minimums.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalPolicy {
    /// Every frame arrives exactly its minimum inter-arrival time after the
    /// previous one — the densest (worst-case) legal arrival pattern.
    #[default]
    Dense,
    /// Each gap is stretched by a uniformly random factor in
    /// `[1, 1 + slack]`; models sources that are not maximally bursty.
    RandomSlack {
        /// Maximum relative slack added to every inter-arrival gap.
        slack: f64,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated time horizon; packet arrivals are generated up to this
    /// time and the simulation drains all in-flight traffic afterwards.
    pub horizon: Time,
    /// How Ethernet frames are spread over each packet's jitter window.
    pub jitter_spread: JitterSpread,
    /// How packet inter-arrival times are generated.
    pub arrival: ArrivalPolicy,
    /// Per-flow initial phase: if `true`, every flow starts at time zero
    /// (the critical-instant-like alignment); if `false`, each flow gets a
    /// random initial phase within its first inter-arrival time.
    pub aligned_start: bool,
    /// CPU cost of offering a turn to a task that has nothing to do
    /// (Click's cost of a task returning immediately).
    pub idle_poll_cost: Time,
    /// Seed for all randomness (arrival slack, jitter placement, phases).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Time::from_secs(2.0),
            jitter_spread: JitterSpread::Uniform,
            arrival: ArrivalPolicy::Dense,
            aligned_start: true,
            idle_poll_cost: Time::from_micros(0.1),
            seed: 0xC0FFEE,
        }
    }
}

impl SimConfig {
    /// A short smoke-test configuration (200 ms horizon).
    pub fn quick() -> Self {
        SimConfig {
            horizon: Time::from_millis(200.0),
            ..SimConfig::default()
        }
    }

    /// Override the horizon.
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = SimConfig::default();
        assert!(c.horizon >= Time::from_secs(1.0));
        assert!(c.aligned_start);
        assert_eq!(c.arrival, ArrivalPolicy::Dense);
        assert_eq!(c.jitter_spread, JitterSpread::Uniform);
        assert!(c.idle_poll_cost < Time::from_micros(1.0));
    }

    #[test]
    fn builders() {
        let c = SimConfig::quick()
            .with_horizon(Time::from_millis(500.0))
            .with_seed(42);
        assert_eq!(c.horizon, Time::from_millis(500.0));
        assert_eq!(c.seed, 42);
    }
}
