//! The discrete-event queue.
//!
//! Events are ordered by simulated time; ties are broken by a monotonically
//! increasing insertion sequence number so that simulation runs are fully
//! deterministic regardless of how the events were generated.

use crate::faults::FaultKind;
use crate::packet::EthFrame;
use gmf_model::Time;
use gmf_net::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An Ethernet frame of a packet is released by the application at its
    /// source host (start of the frame's availability in the host's output
    /// queue).
    SourceFrameRelease {
        /// The source host.
        host: NodeId,
        /// The next node on the frame's route (which output queue to use).
        next_hop: NodeId,
        /// The frame being released.
        frame: EthFrame,
    },
    /// A host NIC finished serialising a frame onto the link.
    HostTxComplete {
        /// The transmitting host.
        host: NodeId,
        /// The receiving neighbour.
        to: NodeId,
    },
    /// A frame has fully arrived at a node (after transmission and
    /// propagation).
    FrameArrival {
        /// The receiving node.
        node: NodeId,
        /// The neighbour it came from.
        from: NodeId,
        /// The frame.
        frame: EthFrame,
    },
    /// The CPU of a switch finished executing one task and dispatches the
    /// next one.
    CpuDispatch {
        /// The switch whose CPU is dispatching.
        switch: NodeId,
    },
    /// A switch NIC finished serialising a frame onto the link.
    SwitchTxComplete {
        /// The transmitting switch.
        switch: NodeId,
        /// The receiving neighbour.
        to: NodeId,
    },
    /// A scripted infrastructure fault fires (see [`crate::faults`]).
    Fault {
        /// What the fault does.
        kind: FaultKind,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// Deterministic tie-breaker (insertion order).
    pub sequence: u64,
    /// What the event does.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event queue: a time-ordered priority queue with deterministic
/// tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
    scheduled: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` to fire at `time`.
    pub fn schedule(&mut self, time: Time, kind: EventKind) {
        debug_assert!(
            !time.is_negative(),
            "events cannot be scheduled in the past"
        );
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.scheduled += 1;
        self.heap.push(Event {
            time,
            sequence,
            kind,
        });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled since creation.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(node: usize) -> EventKind {
        EventKind::CpuDispatch {
            switch: NodeId(node),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(3.0), dispatch(3));
        q.schedule(Time::from_millis(1.0), dispatch(1));
        q.schedule(Time::from_millis(2.0), dispatch(2));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(
            order,
            vec![
                Time::from_millis(1.0),
                Time::from_millis(2.0),
                Time::from_millis(3.0)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for node in 0..5 {
            q.schedule(Time::from_millis(1.0), dispatch(node));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::CpuDispatch { switch } => switch.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, dispatch(0));
        q.schedule(Time::ZERO, dispatch(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 2);
        assert!(!q.is_empty());
    }
}
