//! The discrete-event queue.
//!
//! Events are ordered by simulated time; ties are broken by a monotonically
//! increasing insertion sequence number so that simulation runs are fully
//! deterministic regardless of how the events were generated.  This (time,
//! sequence) pop order is part of the simulator's determinism contract:
//! every queue implementation must reproduce it exactly, byte for byte.
//!
//! [`EventQueue`] is a calendar queue (Brown '88): pending events live in
//! fixed-width time buckets.  Near-future buckets sit in a power-of-two
//! ring of unsorted append-only vectors indexed by bucket number, so both
//! opening a bucket and draining one are O(1) array operations; the rare
//! event beyond the wheel horizon (scripted faults, mostly) is deferred
//! to a `BTreeMap` keyed by bucket index.  The bucket currently being
//! drained is heapified on adoption (O(b)) and consumed as a small
//! min-heap, so events scheduled *into* the draining bucket cost O(log b)
//! for a bucket a handful of events deep.  Unlike a binary heap over the
//! whole pending set, the working set stays a few cache lines wide no
//! matter how many events are pending.  Drained bucket vectors are pooled
//! and reused, so a steady-state simulation performs no allocator calls
//! in the scheduler at all.
//!
//! [`ReferenceEventQueue`] keeps the original `BinaryHeap` implementation
//! as an executable specification; a property test drives both in lockstep
//! over random schedules (including ties and interleaved pops) and demands
//! byte-identical pop sequences.

use crate::faults::FaultKind;
use crate::packet::EthFrame;
use gmf_model::Time;
use gmf_net::NodeId;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An Ethernet frame of a packet is released by the application at its
    /// source host (start of the frame's availability in the host's output
    /// queue).
    SourceFrameRelease {
        /// The source host.
        host: NodeId,
        /// The host's output port towards the frame's next hop (which
        /// output queue to use).
        port: usize,
        /// The frame being released.
        frame: EthFrame,
    },
    /// A host NIC finished serialising a frame onto the link.
    HostTxComplete {
        /// The transmitting host.
        host: NodeId,
        /// The output port whose NIC finished.
        port: usize,
    },
    /// A frame has fully arrived at a node (after transmission and
    /// propagation).
    FrameArrival {
        /// The receiving node.
        node: NodeId,
        /// The receiver's input port the frame arrives on (precomputed at
        /// the transmitter; unused when the receiver is an endpoint).
        in_port: usize,
        /// The frame.
        frame: EthFrame,
    },
    /// The CPU of a switch finished executing one task and dispatches the
    /// next one.
    CpuDispatch {
        /// The switch whose CPU is dispatching.
        switch: NodeId,
    },
    /// A switch NIC finished serialising a frame onto the link.
    SwitchTxComplete {
        /// The transmitting switch.
        switch: NodeId,
        /// The interface port whose NIC finished.
        port: usize,
    },
    /// A scripted infrastructure fault fires (see [`crate::faults`]).
    Fault {
        /// What the fault does.
        kind: FaultKind,
    },
}

/// A scheduled event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// Deterministic tie-breaker (insertion order).
    pub sequence: u64,
    /// What the event does.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An event was scheduled before the queue's current time (or before time
/// zero).  Surfaced by the simulator as `SimError::EventInPast`: silently
/// enqueuing such an event would make it pop out of order and corrupt the
/// causal history of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventInPast {
    /// The requested (invalid) firing time.
    pub at: Time,
    /// The queue's current time (last popped event, or zero).
    pub now: Time,
}

impl fmt::Display for EventInPast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event scheduled in the past: at {} with simulation time already at {}",
            self.at, self.now
        )
    }
}

impl std::error::Error for EventInPast {}

/// Width of one calendar bucket in nanoseconds.  Chosen so that typical
/// switched-Ethernet event spacing (transmission times of microseconds,
/// CPU costs of hundreds of nanoseconds) lands a handful of events per
/// bucket — the per-bucket heap stays a few levels deep; sparse horizons
/// are unaffected because empty buckets are never visited.
const BUCKET_WIDTH_NS: f64 = 65_536.0;

/// Number of wheel slots (a power of two).  The wheel covers
/// `WHEEL_SLOTS * BUCKET_WIDTH_NS` ≈ 67 ms of simulated time ahead of the
/// drain point; events beyond that land in the `far` map until the wheel
/// catches up.
const WHEEL_SLOTS: usize = 1024;

/// Slot mask for the wheel (`WHEEL_SLOTS` is a power of two).
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// Maximum number of drained bucket vectors kept for reuse.
const BUCKET_POOL_CAP: usize = 64;

/// Shape counters of one [`EventQueue`] over its lifetime, exported so
/// long-horizon benchmarks can gate on the queue staying shallow (the
/// whole point of lazy generation + calendar buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueShape {
    /// Maximum number of events pending at any point.
    pub max_pending: usize,
    /// Largest single bucket ever drained.
    pub max_bucket: usize,
    /// Number of bucket activations (an empty wheel slot or far-map key
    /// receiving its first event).
    pub buckets_opened: u64,
    /// Number of bucket vectors recycled from the pool instead of
    /// allocated.
    pub pool_reuses: u64,
}

/// The event queue: a time-ordered priority queue with deterministic
/// (time, insertion-sequence) pop order, implemented as a calendar queue.
#[derive(Debug)]
pub struct EventQueue {
    /// The bucket currently being drained: a min-first heap on (time,
    /// sequence).  A heap rather than a sorted vector because events keep
    /// being scheduled *into* the bucket while it drains (CPU costs and
    /// transmission times are much shorter than a bucket width), and a
    /// heap push is O(log b) with no memmove of the tail.
    current: BinaryHeap<Event>,
    /// Bucket index of `current`.
    current_bucket: u64,
    /// Near-future buckets: slot `b & WHEEL_MASK` holds the events of
    /// bucket `b` for `b` in `[wheel_base, wheel_base + WHEEL_SLOTS)`.
    /// Direct indexing makes opening and draining a bucket O(1), unlike
    /// the `far` map's tree traversal.
    wheel: Vec<Vec<Event>>,
    /// Number of events resident in `wheel`.
    wheel_pending: usize,
    /// Lowest bucket the wheel may hold.  Monotonically non-decreasing:
    /// it advances to each adopted bucket, so a slot is always emptied
    /// before its index is reused by a bucket one revolution later.
    wheel_base: u64,
    /// Out-of-window buckets, keyed by bucket index: events scheduled
    /// beyond the wheel horizon (scripted faults, mostly) and buckets
    /// demoted from `current` (see `schedule`).
    far: BTreeMap<u64, Vec<Event>>,
    /// Recycled bucket storage.
    pool: Vec<Vec<Event>>,
    /// Time of the last popped event: the queue's current time.
    now: Time,
    /// Number of events pending.
    pending: usize,
    /// Next insertion sequence number.
    next_sequence: u64,
    /// Total events scheduled since creation.
    scheduled: u64,
    /// Lifetime shape counters.
    shape: QueueShape,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            current_bucket: 0,
            wheel: vec![Vec::new(); WHEEL_SLOTS],
            wheel_pending: 0,
            wheel_base: 0,
            far: BTreeMap::new(),
            pool: Vec::new(),
            now: Time::ZERO,
            pending: 0,
            next_sequence: 0,
            scheduled: 0,
            shape: QueueShape::default(),
        }
    }
}

/// Calendar bucket index of a firing time.
fn bucket_of(time: Time) -> u64 {
    // Non-negative by the schedule-time check; nanosecond magnitudes up to
    // ~2^53 convert exactly.
    (time.as_nanos() / BUCKET_WIDTH_NS) as u64
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `kind` to fire at `time`.
    ///
    /// Fails with [`EventInPast`] if `time` is negative or earlier than
    /// the last popped event — the queue's pop order could no longer be
    /// honoured.  (Scheduling *at* the current time is fine: the event
    /// fires after already-pending events of the same instant, per the
    /// insertion-order tie-break.)
    pub fn schedule(&mut self, time: Time, kind: EventKind) -> Result<(), EventInPast> {
        if time < self.now || time.is_negative() {
            return Err(EventInPast {
                at: time,
                now: self.now,
            });
        }
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.scheduled += 1;
        self.pending += 1;
        self.shape.max_pending = self.shape.max_pending.max(self.pending);
        let event = Event {
            time,
            sequence,
            kind,
        };
        let bucket = bucket_of(time);
        if !self.current.is_empty() && bucket == self.current_bucket {
            self.current.push(event);
            self.shape.max_bucket = self.shape.max_bucket.max(self.current.len());
        } else if self.pending == 1 {
            // Queue was fully drained: restart the current bucket here.
            self.current_bucket = bucket;
            self.wheel_base = self.wheel_base.max(bucket);
            self.current.push(event);
        } else if bucket < self.current_bucket {
            // Earlier than the bucket being drained: possible only while
            // `current` is still undrained, when `peek_time` adopted a
            // future bucket before the caller scheduled an intervening
            // event (lazy arrival materialisation does this).  Demote the
            // adopted bucket to the far map and restart here.  Rare, so
            // the tree insert is fine.
            let demoted = std::mem::take(&mut self.current);
            self.far
                .entry(self.current_bucket)
                .or_default()
                .extend(demoted.into_vec());
            self.current_bucket = bucket;
            self.current.push(event);
        } else if bucket >= self.wheel_base && bucket - self.wheel_base < WHEEL_SLOTS as u64 {
            let slot = &mut self.wheel[(bucket & WHEEL_MASK) as usize];
            if slot.is_empty() {
                self.shape.buckets_opened += 1;
            }
            slot.push(event);
            self.wheel_pending += 1;
        } else {
            // Beyond the wheel horizon (scripted faults, mostly).
            match self.far.entry(bucket) {
                std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().push(event),
                std::collections::btree_map::Entry::Vacant(v) => {
                    let mut storage = if let Some(mut pooled) = self.pool.pop() {
                        self.shape.pool_reuses += 1;
                        pooled.clear();
                        pooled
                    } else {
                        Vec::new()
                    };
                    storage.push(event);
                    self.shape.buckets_opened += 1;
                    v.insert(storage);
                }
            }
        }
        Ok(())
    }

    /// Make `current` hold the earliest pending events.  Returns `false`
    /// if nothing is pending.
    fn settle(&mut self) -> bool {
        if !self.current.is_empty() {
            return true;
        }
        if self.pending == 0 {
            return false;
        }
        // Current bucket exhausted: advance to the earliest pending
        // bucket.  That is the first non-empty wheel slot at or after
        // `wheel_base`, unless a far bucket fires before it (demoted
        // buckets sit below `wheel_base`; out-of-window buckets may have
        // entered the window since they were deferred).
        let far_first = self.far.keys().next().copied();
        let (bucket, events) = if self.wheel_pending == 0 {
            // tidy-allow: unwrap invariant: pending events must be somewhere
            let bucket = far_first.expect("pending events must be somewhere");
            // tidy-allow: unwrap invariant: key taken from the same map
            let events = self.far.remove(&bucket).expect("bucket exists");
            (bucket, events)
        } else {
            let mut b = self.wheel_base;
            loop {
                if far_first.is_some_and(|f| f <= b) {
                    // tidy-allow: unwrap invariant: checked above
                    let f = far_first.expect("checked above");
                    // tidy-allow: unwrap invariant: key taken from the same map
                    let mut events = self.far.remove(&f).expect("bucket exists");
                    if f == b {
                        let slot = &mut self.wheel[(b & WHEEL_MASK) as usize];
                        self.wheel_pending -= slot.len();
                        events.append(slot);
                    }
                    break (f, events);
                }
                let idx = (b & WHEEL_MASK) as usize;
                if !self.wheel[idx].is_empty() {
                    let replacement = if let Some(mut pooled) = self.pool.pop() {
                        self.shape.pool_reuses += 1;
                        pooled.clear();
                        pooled
                    } else {
                        Vec::new()
                    };
                    let events = std::mem::replace(&mut self.wheel[idx], replacement);
                    self.wheel_pending -= events.len();
                    break (b, events);
                }
                b += 1;
                debug_assert!(
                    b - self.wheel_base <= WHEEL_SLOTS as u64,
                    "wheel_pending > 0 but no slot within one revolution"
                );
            }
        };
        let drained = std::mem::replace(&mut self.current, BinaryHeap::from(events));
        self.shape.max_bucket = self.shape.max_bucket.max(self.current.len());
        if self.pool.len() < BUCKET_POOL_CAP {
            self.pool.push(drained.into_vec());
        }
        self.current_bucket = bucket;
        self.wheel_base = self.wheel_base.max(bucket);
        true
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        if !self.settle() {
            return None;
        }
        // tidy-allow: unwrap invariant: settle guarantees a pending event
        let event = self.current.pop().expect("settle guarantees a pending");
        self.pending -= 1;
        self.now = event.time;
        Some(event)
    }

    /// Firing time of the earliest pending event, without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        if !self.settle() {
            return None;
        }
        self.current.peek().map(|e| e.time)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events scheduled since creation.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Lifetime shape counters (see [`QueueShape`]).
    pub fn shape(&self) -> QueueShape {
        self.shape
    }
}

/// The original `BinaryHeap` event queue, kept as the executable
/// specification of the (time, insertion-sequence) pop order.  The
/// lockstep property test drives it against [`EventQueue`] on random
/// schedules; production code uses the calendar queue.
#[derive(Debug, Default)]
pub struct ReferenceEventQueue {
    heap: BinaryHeap<Event>,
    next_sequence: u64,
}

impl ReferenceEventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue::default()
    }

    /// Schedule `kind` to fire at `time`.
    pub fn schedule(&mut self, time: Time, kind: EventKind) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Event {
            time,
            sequence,
            kind,
        });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(node: usize) -> EventKind {
        EventKind::CpuDispatch {
            switch: NodeId(node),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_millis(3.0), dispatch(3)).unwrap();
        q.schedule(Time::from_millis(1.0), dispatch(1)).unwrap();
        q.schedule(Time::from_millis(2.0), dispatch(2)).unwrap();
        let order: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(
            order,
            vec![
                Time::from_millis(1.0),
                Time::from_millis(2.0),
                Time::from_millis(3.0)
            ]
        );
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for node in 0..5 {
            q.schedule(Time::from_millis(1.0), dispatch(node)).unwrap();
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::CpuDispatch { switch } => switch.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bookkeeping() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, dispatch(0)).unwrap();
        q.schedule(Time::ZERO, dispatch(1)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_scheduled(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 2);
        assert!(!q.is_empty());
        assert!(q.shape().max_pending >= 2);
    }

    /// The past-time bugfix: a negative or behind-the-clock schedule is a
    /// hard error in every build profile.  (The old code only
    /// `debug_assert!`ed, so release builds silently enqueued the event
    /// and popped it out of order.)  This test runs under `cargo test
    /// --release` and the `release-checked` CI profile unchanged.
    #[test]
    fn scheduling_in_the_past_is_a_hard_error_in_all_profiles() {
        let mut q = EventQueue::new();
        // Negative time: rejected even on a fresh queue.
        let err = q
            .schedule(Time::from_millis(-1.0), dispatch(0))
            .unwrap_err();
        assert_eq!(err.at, Time::from_millis(-1.0));
        assert_eq!(err.now, Time::ZERO);
        assert!(err.to_string().contains("past"));
        // Behind the clock: rejected once a later event has popped.
        q.schedule(Time::from_millis(5.0), dispatch(1)).unwrap();
        q.pop().unwrap();
        let err = q.schedule(Time::from_millis(4.0), dispatch(2)).unwrap_err();
        assert_eq!(err.now, Time::from_millis(5.0));
        // At the clock exactly: fine (fires after pending same-instant
        // events by insertion order).
        q.schedule(Time::from_millis(5.0), dispatch(3)).unwrap();
        assert_eq!(q.pop().unwrap().time, Time::from_millis(5.0));
    }

    #[test]
    fn schedule_at_now_during_drain_pops_in_insertion_order() {
        // Mimics `wake_cpu`: while draining events at time t, new events
        // are scheduled at exactly t and must fire after the pending ones.
        let mut q = EventQueue::new();
        let t = Time::from_micros(1.0);
        q.schedule(t, dispatch(0)).unwrap();
        q.schedule(t, dispatch(1)).unwrap();
        assert_eq!(q.pop().unwrap().sequence, 0);
        q.schedule(t, dispatch(2)).unwrap();
        assert_eq!(q.pop().unwrap().sequence, 1);
        assert_eq!(q.pop().unwrap().sequence, 2);
        assert!(q.pop().is_none());
        // After a full drain the queue accepts events at or after `now`.
        q.schedule(t, dispatch(3)).unwrap();
        assert_eq!(q.pop().unwrap().sequence, 3);
    }

    #[test]
    fn buckets_advance_across_sparse_times() {
        let mut q = EventQueue::new();
        // Events many buckets apart, scheduled out of order.
        let times: Vec<Time> = [9.0, 0.5, 300.0, 17.0, 0.6]
            .iter()
            .map(|&ms| Time::from_millis(ms))
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, dispatch(i)).unwrap();
        }
        let mut sorted = times.clone();
        sorted.sort();
        let popped: Vec<Time> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(popped, sorted);
        assert!(q.shape().buckets_opened >= 3);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Time::from_millis(2.0), dispatch(0)).unwrap();
        q.schedule(Time::from_millis(1.0), dispatch(1)).unwrap();
        assert_eq!(q.peek_time(), Some(Time::from_millis(1.0)));
        assert_eq!(q.pop().unwrap().time, Time::from_millis(1.0));
        assert_eq!(q.peek_time(), Some(Time::from_millis(2.0)));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drained_buckets_are_pooled_and_reused() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            // Two buckets ahead of the current one each round.
            let base = Time::from_millis(round as f64 * 10.0);
            q.schedule(base + Time::from_millis(4.0), dispatch(0))
                .unwrap();
            q.schedule(base + Time::from_millis(8.0), dispatch(1))
                .unwrap();
            q.pop().unwrap();
            q.pop().unwrap();
        }
        assert!(q.shape().pool_reuses > 0, "{:?}", q.shape());
        assert!(q.shape().max_pending <= 2);
    }

    use proptest::prelude::*;

    /// Schedule deltas that exercise every regime of the calendar queue:
    /// exact ties, near-ties inside one bucket, spans of many wheel slots,
    /// and jumps past the wheel window into the far map.
    fn delta_ns() -> impl Strategy<Value = u64> {
        prop_oneof![Just(0u64), 0u64..100, 0u64..5_000_000, 0u64..300_000_000,]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The calendar queue must be observationally identical to the
        /// reference binary heap: byte-identical `(time, sequence, kind)`
        /// on every pop, under interleaved schedule/pop including ties.
        #[test]
        fn calendar_queue_matches_reference_heap_in_lockstep(
            ops in prop::collection::vec((0u8..4, delta_ns(), 0usize..6), 1..300)
        ) {
            let mut calendar = EventQueue::new();
            let mut reference = ReferenceEventQueue::new();
            // Both queues see the same schedule times, always `>= now`
            // (the last popped time), so `EventQueue::schedule` cannot
            // reject what the reference accepts.
            let mut now = Time::ZERO;
            for &(op, delta, node) in &ops {
                if op == 0 {
                    let got = calendar.pop();
                    let want = reference.pop();
                    prop_assert_eq!(&got, &want);
                    if let Some(event) = got {
                        now = event.time;
                    }
                } else {
                    let at = now + Time::from_nanos(delta as f64);
                    calendar
                        .schedule(at, dispatch(node))
                        .expect("schedule time is never in the past");
                    reference.schedule(at, dispatch(node));
                }
            }
            prop_assert_eq!(calendar.len(), reference.len());
            loop {
                let got = calendar.pop();
                let want = reference.pop();
                prop_assert_eq!(&got, &want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
